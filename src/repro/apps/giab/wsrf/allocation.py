"""The WSRF ResourceAllocationService (§4.2.1).

Also not resource-oriented: the mapping of installed applications to
ExecServices is shared state.  GetAvailableResources answers "in concert
with the ReservationService" — a server out-call per query.
"""

from __future__ import annotations

from repro.addressing.epr import EndpointReference
from repro.apps.giab.common import host_info, parse_host_info, wsrf_actions as actions
from repro.container.service import MessageContext, ServiceSkeleton, web_method
from repro.wsrf.basefaults import base_fault
from repro.xmldb.collection import Collection, DocumentNotFound
from repro.xmllib import element, ns, text_of
from repro.xmllib.element import XmlElement
from repro.xmllib.xpath import xpath_literal

_GIAB_PREFIXES = {"g": ns.GIAB}
#: Index paths over the registered-host documents (opt-in via
#: ``enable_indexes``): the installed applications and the host name.
APPLICATION_INDEX_PATH = "//g:Application"
HOST_INDEX_PATH = "//g:Host"


class WsrfResourceAllocationService(ServiceSkeleton):
    service_name = "ResourceAllocation"

    def __init__(
        self,
        collection: Collection,
        reservation_address: str,
        admins: set[str] | None = None,
    ):
        super().__init__()
        self.collection = collection
        self.reservation_address = reservation_address
        self.admins = admins or set()

    def enable_indexes(self) -> None:
        """Declare the application and host indexes over the registry.

        Opt-in: GetAvailableResources then resolves the Application
        predicate from a posting list (O(matching hosts)) instead of
        scanning every registered host; the default cost profile without
        this call is unchanged.
        """
        self.collection.declare_index(APPLICATION_INDEX_PATH, _GIAB_PREFIXES)
        self.collection.declare_index(HOST_INDEX_PATH, _GIAB_PREFIXES)

    def registered_hosts(self) -> list[str]:
        """All registered host names — a covering index read when indexed."""
        if self.collection.find_index(HOST_INDEX_PATH, _GIAB_PREFIXES) is not None:
            return self.collection.index_values(HOST_INDEX_PATH, _GIAB_PREFIXES)
        return sorted(
            parse_host_info(doc)["host"] for _, doc in self.collection.documents()
        )

    def _require_admin(self, context: MessageContext) -> None:
        if context.sender is None:
            return
        if str(context.sender) not in self.admins:
            raise base_fault(f"{context.sender} is not a VO administrator")

    # -- administration ------------------------------------------------------------

    @web_method(actions.REGISTER_HOST)
    def register_host(self, context: MessageContext) -> XmlElement:
        self._require_admin(context)
        info = parse_host_info(context.body)
        if not info["host"]:
            raise base_fault("registerHost needs a Host")
        self.collection.upsert(info["host"], context.body.copy())
        return element(f"{{{ns.GIAB}}}registerHostResponse")

    @web_method(actions.UNREGISTER_HOST)
    def unregister_host(self, context: MessageContext) -> XmlElement:
        self._require_admin(context)
        host = text_of(context.body.find_local("Host"))
        try:
            self.collection.delete(host)
        except DocumentNotFound:
            raise base_fault(f"unknown host: {host}")
        return element(f"{{{ns.GIAB}}}unregisterHostResponse")

    # -- the measured query ------------------------------------------------------------

    @web_method(actions.GET_AVAILABLE_RESOURCES)
    def get_available_resources(self, context: MessageContext) -> XmlElement:
        application = text_of(context.body.find_local("Application"))
        if not application:
            raise base_fault("getAvailableResources needs an Application")
        # "in concert with the ReservationService": one out-call per query.
        reserved_response = context.client().invoke(
            EndpointReference.create(self.reservation_address),
            actions.LIST_RESERVED_HOSTS,
            element(f"{{{ns.GIAB}}}listReservedHosts"),
        )
        reserved = {h.text().strip() for h in reserved_response.element_children()}
        response = element(f"{{{ns.GIAB}}}getAvailableResourcesResponse")
        for _key, doc in self._hosts_with_application(application):
            info = parse_host_info(doc)
            if application in info["applications"] and info["host"] not in reserved:
                response.append(
                    host_info(
                        info["host"], info["exec_address"], info["data_address"], info["applications"]
                    )
                )
        return response

    def _hosts_with_application(self, application: str):
        """Candidate (key, document) pairs for an Application predicate.

        With the application index declared this is the posting list for
        the requested value; otherwise (or for a value that cannot be
        spelled as an XPath literal) it is every registered host.  The
        caller re-applies the same membership filter either way, so the
        response is identical — only the candidate set shrinks.
        """
        literal = xpath_literal(application)
        if literal is not None and (
            self.collection.find_index(APPLICATION_INDEX_PATH, _GIAB_PREFIXES) is not None
        ):
            keys = self.collection.query_keys(
                f"{APPLICATION_INDEX_PATH}[. = {literal}]", _GIAB_PREFIXES
            )
            return [(key, self.collection.read(key)) for key in keys]
        return list(self.collection.documents())


class ServiceGroupAllocationService(ServiceSkeleton):
    """Alternative ResourceAllocationService backed by a WS-ServiceGroup.

    The host registry is a ServiceGroup whose entries carry HostInfo
    content documents; administrators manage membership through the
    standard wssg:Add operation and entry Destroy, and availability queries
    read the group's members.  Demonstrates the "extra feature" WSRF offers
    (§5 lists service groups among the functionality WS-Transfer lacks).
    """

    service_name = "SgResourceAllocation"

    def __init__(self, group, reservation_address: str):
        super().__init__()
        #: A ServiceGroupService instance (usually in the same container)
        #: whose content rule admits {GIAB}HostInfo documents.
        self.group = group
        self.reservation_address = reservation_address

    @web_method(actions.GET_AVAILABLE_RESOURCES)
    def get_available_resources(self, context: MessageContext) -> XmlElement:
        application = text_of(context.body.find_local("Application"))
        if not application:
            raise base_fault("getAvailableResources needs an Application")
        reserved_response = context.client().invoke(
            EndpointReference.create(self.reservation_address),
            actions.LIST_RESERVED_HOSTS,
            element(f"{{{ns.GIAB}}}listReservedHosts"),
        )
        reserved = {h.text().strip() for h in reserved_response.element_children()}
        response = element(f"{{{ns.GIAB}}}getAvailableResourcesResponse")
        for _entry_key, _member_epr, content in self.group.members():
            if content is None:
                continue
            info = parse_host_info(content)
            if application in info["applications"] and info["host"] not in reserved:
                response.append(
                    host_info(
                        info["host"], info["exec_address"], info["data_address"], info["applications"]
                    )
                )
        return response
