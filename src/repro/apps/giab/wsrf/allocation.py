"""The WSRF ResourceAllocationService (§4.2.1).

Also not resource-oriented: the mapping of installed applications to
ExecServices is shared state.  GetAvailableResources answers "in concert
with the ReservationService" — a server out-call per query.

This module is a *router*: wire parsing, the out-call to the reservation
service, and WSRF fault phrasing over the shared availability rule in
:mod:`repro.apps.giab.logic` and the :class:`HostRegistry` accessor in
:mod:`repro.apps.giab.db`.
"""

from __future__ import annotations

from repro.addressing.epr import EndpointReference
from repro.apps.giab.common import host_info, parse_host_info, wsrf_actions as actions
from repro.apps.giab.db import HostRegistry
from repro.apps.giab.logic import AdminPolicy, application_available
from repro.apps.layers.logic import AccessDenied
from repro.container.service import MessageContext, ServiceSkeleton, web_method
from repro.wsrf.basefaults import base_fault
from repro.xmldb.collection import Collection, DocumentNotFound
from repro.xmllib import element, ns, text_of
from repro.xmllib.element import XmlElement


class WsrfResourceAllocationService(ServiceSkeleton):
    service_name = "ResourceAllocation"

    def __init__(
        self,
        collection: Collection,
        reservation_address: str,
        admins: set[str] | None = None,
    ):
        super().__init__()
        self.hosts = HostRegistry(collection)
        self.reservation_address = reservation_address
        self.policy = AdminPolicy(admins)

    def enable_indexes(self) -> None:
        """Declare the application and host indexes over the registry.

        Opt-in: GetAvailableResources then resolves the Application
        predicate from a posting list (O(matching hosts)) instead of
        scanning every registered host; the default cost profile without
        this call is unchanged.
        """
        self.hosts.declare_indexes()

    def registered_hosts(self) -> list[str]:
        """All registered host names — a covering index read when indexed."""
        return self.hosts.host_names()

    def _require_admin(self, context: MessageContext) -> None:
        try:
            self.policy.require_admin(context.sender)
        except AccessDenied as denied:
            raise base_fault(f"{denied.subject} is not a VO administrator") from denied

    # -- administration ------------------------------------------------------------

    @web_method(actions.REGISTER_HOST)
    def register_host(self, context: MessageContext) -> XmlElement:
        self._require_admin(context)
        info = parse_host_info(context.body)
        if not info["host"]:
            raise base_fault("registerHost needs a Host")
        self.hosts.register(info["host"], context.body.copy())
        return element(f"{{{ns.GIAB}}}registerHostResponse")

    @web_method(actions.UNREGISTER_HOST)
    def unregister_host(self, context: MessageContext) -> XmlElement:
        self._require_admin(context)
        host = text_of(context.body.find_local("Host"))
        try:
            self.hosts.unregister(host)
        except DocumentNotFound:
            raise base_fault(f"unknown host: {host}")
        return element(f"{{{ns.GIAB}}}unregisterHostResponse")

    # -- the measured query ------------------------------------------------------------

    @web_method(actions.GET_AVAILABLE_RESOURCES)
    def get_available_resources(self, context: MessageContext) -> XmlElement:
        application = text_of(context.body.find_local("Application"))
        if not application:
            raise base_fault("getAvailableResources needs an Application")
        # "in concert with the ReservationService": one out-call per query.
        reserved_response = context.client().invoke(
            EndpointReference.create(self.reservation_address),
            actions.LIST_RESERVED_HOSTS,
            element(f"{{{ns.GIAB}}}listReservedHosts"),
        )
        reserved = {h.text().strip() for h in reserved_response.element_children()}
        response = element(f"{{{ns.GIAB}}}getAvailableResourcesResponse")
        for _key, doc in self.hosts.with_application(application):
            info = parse_host_info(doc)
            if application_available(info["applications"], application, info["host"] in reserved):
                response.append(
                    host_info(
                        info["host"], info["exec_address"], info["data_address"], info["applications"]
                    )
                )
        return response


class ServiceGroupAllocationService(ServiceSkeleton):
    """Alternative ResourceAllocationService backed by a WS-ServiceGroup.

    The host registry is a ServiceGroup whose entries carry HostInfo
    content documents; administrators manage membership through the
    standard wssg:Add operation and entry Destroy, and availability queries
    read the group's members.  Demonstrates the "extra feature" WSRF offers
    (§5 lists service groups among the functionality WS-Transfer lacks).
    """

    service_name = "SgResourceAllocation"

    def __init__(self, group, reservation_address: str):
        super().__init__()
        #: A ServiceGroupService instance (usually in the same container)
        #: whose content rule admits {GIAB}HostInfo documents.
        self.group = group
        self.reservation_address = reservation_address

    @web_method(actions.GET_AVAILABLE_RESOURCES)
    def get_available_resources(self, context: MessageContext) -> XmlElement:
        application = text_of(context.body.find_local("Application"))
        if not application:
            raise base_fault("getAvailableResources needs an Application")
        reserved_response = context.client().invoke(
            EndpointReference.create(self.reservation_address),
            actions.LIST_RESERVED_HOSTS,
            element(f"{{{ns.GIAB}}}listReservedHosts"),
        )
        reserved = {h.text().strip() for h in reserved_response.element_children()}
        response = element(f"{{{ns.GIAB}}}getAvailableResourcesResponse")
        for _entry_key, _member_epr, content in self.group.members():
            if content is None:
                continue
            info = parse_host_info(content)
            if application_available(info["applications"], application, info["host"] in reserved):
                response.append(
                    host_info(
                        info["host"], info["exec_address"], info["data_address"], info["applications"]
                    )
                )
        return response
