"""The WSRF ReservationService: reservations are WS-Resources (§4.2.1).

A new reservation terminates at now + an administrator delta; the
ExecService "claims" it by lengthening the termination time (to infinity in
this Grid-in-a-Box, as in the paper), and destroys it once the job is done —
which is why Un-reserve is free in the WSRF column of Figure 6.
"""

from __future__ import annotations

from repro.addressing.epr import EndpointReference
from repro.apps.giab.common import RESERVATION_DELTA_MS, wsrf_actions as actions
from repro.container.service import MessageContext, web_method
from repro.wsrf.basefaults import base_fault
from repro.wsrf.lifetime import ResourceLifetimeMixin
from repro.wsrf.programming import ResourceField, WsResourceService, resource_property
from repro.wsrf.properties import ResourcePropertiesMixin
from repro.wsrf.resource import RESOURCE_ID
from repro.xmllib import element, ns, text_of
from repro.xmllib.element import XmlElement
from repro.xmllib.xpath import xpath_literal

_FIELDS_PREFIXES = {"f": ns.WSRF_FIELDS}
#: Index path over reservation documents (opt-in via ``enable_indexes``):
#: the reserved host name field.
RESERVED_HOST_INDEX_PATH = "//f:host"


class WsrfReservationService(
    ResourcePropertiesMixin, ResourceLifetimeMixin, WsResourceService
):
    service_name = "Reservation"
    resource_ns = ns.GIAB

    host = ResourceField(str, "")
    owner = ResourceField(str, "")

    def __init__(self, home, account_address: str = "", delta_ms: float = RESERVATION_DELTA_MS):
        super().__init__(home)
        self.account_address = account_address
        self.delta_ms = delta_ms

    def enable_indexes(self) -> None:
        """Declare the reserved-host index.  Opt-in: the reserved-hosts
        listing then becomes a covering index read and checkReservation an
        O(hits) lookup; without this call costs are unchanged."""
        self.home.declare_index(RESERVED_HOST_INDEX_PATH, _FIELDS_PREFIXES)

    # -- creation (application-specific, as WSRF mandates nothing) ----------------

    @web_method(actions.CREATE_RESERVATION)
    def create_reservation(self, context: MessageContext) -> XmlElement:
        host = text_of(context.body.find_local("Host"))
        if not host:
            raise base_fault("createReservation needs a Host")
        owner = str(context.sender) if context.sender is not None else "anonymous"
        # Figure 5 step 4: "Does this user have an account in this VO?"
        # (Identity checks need signed messages; unsigned deployments skip.)
        if self.account_address and context.sender is not None:
            response = context.client().invoke(
                EndpointReference.create(self.account_address),
                actions.ACCOUNT_EXISTS,
                element(f"{{{ns.GIAB}}}accountExists", element(f"{{{ns.GIAB}}}DN", owner)),
            )
            if response.text().strip() != "true":
                raise base_fault(f"no VO account for {owner}")
        if host in self._live_reserved_hosts():
            raise base_fault(f"host {host} is already reserved")
        epr = self.create_resource(host=host, owner=owner)
        key = epr.property(RESOURCE_ID)
        self.home.set_termination_time(key, self.network.clock.now + self.delta_ms)
        return element(f"{{{ns.GIAB}}}createReservationResponse", epr.to_xml())

    # -- queries used by the other services ------------------------------------------

    @web_method(actions.LIST_RESERVED_HOSTS)
    def list_reserved_hosts(self, context: MessageContext) -> XmlElement:
        response = element(f"{{{ns.GIAB}}}listReservedHostsResponse")
        for host in sorted(self._live_reserved_hosts()):
            response.append(element(f"{{{ns.GIAB}}}Host", host))
        return response

    @web_method(actions.CHECK_RESERVATION)
    def check_reservation(self, context: MessageContext) -> XmlElement:
        host = text_of(context.body.find_local("Host"))
        dn = text_of(context.body.find_local("DN"))
        held = self._holds_reservation(host, dn)
        return element(
            f"{{{ns.GIAB}}}checkReservationResponse", "true" if held else "false"
        )

    def _holds_reservation(self, host: str, dn: str) -> bool:
        literal = xpath_literal(host)
        if literal is not None and (
            self.home.find_index(RESERVED_HOST_INDEX_PATH, _FIELDS_PREFIXES) is not None
        ):
            for key in self.home.query_keys(
                f"{RESERVED_HOST_INDEX_PATH}[. = {literal}]", _FIELDS_PREFIXES
            ):
                doc = self.home.load(key)
                if text_of(doc.find(f"{{{ns.WSRF_FIELDS}}}owner")) == dn:
                    return True
            return False
        return any(entry == (host, dn) for entry in self._reservation_pairs())

    def _reservation_pairs(self) -> list[tuple[str, str]]:
        pairs = []
        for key in self.home.keys():
            doc = self.home.load(key)
            host = text_of(doc.find(f"{{{ns.WSRF_FIELDS}}}host"))
            owner = text_of(doc.find(f"{{{ns.WSRF_FIELDS}}}owner"))
            pairs.append((host, owner))
        return pairs

    def _live_reserved_hosts(self) -> set[str]:
        if self.home.find_index(RESERVED_HOST_INDEX_PATH, _FIELDS_PREFIXES) is not None:
            # Covering read: the host list is exactly the index's value set.
            return set(self.home.index_values(RESERVED_HOST_INDEX_PATH, _FIELDS_PREFIXES))
        return {host for host, _ in self._reservation_pairs()}

    # -- resource properties -----------------------------------------------------------

    @resource_property(f"{{{ns.GIAB}}}Host")
    def rp_host(self):
        return self.host

    @resource_property(f"{{{ns.GIAB}}}Owner")
    def rp_owner(self):
        return self.owner
