"""The WSRF ReservationService: reservations are WS-Resources (§4.2.1).

A new reservation terminates at now + an administrator delta; the
ExecService "claims" it by lengthening the termination time (to infinity in
this Grid-in-a-Box, as in the paper), and destroys it once the job is done —
which is why Un-reserve is free in the WSRF column of Figure 6.

This module is a *router*: wire parsing, the lease/EPR idiom and WSRF
fault phrasing over the shared reservation rules in
:mod:`repro.apps.giab.logic` and the :class:`ReservationsTable` accessor
in :mod:`repro.apps.giab.db`.
"""

from __future__ import annotations

from repro.addressing.epr import EndpointReference
from repro.apps.giab.common import RESERVATION_DELTA_MS, wsrf_actions as actions
from repro.apps.giab.db import ReservationsTable
from repro.apps.giab.logic import AlreadyReserved, ReservationRules
from repro.apps.layers.logic import LogicError
from repro.apps.layers.router import wsrf_fault
from repro.container.service import MessageContext, web_method
from repro.wsrf.basefaults import base_fault
from repro.wsrf.lifetime import ResourceLifetimeMixin
from repro.wsrf.programming import ResourceField, WsResourceService, resource_property
from repro.wsrf.properties import ResourcePropertiesMixin
from repro.wsrf.resource import RESOURCE_ID
from repro.xmllib import element, ns, text_of
from repro.xmllib.element import XmlElement


class WsrfReservationService(
    ResourcePropertiesMixin, ResourceLifetimeMixin, WsResourceService
):
    service_name = "Reservation"
    resource_ns = ns.GIAB

    host = ResourceField(str, "")
    owner = ResourceField(str, "")

    def __init__(self, home, account_address: str = "", delta_ms: float = RESERVATION_DELTA_MS):
        super().__init__(home)
        self.reservations = ReservationsTable(home)
        self.account_address = account_address
        self.delta_ms = delta_ms

    def enable_indexes(self) -> None:
        """Declare the reserved-host index.  Opt-in: the reserved-hosts
        listing then becomes a covering index read and checkReservation an
        O(hits) lookup; without this call costs are unchanged."""
        self.reservations.declare_indexes()

    # -- creation (application-specific, as WSRF mandates nothing) ----------------

    @web_method(actions.CREATE_RESERVATION)
    def create_reservation(self, context: MessageContext) -> XmlElement:
        host = text_of(context.body.find_local("Host"))
        if not host:
            raise base_fault("createReservation needs a Host")
        owner = str(context.sender) if context.sender is not None else "anonymous"
        # Figure 5 step 4: "Does this user have an account in this VO?"
        # (Identity checks need signed messages; unsigned deployments skip.)
        if self.account_address and context.sender is not None:
            response = context.client().invoke(
                EndpointReference.create(self.account_address),
                actions.ACCOUNT_EXISTS,
                element(f"{{{ns.GIAB}}}accountExists", element(f"{{{ns.GIAB}}}DN", owner)),
            )
            try:
                ReservationRules.require_account(response.text().strip() == "true", owner)
            except LogicError as error:
                raise wsrf_fault(error) from error
        try:
            ReservationRules.require_unreserved(
                host in self.reservations.reserved_hosts(), host
            )
        except AlreadyReserved as already:
            raise base_fault(f"host {already.subject} is already reserved") from already
        epr = self.create_resource(host=host, owner=owner)
        key = epr.property(RESOURCE_ID)
        self.home.set_termination_time(key, self.network.clock.now + self.delta_ms)
        return element(f"{{{ns.GIAB}}}createReservationResponse", epr.to_xml())

    # -- queries used by the other services ------------------------------------------

    @web_method(actions.LIST_RESERVED_HOSTS)
    def list_reserved_hosts(self, context: MessageContext) -> XmlElement:
        response = element(f"{{{ns.GIAB}}}listReservedHostsResponse")
        for host in sorted(self.reservations.reserved_hosts()):
            response.append(element(f"{{{ns.GIAB}}}Host", host))
        return response

    @web_method(actions.CHECK_RESERVATION)
    def check_reservation(self, context: MessageContext) -> XmlElement:
        host = text_of(context.body.find_local("Host"))
        dn = text_of(context.body.find_local("DN"))
        held = self.reservations.held_by(host, dn)
        return element(
            f"{{{ns.GIAB}}}checkReservationResponse", "true" if held else "false"
        )

    # -- resource properties -----------------------------------------------------------

    @resource_property(f"{{{ns.GIAB}}}Host")
    def rp_host(self):
        return self.host

    @resource_property(f"{{{ns.GIAB}}}Owner")
    def rp_owner(self):
        return self.owner
