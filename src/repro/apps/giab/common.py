"""Shared Grid-in-a-Box vocabulary: actions, topics, document shapes."""

from __future__ import annotations

from repro.xmllib import element, ns, text_of
from repro.xmllib.element import XmlElement

#: Default reservation lifetime: "current time plus an administrator
#: specified delta (e.g. 4 hours)" — four virtual hours in ms.
RESERVATION_DELTA_MS = 4 * 3600 * 1000.0

TOPIC_JOB_EXITED = "job/exited"


class wsrf_actions:
    """Application-defined actions of the WSRF Grid-in-a-Box services.

    The Account and ResourceAllocation services deliberately use meaningful
    method names (addAccount, accountExists, ...) instead of CRUD — §4.2.3's
    design observation.
    """

    ADD_ACCOUNT = ns.GIAB + "/addAccount"
    REMOVE_ACCOUNT = ns.GIAB + "/removeAccount"
    ACCOUNT_EXISTS = ns.GIAB + "/accountExists"
    CHECK_PRIVILEGE = ns.GIAB + "/checkPrivilege"

    REGISTER_HOST = ns.GIAB + "/registerHost"
    UNREGISTER_HOST = ns.GIAB + "/unregisterHost"
    GET_AVAILABLE_RESOURCES = ns.GIAB + "/getAvailableResources"

    CREATE_RESERVATION = ns.GIAB + "/createReservation"
    LIST_RESERVED_HOSTS = ns.GIAB + "/listReservedHosts"
    CHECK_RESERVATION = ns.GIAB + "/checkReservation"

    CREATE_DIRECTORY = ns.GIAB + "/createDirectory"
    UPLOAD_FILE = ns.GIAB + "/uploadFile"
    DOWNLOAD_FILE = ns.GIAB + "/downloadFile"
    DELETE_FILE = ns.GIAB + "/deleteFile"

    START_JOB = ns.GIAB + "/startJob"


def host_info(host: str, exec_address: str, data_address: str, applications: list[str]) -> XmlElement:
    node = element(
        f"{{{ns.GIAB}}}HostInfo",
        element(f"{{{ns.GIAB}}}Host", host),
        element(f"{{{ns.GIAB}}}ExecService", exec_address),
        element(f"{{{ns.GIAB}}}DataService", data_address),
    )
    for app in applications:
        node.append(element(f"{{{ns.GIAB}}}Application", app))
    return node


def parse_host_info(node: XmlElement) -> dict:
    return {
        "host": text_of(node.find_local("Host")),
        "exec_address": text_of(node.find_local("ExecService")),
        "data_address": text_of(node.find_local("DataService")),
        "applications": [
            a.text().strip() for a in node.element_children() if a.tag.local == "Application"
        ],
    }
