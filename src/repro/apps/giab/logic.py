"""Grid-in-a-Box business rules, shared by both stacks (the logic layer).

Every *decision* the five services make — who may administer, what an
account grants, which hosts are available, whose reservation this is,
what a finished job leaves behind — lives here exactly once, as plain
python over domain XML.  The per-stack service classes are routers: they
parse their stack's wire shapes, call these rules, and phrase faults in
their stack's historical vocabulary (see
:mod:`repro.apps.layers.router`).

Layer discipline (lint rule RPO15): no ``repro.soap`` /
``repro.container`` / ``repro.pipeline`` imports here.
"""

from __future__ import annotations

from repro.apps.giab.storage import FileSystemError
from repro.apps.layers.logic import AccessDenied, LogicError
from repro.xmllib import element, ns
from repro.xmllib.element import XmlElement

# -- administration (§4.2.1/§4.2.2) -------------------------------------------


class AdminPolicy:
    """Who may administer the VO (accounts, host/site registry).

    The rule both stacks share: an unsigned wire cannot enforce identity,
    so an anonymous sender passes; a signed sender must be one of the
    configured administrators.
    """

    def __init__(self, admins: set[str] | None = None):
        self.admins = admins or set()

    def require_admin(self, sender) -> None:
        if sender is None:
            return
        if str(sender) not in self.admins:
            raise AccessDenied(sender)


# -- accounts -----------------------------------------------------------------


def account_element(dn: str, privileges: list[str]) -> XmlElement:
    """The canonical ``{giab}Account`` document body."""
    account = element(f"{{{ns.GIAB}}}Account", element(f"{{{ns.GIAB}}}DN", dn))
    for privilege in privileges:
        account.append(element(f"{{{ns.GIAB}}}Privilege", privilege))
    return account


def account_grants(account: XmlElement | None, privilege: str) -> bool:
    """Does this account document carry the privilege?"""
    return account is not None and any(
        p.text().strip() == privilege
        for p in account.element_children()
        if p.tag.local == "Privilege"
    )


# -- resource allocation ------------------------------------------------------


def application_available(applications: list[str], application: str, reserved: bool) -> bool:
    """The availability rule: the application is installed on the host and
    the host is not currently reserved.  Both stacks filter their candidate
    sets (index posting list or full registry) through this one predicate."""
    return application in applications and not reserved


# -- reservations -------------------------------------------------------------


class AlreadyReserved(LogicError):
    """The host/site already carries a live reservation."""

    def __init__(self, subject: str):
        super().__init__(f"{subject} is already reserved")
        self.subject = subject


class NotReserved(LogicError):
    """An un-reserve/claim was attempted on an unreserved host/site."""

    def __init__(self, subject: str):
        super().__init__(f"{subject} is not reserved")
        self.subject = subject


class WrongHolder(LogicError):
    """The reservation belongs to somebody else."""

    def __init__(self, subject: str, holder: str):
        super().__init__(f"reservation on {subject} belongs to {holder}")
        self.subject = subject
        self.holder = holder


def require_reservation_holder(held: bool, dn: str, host: str) -> None:
    """The upload rule (Figure 5's "pair of calls"): the uploader must hold
    a live reservation on the serving node.  Each stack verifies this with
    its own out-call; the refusal is phrased identically on both."""
    if not held:
        raise LogicError(f"{dn} holds no reservation on {host}")


def list_directory(filesystem, path: str) -> list[str]:
    """The listing rule both stacks share: a directory that does not exist
    (never created, or already destroyed) lists as empty rather than
    faulting."""
    try:
        return filesystem.listdir(path)
    except FileSystemError:
        return []


class ReservationRules:
    """Reservation invariants shared by both stacks."""

    @staticmethod
    def require_account(exists: bool, owner: str) -> None:
        """Figure 5 step 4: "Does this user have an account in this VO?"
        Checked only on signed wires; both stacks phrase the refusal
        identically."""
        if not exists:
            raise LogicError(f"no VO account for {owner}")

    @staticmethod
    def require_unreserved(already_reserved: bool, subject: str) -> None:
        if already_reserved:
            raise AlreadyReserved(subject)

    @staticmethod
    def require_holder(holder: str, sender: str, subject: str) -> None:
        """Releasing a reservation: it must exist, and a signed sender must
        be the holder (an anonymous wire cannot check ownership)."""
        if not holder:
            raise NotReserved(subject)
        if holder != sender and sender != "anonymous":
            raise WrongHolder(subject, holder)

    @staticmethod
    def require_reservation_for_host(reserved_host: str, host: str) -> None:
        """Starting a job: the presented reservation must be for the node
        this ExecService serves."""
        if reserved_host != host:
            raise LogicError(
                f"reservation is for {reserved_host}, not this ExecService's host {host}"
            )

    @staticmethod
    def require_reservation_owner(owner: str, sender: str) -> None:
        """Starting a job: the caller must be the reservation's owner."""
        if owner != sender:
            raise LogicError(f"reservation belongs to {owner}, not {sender}")


# -- jobs ---------------------------------------------------------------------


def write_job_outputs(filesystem, handle) -> None:
    """What a finished job leaves behind — identical on both stacks: a
    successful job writes one file per declared output name into its
    working directory; a failed job, or one whose directory was destroyed
    while it ran, leaves nothing."""
    if filesystem is None or handle.exit_code != 0:
        return
    if not filesystem.exists_dir(handle.working_dir):
        return
    for name in handle.spec.output_files:
        filesystem.write(
            handle.working_dir, name, f"output of {handle.spec.command} (pid {handle.pid})\n"
        )


def job_running_time_text(handle, now: float) -> str:
    """Both stacks report a job's running time the same way: the repr of
    the spawner's measurement at the current virtual time."""
    return repr(handle.running_time(now))
