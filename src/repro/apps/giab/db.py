"""Grid-in-a-Box typed storage accessors (the db layer).

Each accessor owns one collection's document layout and its secondary
indexes; routers and logic never touch a collection directly.  The two
stacks keep their historical layouts — the WSRF stack's single
``accounts`` document versus the WS-Transfer stack's document-per-DN, the
``HostInfo`` registry versus the ``Site`` registry — because the layout
is part of each stack's measured wire-and-database behaviour; what they
share is the accessor vocabulary and the index-or-scan machinery from
:class:`repro.apps.layers.db.Table`.

Layer discipline (lint rule RPO15): no ``repro.soap`` /
``repro.container`` / ``repro.pipeline`` imports here.
"""

from __future__ import annotations

from repro.apps.giab.common import parse_host_info
from repro.apps.layers.db import IndexSpec, Table
from repro.apps.layers.logic import LogicError
from repro.xmldb.collection import DocumentNotFound
from repro.xmllib import element, ns, text_of
from repro.xmllib.element import XmlElement
from repro.xmllib.xpath import xpath_literal

_GIAB_PREFIXES = {"g": ns.GIAB}
_FIELDS_PREFIXES = {"f": ns.WSRF_FIELDS}

# -- accounts -----------------------------------------------------------------


class WsrfAccountsStore(Table):
    """The WSRF stack's layout: every account inside one ``accounts``
    document ("All interaction ... uses the same state information", so no
    WS-Resource per user)."""

    DOC_KEY = "accounts"

    def document(self) -> XmlElement:
        try:
            return self.store.read(self.DOC_KEY)
        except DocumentNotFound:
            return element(f"{{{ns.GIAB}}}Accounts")

    def save(self, document: XmlElement) -> None:
        self.store.upsert(self.DOC_KEY, document)

    @staticmethod
    def find(document: XmlElement, dn: str) -> XmlElement | None:
        for account in document.element_children():
            if text_of(account.find_local("DN")) == dn:
                return account
        return None


class TransferAccountsStore(Table):
    """The WS-Transfer stack's layout: one document per user, keyed by the
    X.509 DN ("the EPR containing the X509 DN of the user")."""

    def find(self, dn: str) -> XmlElement | None:
        try:
            return self.store.read(dn)
        except DocumentNotFound:
            return None


# -- host / site registries ---------------------------------------------------


class HostRegistry(Table):
    """The WSRF stack's host registry: one ``HostInfo`` document per host,
    keyed by host name, with opt-in application and host-name indexes."""

    APPLICATION = IndexSpec("//g:Application", _GIAB_PREFIXES)
    HOST = IndexSpec("//g:Host", _GIAB_PREFIXES)
    indexes = (APPLICATION, HOST)

    def register(self, host: str, document: XmlElement) -> None:
        self.store.upsert(host, document)

    def unregister(self, host: str) -> None:
        """Remove a host; raises :class:`DocumentNotFound` when unknown."""
        self.store.delete(host)

    def host_names(self) -> list[str]:
        """All registered host names — a covering index read when indexed."""
        values = self.covering_values(self.HOST)
        if values is not None:
            return values
        return sorted(parse_host_info(doc)["host"] for _, doc in self.store.documents())

    def with_application(self, application: str) -> list[tuple[str, XmlElement]]:
        """Candidate (key, document) pairs for an Application predicate:
        the index posting list when available, else every registered host.
        Callers re-apply the full availability rule either way, so answers
        are identical — only the candidate set shrinks."""
        keys = self.match_keys(self.APPLICATION, application)
        if keys is not None:
            return [(key, self.store.read(key)) for key in keys]
        return list(self.store.documents())


def site_field(site: XmlElement, local: str) -> XmlElement:
    """A required child of a Site document; a missing one is a service-side
    invariant failure (soap:Server on the wire)."""
    node = site.find_local(local)
    if node is None:
        raise LogicError(f"site document lacks {local}", kind="server")
    return node


def site_applications(site: XmlElement) -> list[str]:
    return [
        a.text().strip() for a in site.element_children() if a.tag.local == "Application"
    ]


class SiteRegistry(Table):
    """The WS-Transfer stack's unified registry: one ``Site`` document per
    site carrying both the host facts and its reservation state."""

    APPLICATION = IndexSpec("//g:Application", _GIAB_PREFIXES)
    indexes = (APPLICATION,)

    def find(self, name: str) -> XmlElement | None:
        try:
            return self.store.read(name)
        except DocumentNotFound:
            return None

    def save(self, name: str, site: XmlElement) -> None:
        self.store.update(name, site)

    def with_application(self, application: str) -> list[tuple[str, XmlElement]]:
        """Candidate (key, Site) pairs for an availability query — the same
        index-or-scan contract as :meth:`HostRegistry.with_application`."""
        keys = self.match_keys(self.APPLICATION, application)
        if keys is not None:
            return [(key, self.store.read(key)) for key in keys]
        return list(self.store.documents())


# -- reservations (WSRF WS-Resources) -----------------------------------------


class ReservationsTable(Table):
    """The WSRF stack's reservations: one WS-Resource document per live
    reservation (host + owner fields), with an opt-in reserved-host index.
    Lifetime does the expiry, so every stored document is live."""

    RESERVED_HOST = IndexSpec("//f:host", _FIELDS_PREFIXES)
    indexes = (RESERVED_HOST,)

    def pairs(self) -> list[tuple[str, str]]:
        pairs = []
        for key in self.store.keys():
            doc = self.store.load(key)
            host = text_of(doc.find(f"{{{ns.WSRF_FIELDS}}}host"))
            owner = text_of(doc.find(f"{{{ns.WSRF_FIELDS}}}owner"))
            pairs.append((host, owner))
        return pairs

    def reserved_hosts(self) -> set[str]:
        values = self.covering_values(self.RESERVED_HOST)
        if values is not None:
            # Covering read: the host list is exactly the index's value set.
            return set(values)
        return {host for host, _ in self.pairs()}

    def held_by(self, host: str, dn: str) -> bool:
        keys = self.match_keys(self.RESERVED_HOST, host)
        if keys is not None:
            for key in keys:
                doc = self.store.load(key)
                if text_of(doc.find(f"{{{ns.WSRF_FIELDS}}}owner")) == dn:
                    return True
            return False
        return any(entry == (host, dn) for entry in self.pairs())


# -- data directories (WSRF WS-Resources) --------------------------------------


class DirectoriesTable(Table):
    """The WSRF stack's directory resources: one WS-Resource document per
    directory with its path in the ``directory`` field."""

    DIRECTORY = IndexSpec("//f:directory", _FIELDS_PREFIXES)
    indexes = (DIRECTORY,)

    def directories(self) -> list[str]:
        """All directory paths — a covering index read when indexed,
        otherwise a load of each resource document."""
        values = self.covering_values(self.DIRECTORY)
        if values is not None:
            return values
        return sorted(
            text_of(self.store.load(key).find(f"{{{ns.WSRF_FIELDS}}}directory"))
            for key in self.store.keys()
        )

    def keys_for(self, path: str) -> list[str]:
        """Resource keys whose directory field equals ``path`` (normally one).

        Historical quirk, preserved because the charge is pinned by golden
        ledgers: any path expressible as an XPath literal goes straight to
        ``query_keys`` — charged as a query even with no index declared —
        instead of checking ``find_index`` first like the other accessors.
        """
        literal = xpath_literal(path)
        if literal is not None:
            return self.store.query_keys(
                f"{self.DIRECTORY.path}[. = {literal}]", self.DIRECTORY.prefixes
            )
        return [
            key
            for key in self.store.keys()
            if text_of(self.store.load(key).find(f"{{{ns.WSRF_FIELDS}}}directory")) == path
        ]
