"""The WS-Transfer Execution service (§4.2.2).

Create instantiates a job (one out-call to the unified ResourceAllocation
service to confirm the caller's reservation — against WSRF's several), Get
returns job status, Delete kills the process and removes the representation.
The representation/resource split matters here: "The representation of the
resource may remain even when the resource (e.g., process) does not exist
anymore."  Completion is announced over WS-Eventing.

This module is a *router*: the CRUD mapping and this stack's fault
phrasing over the shared job and reservation rules in
:mod:`repro.apps.giab.logic`.
"""

from __future__ import annotations

from repro.addressing.epr import EndpointReference
from repro.apps.giab.common import TOPIC_JOB_EXITED
from repro.apps.giab.jobs import JobSpec, JobState, ProcessSpawner
from repro.apps.giab.logic import (
    job_running_time_text,
    require_reservation_holder,
    write_job_outputs,
)
from repro.apps.layers.logic import LogicError
from repro.apps.layers.router import transfer_fault
from repro.container.service import MessageContext
from repro.crypto.x509 import DistinguishedName
from repro.eventing.manager import EventSubscriptionManagerService
from repro.eventing.notification_manager import NotificationManager
from repro.eventing.source import EventSourceMixin
from repro.soap.envelope import SoapFault
from repro.transfer.service import (
    TRANSFER_RESOURCE_ID,
    TransferResourceService,
    actions as wxf_actions,
)
from repro.xmllib import element, ns, text_of
from repro.xmllib.element import XmlElement


class TransferExecService(EventSourceMixin, TransferResourceService):
    service_name = "Exec"

    def __init__(
        self,
        collection,
        spawner: ProcessSpawner,
        site_name: str,
        event_subscription_manager: EventSubscriptionManagerService,
        allocation_address: str = "",
        filesystem=None,
    ):
        super().__init__(collection)
        self.spawner = spawner
        self.site_name = site_name
        self.allocation_address = allocation_address
        self.event_subscription_manager = event_subscription_manager
        self.notifications = NotificationManager(event_subscription_manager.store)
        self.filesystem = filesystem
        self._pids: dict[str, int] = {}

    # -- Create: instantiate a job ----------------------------------------------------

    def process_create(self, representation: XmlElement, context: MessageContext):
        if representation.tag.local != "Job":
            raise SoapFault("Client", "Create needs a Job representation")
        spec = JobSpec.from_xml(representation)
        self._check_reservation(context)
        working_dir = (
            context.sender.hashed() if context.sender is not None else "anonymous"
        )
        key = self.collection.new_id()
        handle = self.spawner.spawn(
            spec, working_dir, on_exit=lambda h: self._job_exited(key, h)
        )
        self._pids[key] = handle.pid
        stored = representation.copy()
        stored.set("pid", str(handle.pid))
        return stored, None, key

    def _check_reservation(self, context: MessageContext) -> None:
        """The single out-call: "used by ... the Execution service to make
        sure that the user who wants to use them has a reservation"."""
        if not self.allocation_address:
            return
        holder = context.client().invoke(
            EndpointReference.create(self.allocation_address).with_property(
                TRANSFER_RESOURCE_ID, self.site_name
            ),
            wxf_actions.GET,
            element(f"{{{ns.WXF}}}Get"),
        )
        sender = str(context.sender) if context.sender is not None else "anonymous"
        try:
            require_reservation_holder(text_of(holder) == sender, sender, self.site_name)
        except LogicError as error:
            raise transfer_fault(error) from error

    def _job_exited(self, key: str, handle) -> None:
        write_job_outputs(self.filesystem, handle)
        self.notifications.fire(
            self,
            element(
                f"{{{ns.GIAB}}}JobExited",
                element(f"{{{ns.GIAB}}}ExitCode", handle.exit_code),
                attrs={"job": key},
            ),
            topic=TOPIC_JOB_EXITED,
        )

    # -- Get: job status --------------------------------------------------------------

    def process_get(self, key: str, context: MessageContext) -> XmlElement:
        stored = self._load(key)
        if stored is None:
            raise SoapFault("Client", f"no job {key}")
        pid = self._pids.get(key, int(stored.get("pid", "0")))
        handle = self.spawner.get(pid)
        status = element(f"{{{ns.GIAB}}}JobStatus", attrs={"job": key})
        if handle is None:
            # Process gone but representation remains (§3.2's first issue).
            status.append(element(f"{{{ns.GIAB}}}State", "Unknown"))
        else:
            status.append(element(f"{{{ns.GIAB}}}State", handle.state.value))
            if handle.exit_code is not None:
                status.append(element(f"{{{ns.GIAB}}}ExitCode", handle.exit_code))
            status.append(
                element(
                    f"{{{ns.GIAB}}}RunningTime",
                    job_running_time_text(handle, self.network.clock.now),
                )
            )
        return status

    # -- Delete: kill + cleanup -------------------------------------------------------

    def process_delete(self, key: str, context: MessageContext) -> None:
        """Our resolution of the paper's Delete ambiguity: Delete terminates
        the process *and* removes the representation."""
        pid = self._pids.pop(key, None)
        if pid is None:
            stored = self._load(key)
            if stored is not None:
                pid = int(stored.get("pid", "0"))
        if pid:
            self.spawner.kill(pid)
            if self.spawner.get(pid) is not None:
                self.spawner.reap(pid)
