"""The WS-Transfer Data service (§4.2.2).

Files live on the node's file system, not in Xindice ("The only exception
is the Data Service that stores the files on the file system").  The EPR of
a file resource is ``<hash-of-DN>/<filename>``; all of a user's files share
one directory, created automatically on first upload.  A Get whose EPR ends
with ``/`` returns a directory listing; otherwise it is a download.
Upload (Create) checks the uploader's reservation with the
ResourceAllocation service — the operation's second call.

This module is a *router*: the CRUD-over-filesystem mapping and this
stack's fault phrasing over the shared data rules in
:mod:`repro.apps.giab.logic` (there is no db layer here — files live on
the filesystem, not in a collection).
"""

from __future__ import annotations

from repro.addressing.epr import EndpointReference
from repro.apps.giab.logic import list_directory, require_reservation_holder
from repro.apps.giab.storage import FileSystemError, SimulatedFileSystem
from repro.apps.layers.logic import LogicError
from repro.apps.layers.router import transfer_fault
from repro.container.service import MessageContext, ServiceSkeleton, web_method
from repro.crypto.x509 import DistinguishedName
from repro.soap.envelope import SoapFault
from repro.transfer.service import TRANSFER_RESOURCE_ID, actions as wxf_actions
from repro.xmllib import element, ns, text_of
from repro.xmllib.element import XmlElement


class TransferDataService(ServiceSkeleton):
    """File transfer to/from one computing site.

    Not built on the generic collection-backed base: the resources here are
    files, so the four operations are implemented directly against the
    filesystem.
    """

    service_name = "Data"

    def __init__(
        self,
        filesystem: SimulatedFileSystem,
        site_name: str,
        allocation_address: str = "",
    ):
        super().__init__()
        self.filesystem = filesystem
        self.site_name = site_name
        self.allocation_address = allocation_address

    # -- EPR helpers -----------------------------------------------------------------

    def file_epr(self, dn: str, filename: str) -> EndpointReference:
        user_dir = DistinguishedName.parse(dn).hashed()
        return self.epr({TRANSFER_RESOURCE_ID: f"{user_dir}/{filename}"})

    def listing_epr(self, dn: str) -> EndpointReference:
        user_dir = DistinguishedName.parse(dn).hashed()
        return self.epr({TRANSFER_RESOURCE_ID: f"{user_dir}/"})

    def _split_key(self, context: MessageContext) -> tuple[str, str]:
        key = context.headers.target_epr().property(TRANSFER_RESOURCE_ID)
        if key is None or "/" not in key:
            raise SoapFault("Client", "Data EPR must look like <userdir>/<filename>")
        user_dir, _, filename = key.partition("/")
        return user_dir, filename

    def _sender_dir(self, context: MessageContext) -> str:
        if context.sender is None:
            return "anonymous"
        return context.sender.hashed()

    def _check_reservation(self, context: MessageContext) -> None:
        if not self.allocation_address:
            return
        holder = context.client().invoke(
            EndpointReference.create(self.allocation_address).with_property(
                TRANSFER_RESOURCE_ID, self.site_name
            ),
            wxf_actions.GET,
            element(f"{{{ns.WXF}}}Get"),
        )
        sender = str(context.sender) if context.sender is not None else "anonymous"
        try:
            require_reservation_holder(text_of(holder) == sender, sender, self.site_name)
        except LogicError as error:
            raise transfer_fault(error) from error

    # -- the four operations -----------------------------------------------------------

    @web_method(wxf_actions.CREATE)
    def wxf_create(self, context: MessageContext) -> XmlElement:
        """Upload: Create(<File Name="...">content</File>)."""
        representation = next(context.body.element_children(), None)
        if representation is None or representation.tag.local != "File":
            raise SoapFault("Client", "Create needs a File representation")
        name = representation.get("Name", "")
        if not name:
            raise SoapFault("Client", "File representation needs a Name attribute")
        self._check_reservation(context)
        user_dir = self._sender_dir(context)
        if not self.filesystem.exists_dir(user_dir):
            # "if a directory for this user does not exist yet it is created
            # automatically"
            self.filesystem.mkdir(user_dir)
        self.filesystem.write(user_dir, name, representation.text())
        created = element(
            f"{{{ns.WXF}}}ResourceCreated",
            self.epr({TRANSFER_RESOURCE_ID: f"{user_dir}/{name}"}).to_xml(),
        )
        return element(f"{{{ns.WXF}}}CreateResponse", created)

    @web_method(wxf_actions.GET)
    def wxf_get(self, context: MessageContext) -> XmlElement:
        user_dir, filename = self._split_key(context)
        if not filename:
            # EPR ends with "/": directory listing.
            listing = element(f"{{{ns.GIAB}}}FileListing")
            for name in list_directory(self.filesystem, user_dir):
                listing.append(element(f"{{{ns.GIAB}}}File", name))
            return element(f"{{{ns.WXF}}}GetResponse", listing)
        try:
            content = self.filesystem.read(user_dir, filename)
        except FileSystemError as exc:
            raise SoapFault("Client", str(exc))
        return element(
            f"{{{ns.WXF}}}GetResponse",
            element(f"{{{ns.GIAB}}}File", content, attrs={"Name": filename}),
        )

    @web_method(wxf_actions.PUT)
    def wxf_put(self, context: MessageContext) -> XmlElement:
        """Put "overrides an existing file with a newer version"."""
        user_dir, filename = self._split_key(context)
        replacement = next(context.body.element_children(), None)
        if replacement is None:
            raise SoapFault("Client", "Put needs a File representation")
        if not self.filesystem.exists(user_dir, filename):
            raise SoapFault("Client", f"no such file: {user_dir}/{filename}")
        self.filesystem.write(user_dir, filename, replacement.text())
        return element(f"{{{ns.WXF}}}PutResponse")

    @web_method(wxf_actions.DELETE)
    def wxf_delete(self, context: MessageContext) -> XmlElement:
        """Delete "removes a file permanently" — a single call (§4.2.3)."""
        user_dir, filename = self._split_key(context)
        try:
            self.filesystem.delete(user_dir, filename)
        except FileSystemError as exc:
            raise SoapFault("Client", str(exc))
        return element(f"{{{ns.WXF}}}DeleteResponse")
