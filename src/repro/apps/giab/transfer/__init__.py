"""The four WS-Transfer Grid-in-a-Box services (§4.2.2)."""

from repro.apps.giab.transfer.account import TransferAccountService
from repro.apps.giab.transfer.allocation import TransferResourceAllocationService
from repro.apps.giab.transfer.data import TransferDataService
from repro.apps.giab.transfer.execservice import TransferExecService
from repro.apps.giab.transfer.client import TransferGridAdmin, TransferGridClient

__all__ = [
    "TransferAccountService",
    "TransferResourceAllocationService",
    "TransferDataService",
    "TransferExecService",
    "TransferGridAdmin",
    "TransferGridClient",
]
