"""Grid user and admin clients for the WS-Transfer Grid-in-a-Box.

"There are ... two clients (grid user and admin client)."  Everything is
CRUD: the client encodes *which* behaviour it wants into the EPR it builds
(mode prefixes, DN/filename paths) — §4.2.3's observation that resource
names stop being opaque.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.addressing.epr import EndpointReference
from repro.apps.giab.common import TOPIC_JOB_EXITED
from repro.apps.giab.jobs import JobSpec
from repro.apps.giab.transfer.allocation import site_representation
from repro.container.client import SoapClient
from repro.crypto.x509 import DistinguishedName
from repro.eventing.delivery import EventingConsumer
from repro.eventing.source import actions as wse_actions
from repro.transfer.service import TRANSFER_RESOURCE_ID, actions as wxf_actions
from repro.xmllib import element, ns, text_of


def _epr(address: str, key: str | None = None) -> EndpointReference:
    epr = EndpointReference.create(address)
    if key is not None:
        epr = epr.with_property(TRANSFER_RESOURCE_ID, key)
    return epr


@dataclass
class TransferGridAdmin:
    soap: SoapClient
    account_address: str
    allocation_address: str

    def add_account(self, dn: str, privileges: list[str] | None = None) -> EndpointReference:
        account = element(f"{{{ns.GIAB}}}Account", element(f"{{{ns.GIAB}}}DN", dn))
        for privilege in privileges or []:
            account.append(element(f"{{{ns.GIAB}}}Privilege", privilege))
        response = self.soap.invoke(
            _epr(self.account_address), wxf_actions.CREATE, element(f"{{{ns.WXF}}}Create", account)
        )
        created = response.find(f"{{{ns.WXF}}}ResourceCreated")
        return EndpointReference.from_xml(created.find_local("EndpointReference"))

    def remove_account(self, dn: str) -> None:
        self.soap.invoke(
            _epr(self.account_address, dn), wxf_actions.DELETE, element(f"{{{ns.WXF}}}Delete")
        )

    def register_site(
        self, name: str, exec_address: str, data_address: str, applications: list[str]
    ) -> None:
        self.soap.invoke(
            _epr(self.allocation_address),
            wxf_actions.CREATE,
            element(
                f"{{{ns.WXF}}}Create",
                site_representation(name, exec_address, data_address, applications),
            ),
        )

    def remove_site(self, name: str) -> None:
        self.soap.invoke(
            _epr(self.allocation_address, name), wxf_actions.DELETE, element(f"{{{ns.WXF}}}Delete")
        )


@dataclass
class TransferGridClient:
    soap: SoapClient
    allocation_address: str
    dn: str
    # The server-assigned file directory, learned from the first upload's
    # ResourceCreated EPR.  The Data service keys files by the *verified*
    # sender ("anonymous" on an unsigned wire), so guessing from our own DN
    # only works under X.509 signing; honouring the minted EPR works in
    # every security mode.
    _server_dir: str | None = None

    # -- resource discovery: Get with the "1<app>" mode ------------------------------

    def get_available_resources(self, application: str) -> list[dict]:
        response = self.soap.invoke(
            _epr(self.allocation_address, f"1{application}"),
            wxf_actions.GET,
            element(f"{{{ns.WXF}}}Get"),
        )
        sites = []
        for site in response.find_local("AvailableResources").element_children():
            sites.append(
                {
                    "host": text_of(site.find_local("Name")),
                    "exec_address": text_of(site.find_local("ExecService")),
                    "data_address": text_of(site.find_local("DataService")),
                    "applications": [
                        a.text().strip()
                        for a in site.element_children()
                        if a.tag.local == "Application"
                    ],
                }
            )
        return sites

    # -- reservations: Put with R/U/T modes ----------------------------------------------

    def make_reservation(self, site: str, until: str = "") -> None:
        body = element(f"{{{ns.GIAB}}}ReservationRequest")
        if until:
            body.append(element(f"{{{ns.GIAB}}}ReservedUntil", until))
        self.soap.invoke(
            _epr(self.allocation_address, f"R{site}"),
            wxf_actions.PUT,
            element(f"{{{ns.WXF}}}Put", body),
        )

    def unreserve(self, site: str) -> None:
        self.soap.invoke(
            _epr(self.allocation_address, f"U{site}"),
            wxf_actions.PUT,
            element(f"{{{ns.WXF}}}Put", element(f"{{{ns.GIAB}}}ReservationRequest")),
        )

    def change_reservation_time(self, site: str, until: str) -> None:
        self.soap.invoke(
            _epr(self.allocation_address, f"T{site}"),
            wxf_actions.PUT,
            element(
                f"{{{ns.WXF}}}Put",
                element(
                    f"{{{ns.GIAB}}}ReservationRequest",
                    element(f"{{{ns.GIAB}}}ReservedUntil", until),
                ),
            ),
        )

    def reservation_holder(self, site: str) -> str:
        response = self.soap.invoke(
            _epr(self.allocation_address, site), wxf_actions.GET, element(f"{{{ns.WXF}}}Get")
        )
        return text_of(response)

    # -- files ------------------------------------------------------------------------------

    def _user_dir(self) -> str:
        if self._server_dir is not None:
            return self._server_dir
        return DistinguishedName.parse(self.dn).hashed()

    def upload_file(self, data_address: str, name: str, content: str) -> EndpointReference:
        response = self.soap.invoke(
            _epr(data_address),
            wxf_actions.CREATE,
            element(
                f"{{{ns.WXF}}}Create",
                element(f"{{{ns.GIAB}}}File", content, attrs={"Name": name}),
            ),
        )
        created = response.find(f"{{{ns.WXF}}}ResourceCreated")
        epr = EndpointReference.from_xml(created.find_local("EndpointReference"))
        key = epr.property(TRANSFER_RESOURCE_ID)
        if key and "/" in key:
            self._server_dir = key.partition("/")[0]
        return epr

    def list_files(self, data_address: str) -> list[str]:
        response = self.soap.invoke(
            _epr(data_address, f"{self._user_dir()}/"),
            wxf_actions.GET,
            element(f"{{{ns.WXF}}}Get"),
        )
        listing = response.find_local("FileListing")
        return [f.text().strip() for f in listing.element_children()]

    def download_file(self, data_address: str, name: str) -> str:
        response = self.soap.invoke(
            _epr(data_address, f"{self._user_dir()}/{name}"),
            wxf_actions.GET,
            element(f"{{{ns.WXF}}}Get"),
        )
        return response.find_local("File").text()

    def overwrite_file(self, data_address: str, name: str, content: str) -> None:
        self.soap.invoke(
            _epr(data_address, f"{self._user_dir()}/{name}"),
            wxf_actions.PUT,
            element(
                f"{{{ns.WXF}}}Put",
                element(f"{{{ns.GIAB}}}File", content, attrs={"Name": name}),
            ),
        )

    def delete_file(self, data_address: str, name: str) -> None:
        self.soap.invoke(
            _epr(data_address, f"{self._user_dir()}/{name}"),
            wxf_actions.DELETE,
            element(f"{{{ns.WXF}}}Delete"),
        )

    # -- jobs ------------------------------------------------------------------------------

    def start_job(self, exec_address: str, spec: JobSpec) -> EndpointReference:
        response = self.soap.invoke(
            _epr(exec_address),
            wxf_actions.CREATE,
            element(f"{{{ns.WXF}}}Create", spec.to_xml()),
        )
        created = response.find(f"{{{ns.WXF}}}ResourceCreated")
        return EndpointReference.from_xml(created.find_local("EndpointReference"))

    def job_status(self, job: EndpointReference) -> str:
        response = self.soap.invoke(job, wxf_actions.GET, element(f"{{{ns.WXF}}}Get"))
        for node in response.descendants():
            if node.tag.local == "State":
                return node.text().strip()
        return ""

    def kill_job(self, job: EndpointReference) -> None:
        self.soap.invoke(job, wxf_actions.DELETE, element(f"{{{ns.WXF}}}Delete"))

    def subscribe_job_exit(
        self, exec_address: str, job: EndpointReference, consumer: EventingConsumer
    ) -> EndpointReference:
        key = job.property(TRANSFER_RESOURCE_ID)
        filter_expression = (
            f"@Topic='{TOPIC_JOB_EXITED}' and JobExited[@job='{key}']"
        )
        body = element(
            f"{{{ns.WSE}}}Subscribe",
            element(f"{{{ns.WSE}}}Delivery", consumer.epr.to_xml(f"{{{ns.WSE}}}NotifyTo")),
            element(f"{{{ns.WSE}}}Filter", filter_expression),
        )
        response = self.soap.invoke(_epr(exec_address), wse_actions.SUBSCRIBE, body)
        return EndpointReference.from_xml(response.find(f"{{{ns.WSE}}}SubscriptionManager"))
