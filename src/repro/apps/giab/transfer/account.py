"""The WS-Transfer Account service (§4.2.2).

"Due to the relative simplicity of the account service the mapping of its
functionality to the corresponding WS-Transfer operations is very
intuitive": Create stores a new account resource whose EPR contains the
user's X.509 DN; Get answers whether a user may perform an action; Delete
removes all privileges.  Create and Delete are administrative.

This module is a *router*: the CRUD mapping and this stack's fault
phrasing over the shared account rules in :mod:`repro.apps.giab.logic`
and the document-per-DN layout in :mod:`repro.apps.giab.db`.
"""

from __future__ import annotations

from repro.apps.giab.db import TransferAccountsStore
from repro.apps.giab.logic import AdminPolicy, account_grants
from repro.apps.layers.logic import AccessDenied
from repro.container.service import MessageContext
from repro.soap.envelope import SoapFault
from repro.transfer.service import TransferResourceService
from repro.xmllib import element, ns, text_of
from repro.xmllib.element import XmlElement


class TransferAccountService(TransferResourceService):
    service_name = "Account"

    def __init__(self, collection, admins: set[str] | None = None):
        super().__init__(collection)
        self.accounts = TransferAccountsStore(collection)
        self.policy = AdminPolicy(admins)

    def _require_admin(self, context: MessageContext) -> None:
        try:
            self.policy.require_admin(context.sender)
        except AccessDenied as denied:
            raise SoapFault(
                "Client", f"{denied.subject} may not administer accounts"
            ) from denied

    def process_create(self, representation: XmlElement, context: MessageContext):
        self._require_admin(context)
        dn = text_of(representation.find_local("DN"))
        if not dn:
            raise SoapFault("Client", "account representation needs a DN")
        # "the EPR containing the X509 DN of the user": the DN *is* the key.
        return representation, None, dn

    def process_get(self, key: str, context: MessageContext) -> XmlElement:
        """Get = "queries the account service whether a particular user can
        perform a certain action".  The EPR names the user (DN); the body
        may name an action; the answer is a yes/no document."""
        account = self.accounts.find(key)
        action = text_of(context.body.find_local("Action"))
        if account is None:
            allowed = False
        elif action:
            allowed = account_grants(account, action)
        else:
            allowed = True  # account exists
        return element(f"{{{ns.GIAB}}}AccountCheck", "true" if allowed else "false")

    def process_delete(self, key: str, context: MessageContext) -> None:
        self._require_admin(context)
