"""The unified WS-Transfer ResourceAllocation/Reservation service (§4.2.2).

One service stores two kinds of resources — computing sites and their
reservations — which WS-Transfer permits ("WS-Transfer is more flexible
with the number of different types of resources a service can store").
The cost is mode-dispatch on the *shape of the EPR*:

* Get with an id starting ``1`` → available-resources query ("1<app>");
* Get with any other id → who holds the reservation on that site;
* Put with id ``R<site>`` → make a reservation, ``U<site>`` → remove it,
  ``T<site>`` → change the reserved-until time.

Since WS-Transfer lacks lifetime management, "reservation lifetimes must be
managed manually": nothing expires a reservation here, and a client that
forgets to unreserve blocks the site — a failure mode the tests exercise.

This module is a *router*: the CRUD/mode-dispatch mapping and this
stack's fault phrasing over the shared availability and reservation rules
in :mod:`repro.apps.giab.logic` and the :class:`SiteRegistry` accessor in
:mod:`repro.apps.giab.db`.
"""

from __future__ import annotations

from repro.addressing.epr import EndpointReference
from repro.apps.giab.db import SiteRegistry, site_applications, site_field
from repro.apps.giab.logic import (
    AdminPolicy,
    AlreadyReserved,
    NotReserved,
    ReservationRules,
    WrongHolder,
    application_available,
)
from repro.apps.layers.logic import AccessDenied, LogicError
from repro.apps.layers.router import transfer_fault, transfer_faults
from repro.container.service import MessageContext, web_method
from repro.soap.envelope import SoapFault
from repro.transfer.service import (
    TRANSFER_RESOURCE_ID,
    TransferResourceService,
    actions as wxf_actions,
)
from repro.xmllib import element, ns, text_of
from repro.xmllib.element import XmlElement


def site_representation(
    name: str, exec_address: str, data_address: str, applications: list[str]
) -> XmlElement:
    node = element(
        f"{{{ns.GIAB}}}Site",
        element(f"{{{ns.GIAB}}}Name", name),
        element(f"{{{ns.GIAB}}}ExecService", exec_address),
        element(f"{{{ns.GIAB}}}DataService", data_address),
        element(f"{{{ns.GIAB}}}ReservedBy", ""),
        element(f"{{{ns.GIAB}}}ReservedUntil", ""),
    )
    for app in applications:
        node.append(element(f"{{{ns.GIAB}}}Application", app))
    return node


def _deep_text(doc: XmlElement, local: str) -> str:
    """Text of the first descendant with the given local name ("" if none).

    Put bodies nest the interesting fields inside a request wrapper; with no
    schema to anchor on (<xsd:any>!) we go by local name wherever it sits.
    """
    for node in doc.descendants():
        if node.tag.local == local:
            return node.text().strip()
    return ""


class TransferResourceAllocationService(TransferResourceService):
    service_name = "ResourceAllocation"

    def __init__(self, collection, account_address: str = "", admins: set[str] | None = None):
        super().__init__(collection)
        self.sites = SiteRegistry(collection)
        self.account_address = account_address
        self.policy = AdminPolicy(admins)

    def enable_indexes(self) -> None:
        """Declare the application index over Site documents.  Opt-in: the
        "1<app>" availability query then walks the posting list for the
        application instead of every site; default costs are unchanged."""
        self.sites.declare_indexes()

    # -- Create / Delete: computing sites (administrative) --------------------------

    def process_create(self, representation: XmlElement, context: MessageContext):
        try:
            self.policy.require_admin(context.sender)
        except AccessDenied as denied:
            raise SoapFault("Client", f"{denied.subject} may not register sites") from denied
        name = text_of(representation.find_local("Name"))
        if not name:
            raise SoapFault("Client", "site representation needs a Name")
        if name.startswith(("1", "R", "U", "T")):
            # The mode-dispatch convention makes these prefixes unusable as
            # site names — an idiosyncrasy the paper's design invites.
            raise SoapFault("Client", f"site name may not start with a mode prefix: {name}")
        return representation, None, name

    def process_delete(self, key: str, context: MessageContext) -> None:
        try:
            self.policy.require_admin(context.sender)
        except AccessDenied as denied:
            raise SoapFault("Client", f"{denied.subject} may not remove sites") from denied

    # -- Get: mode dispatch ----------------------------------------------------------

    def process_get(self, key: str, context: MessageContext) -> XmlElement:
        if key.startswith("1"):
            return self._available_resources(key[1:])
        site = self.sites.find(key)
        if site is None:
            raise SoapFault("Client", f"no site {key}")
        with transfer_faults():
            holder = text_of(site_field(site, "ReservedBy"))
        return element(f"{{{ns.GIAB}}}ReservationHolder", holder)

    def _available_resources(self, application: str) -> XmlElement:
        response = element(f"{{{ns.GIAB}}}AvailableResources")
        with transfer_faults():
            for _key, site in self.sites.with_application(application):
                reserved = bool(text_of(site_field(site, "ReservedBy")))
                if application_available(site_applications(site), application, reserved):
                    response.append(site.copy())
        return response

    # -- Put: three reservation modes --------------------------------------------------

    def process_put(
        self, key: str, old: XmlElement | None, replacement: XmlElement, context: MessageContext
    ) -> XmlElement:
        raise SoapFault("Server", "unreachable: wxf_put is overridden")

    @web_method(wxf_actions.PUT)
    def wxf_put(self, context: MessageContext) -> XmlElement:
        key = self._require_key(context)
        mode, site_name = key[:1], key[1:]
        if mode not in ("R", "U", "T"):
            raise SoapFault("Client", f"Put EPR has no reservation mode: {key}")
        site = self.sites.find(site_name)
        if site is None:
            raise SoapFault("Client", f"no site {site_name}")
        sender = str(context.sender) if context.sender is not None else "anonymous"
        if mode == "R":
            self._make_reservation(site, site_name, sender, context)
        elif mode == "U":
            self._remove_reservation(site, site_name, sender)
        else:
            self._change_time(site, context)
        self.sites.save(site_name, site)
        return element(f"{{{ns.WXF}}}PutResponse", site.copy())

    def _make_reservation(
        self, site: XmlElement, site_name: str, sender: str, context: MessageContext
    ) -> None:
        try:
            ReservationRules.require_unreserved(
                bool(text_of(site_field(site, "ReservedBy"))), site_name
            )
        except AlreadyReserved as already:
            raise SoapFault("Client", f"site {already.subject} is already reserved") from already
        except LogicError as error:
            raise transfer_fault(error) from error
        # Identity checks need signed messages; unsigned deployments skip.
        if self.account_address and sender != "anonymous":
            check = context.client().invoke(
                EndpointReference.create(self.account_address).with_property(
                    TRANSFER_RESOURCE_ID, sender
                ),
                wxf_actions.GET,
                element(f"{{{ns.WXF}}}Get"),
            )
            try:
                ReservationRules.require_account(check.text().strip() == "true", sender)
            except LogicError as error:
                raise transfer_fault(error) from error
        until = _deep_text(context.body, "ReservedUntil")
        with transfer_faults():
            site_field(site, "ReservedBy").children = [sender]
            site_field(site, "ReservedUntil").children = [until] if until else []

    def _remove_reservation(self, site: XmlElement, site_name: str, sender: str) -> None:
        with transfer_faults():
            holder = text_of(site_field(site, "ReservedBy"))
        try:
            ReservationRules.require_holder(holder, sender, site_name)
        except NotReserved as unreserved:
            raise SoapFault("Client", f"site {unreserved.subject} is not reserved") from unreserved
        except WrongHolder as wrong:
            raise SoapFault(
                "Client", f"reservation on {wrong.subject} belongs to {wrong.holder}"
            ) from wrong
        with transfer_faults():
            site_field(site, "ReservedBy").children = []
            site_field(site, "ReservedUntil").children = []

    def _change_time(self, site: XmlElement, context: MessageContext) -> None:
        with transfer_faults():
            reserved = bool(text_of(site_field(site, "ReservedBy")))
        if not reserved:
            raise SoapFault("Client", "cannot change time of an unreserved site")
        until = _deep_text(context.body, "ReservedUntil")
        if not until:
            raise SoapFault("Client", "mode T needs a ReservedUntil in the body")
        with transfer_faults():
            site_field(site, "ReservedUntil").children = [until]
