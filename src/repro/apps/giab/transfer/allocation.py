"""The unified WS-Transfer ResourceAllocation/Reservation service (§4.2.2).

One service stores two kinds of resources — computing sites and their
reservations — which WS-Transfer permits ("WS-Transfer is more flexible
with the number of different types of resources a service can store").
The cost is mode-dispatch on the *shape of the EPR*:

* Get with an id starting ``1`` → available-resources query ("1<app>");
* Get with any other id → who holds the reservation on that site;
* Put with id ``R<site>`` → make a reservation, ``U<site>`` → remove it,
  ``T<site>`` → change the reserved-until time.

Since WS-Transfer lacks lifetime management, "reservation lifetimes must be
managed manually": nothing expires a reservation here, and a client that
forgets to unreserve blocks the site — a failure mode the tests exercise.
"""

from __future__ import annotations

from repro.addressing.epr import EndpointReference
from repro.container.service import MessageContext, web_method
from repro.soap.envelope import SoapFault
from repro.transfer.service import (
    TRANSFER_RESOURCE_ID,
    TransferResourceService,
    actions as wxf_actions,
)
from repro.xmllib import element, ns, text_of
from repro.xmllib.element import XmlElement
from repro.xmllib.xpath import xpath_literal

_GIAB_PREFIXES = {"g": ns.GIAB}
#: Index path over Site documents (opt-in via ``enable_indexes``).
APPLICATION_INDEX_PATH = "//g:Application"


def site_representation(
    name: str, exec_address: str, data_address: str, applications: list[str]
) -> XmlElement:
    node = element(
        f"{{{ns.GIAB}}}Site",
        element(f"{{{ns.GIAB}}}Name", name),
        element(f"{{{ns.GIAB}}}ExecService", exec_address),
        element(f"{{{ns.GIAB}}}DataService", data_address),
        element(f"{{{ns.GIAB}}}ReservedBy", ""),
        element(f"{{{ns.GIAB}}}ReservedUntil", ""),
    )
    for app in applications:
        node.append(element(f"{{{ns.GIAB}}}Application", app))
    return node


def _field(doc: XmlElement, local: str) -> XmlElement:
    node = doc.find_local(local)
    if node is None:
        raise SoapFault("Server", f"site document lacks {local}")
    return node


def _deep_text(doc: XmlElement, local: str) -> str:
    """Text of the first descendant with the given local name ("" if none).

    Put bodies nest the interesting fields inside a request wrapper; with no
    schema to anchor on (<xsd:any>!) we go by local name wherever it sits.
    """
    for node in doc.descendants():
        if node.tag.local == local:
            return node.text().strip()
    return ""


class TransferResourceAllocationService(TransferResourceService):
    service_name = "ResourceAllocation"

    def __init__(self, collection, account_address: str = "", admins: set[str] | None = None):
        super().__init__(collection)
        self.account_address = account_address
        self.admins = admins or set()

    def enable_indexes(self) -> None:
        """Declare the application index over Site documents.  Opt-in: the
        "1<app>" availability query then walks the posting list for the
        application instead of every site; default costs are unchanged."""
        self.collection.declare_index(APPLICATION_INDEX_PATH, _GIAB_PREFIXES)

    # -- Create / Delete: computing sites (administrative) --------------------------

    def process_create(self, representation: XmlElement, context: MessageContext):
        if context.sender is not None and str(context.sender) not in self.admins:
            raise SoapFault("Client", f"{context.sender} may not register sites")
        name = text_of(representation.find_local("Name"))
        if not name:
            raise SoapFault("Client", "site representation needs a Name")
        if name.startswith(("1", "R", "U", "T")):
            # The mode-dispatch convention makes these prefixes unusable as
            # site names — an idiosyncrasy the paper's design invites.
            raise SoapFault("Client", f"site name may not start with a mode prefix: {name}")
        return representation, None, name

    def process_delete(self, key: str, context: MessageContext) -> None:
        if context.sender is not None and str(context.sender) not in self.admins:
            raise SoapFault("Client", f"{context.sender} may not remove sites")

    # -- Get: mode dispatch ----------------------------------------------------------

    def process_get(self, key: str, context: MessageContext) -> XmlElement:
        if key.startswith("1"):
            return self._available_resources(key[1:])
        site = self._load(key)
        if site is None:
            raise SoapFault("Client", f"no site {key}")
        return element(
            f"{{{ns.GIAB}}}ReservationHolder", text_of(_field(site, "ReservedBy"))
        )

    def _available_resources(self, application: str) -> XmlElement:
        response = element(f"{{{ns.GIAB}}}AvailableResources")
        for key, site in self._candidate_sites(application):
            apps = [
                a.text().strip()
                for a in site.element_children()
                if a.tag.local == "Application"
            ]
            if application not in apps:
                continue
            if text_of(_field(site, "ReservedBy")):
                continue
            response.append(site.copy())
        return response

    def _candidate_sites(self, application: str):
        """(key, Site) pairs to consider for an availability query: the
        application index's posting list when declared (and the value is
        spellable as an XPath literal), else every site.  The caller
        re-applies the full filter, so responses are identical."""
        literal = xpath_literal(application)
        if literal is not None and (
            self.collection.find_index(APPLICATION_INDEX_PATH, _GIAB_PREFIXES) is not None
        ):
            keys = self.collection.query_keys(
                f"{APPLICATION_INDEX_PATH}[. = {literal}]", _GIAB_PREFIXES
            )
            return [(key, self.collection.read(key)) for key in keys]
        return list(self.collection.documents())

    # -- Put: three reservation modes --------------------------------------------------

    def process_put(
        self, key: str, old: XmlElement | None, replacement: XmlElement, context: MessageContext
    ) -> XmlElement:
        raise SoapFault("Server", "unreachable: wxf_put is overridden")

    @web_method(wxf_actions.PUT)
    def wxf_put(self, context: MessageContext) -> XmlElement:
        key = self._require_key(context)
        mode, site_name = key[:1], key[1:]
        if mode not in ("R", "U", "T"):
            raise SoapFault("Client", f"Put EPR has no reservation mode: {key}")
        site = self._load(site_name)
        if site is None:
            raise SoapFault("Client", f"no site {site_name}")
        sender = str(context.sender) if context.sender is not None else "anonymous"
        if mode == "R":
            self._make_reservation(site, site_name, sender, context)
        elif mode == "U":
            self._remove_reservation(site, site_name, sender)
        else:
            self._change_time(site, context)
        self.collection.update(site_name, site)
        return element(f"{{{ns.WXF}}}PutResponse", site.copy())

    def _make_reservation(
        self, site: XmlElement, site_name: str, sender: str, context: MessageContext
    ) -> None:
        if text_of(_field(site, "ReservedBy")):
            raise SoapFault("Client", f"site {site_name} is already reserved")
        # Identity checks need signed messages; unsigned deployments skip.
        if self.account_address and sender != "anonymous":
            check = context.client().invoke(
                EndpointReference.create(self.account_address).with_property(
                    TRANSFER_RESOURCE_ID, sender
                ),
                wxf_actions.GET,
                element(f"{{{ns.WXF}}}Get"),
            )
            if check.text().strip() != "true":
                raise SoapFault("Client", f"no VO account for {sender}")
        until = _deep_text(context.body, "ReservedUntil")
        _field(site, "ReservedBy").children = [sender]
        _field(site, "ReservedUntil").children = [until] if until else []

    def _remove_reservation(self, site: XmlElement, site_name: str, sender: str) -> None:
        holder = text_of(_field(site, "ReservedBy"))
        if not holder:
            raise SoapFault("Client", f"site {site_name} is not reserved")
        if holder != sender and sender != "anonymous":
            raise SoapFault("Client", f"reservation on {site_name} belongs to {holder}")
        _field(site, "ReservedBy").children = []
        _field(site, "ReservedUntil").children = []

    def _change_time(self, site: XmlElement, context: MessageContext) -> None:
        if not text_of(_field(site, "ReservedBy")):
            raise SoapFault("Client", "cannot change time of an unreserved site")
        until = _deep_text(context.body, "ReservedUntil")
        if not until:
            raise SoapFault("Client", "mode T needs a ReservedUntil in the body")
        _field(site, "ReservedUntil").children = [until]
