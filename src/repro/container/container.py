"""The container: Figure 1's outer box.

Processing order for each request, as in the paper: the inbound filter
pass pays receive costs, enforces mustUnderstand, authenticates and
reads the addressing headers (with WS-RM replay detection last); the
container dispatches to the service; the outbound pass builds, signs,
serializes and charges the reply.  All of that order lives in the
deployment's :class:`~repro.pipeline.FilterChain` — this class only
drives it and hosts the services.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.container.security import Credentials, SecurityError
from repro.container.service import MessageContext, ServiceSkeleton
from repro.pipeline import PipelineContext, ReliableMessagingFilter
from repro.sim.network import Host, Network
from repro.soap.envelope import SoapFault
from repro.soap.message import WireMessage

if TYPE_CHECKING:  # pragma: no cover
    from repro.container.client import SoapClient
    from repro.container.deployment import Deployment


class Container:
    """Hosts services on one machine and processes their requests."""

    def __init__(
        self,
        deployment: "Deployment",
        host: Host,
        name: str,
        credentials: Credentials | None = None,
    ) -> None:
        self.deployment = deployment
        self.host = host
        self.name = name
        self.credentials = credentials
        self.network: Network = deployment.network
        #: This container's filter chain; its reliability filter owns the
        #: WS-RM reply cache, so the cache is per-container as before.
        self.chain = deployment.pipeline()
        self.services: dict[str, ServiceSkeleton] = {}

    @property
    def security(self):
        """The deployment-wide security handler (one per deployment)."""
        return self.deployment.security_filter.handler

    @property
    def request_log(self):
        """WS-RM destination-side reply cache (lives in the chain)."""
        return self.chain.find(ReliableMessagingFilter).log

    # -- deployment -------------------------------------------------------------

    def add_service(self, service: ServiceSkeleton) -> str:
        """Register a service; returns its address."""
        address = f"soap://{self.host.name}/{self.name}/{service.service_name}"
        if address in self.services:
            raise ValueError(f"duplicate service address: {address}")
        self.services[address] = service
        service.attached(self, address)
        self.deployment.register_endpoint(address, self.host, self)
        return address

    def outcall_client(self) -> "SoapClient":
        from repro.container.client import SoapClient

        client = SoapClient(self.deployment, self.host, self.credentials)
        if self.deployment.reliability is not None:
            from repro.reliable.channel import ReliableChannel

            return ReliableChannel(
                client, self.deployment.reliability, self.deployment.dead_letters
            )
        return client

    # -- request processing -------------------------------------------------------

    def handle(self, message: WireMessage) -> WireMessage:
        """Process one request message and produce the response message.

        Transport costs are charged by the caller (the client proxy); the
        filter passes charge server-side processing.
        """
        ctx = PipelineContext.server_request(self, message)
        # Sanitizer execution context: every store mutation below is
        # attributed to this host and this request (no-op when detached).
        with self.network.sanitizer_scope(self.host.name):
            try:
                self.chain.run_inbound(ctx)
                if ctx.replayed:
                    return ctx.response_message
                service = self.services.get(ctx.headers.to)
                if service is None:
                    raise SoapFault("Client", f"no service at {ctx.headers.to}")
                with ctx.span("dispatch", detail=ctx.headers.action):
                    context = MessageContext(
                        headers=ctx.headers,
                        body=ctx.request_envelope.body_child(),
                        sender=ctx.sender,
                        container=self,
                    )
                    ctx.result = service.dispatch(context)
            except SoapFault as fault:
                ctx.fault = fault
            except SecurityError as exc:
                ctx.fault = SoapFault("Client", f"security failure: {exc}")
            self.chain.run_outbound(ctx)
            return ctx.response_message
