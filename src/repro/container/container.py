"""The container: Figure 1's outer box.

Processing order for each request, as in the paper: Dispatch routes to the
service, the Security handler authenticates, the service executes against
its storage, and the response passes back through the security handler to
be signed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.addressing.headers import MessageHeaders
from repro.container.security import Credentials, SecurityError, SecurityHandler
from repro.container.service import MessageContext, ServiceSkeleton
from repro.reliable.sequence import (
    MESSAGE_NUMBER_HEADER,
    SEQUENCE_ID_HEADER,
    InboundRequestLog,
)
from repro.sim.network import Host, Network
from repro.soap.envelope import Envelope, SoapFault, build_envelope, build_fault_envelope
from repro.soap.message import WireMessage
from repro.xmllib.element import XmlElement

if TYPE_CHECKING:  # pragma: no cover
    from repro.container.client import SoapClient
    from repro.container.deployment import Deployment


class Container:
    """Hosts services on one machine and processes their requests."""

    def __init__(
        self,
        deployment: "Deployment",
        host: Host,
        name: str,
        credentials: Credentials | None = None,
    ) -> None:
        self.deployment = deployment
        self.host = host
        self.name = name
        self.credentials = credentials
        self.network: Network = deployment.network
        self.security = SecurityHandler(
            deployment.policy, deployment.network, deployment.ca, deployment.trust
        )
        self.services: dict[str, ServiceSkeleton] = {}
        #: WS-RM destination-side reply cache: retransmitted requests are
        #: answered from here without re-executing the service, which is
        #: what turns the channel's at-least-once into exactly-once.
        self.request_log = InboundRequestLog()

    # -- deployment -------------------------------------------------------------

    def add_service(self, service: ServiceSkeleton) -> str:
        """Register a service; returns its address."""
        address = f"soap://{self.host.name}/{self.name}/{service.service_name}"
        if address in self.services:
            raise ValueError(f"duplicate service address: {address}")
        self.services[address] = service
        service.attached(self, address)
        self.deployment.register_endpoint(address, self.host, self)
        return address

    def outcall_client(self) -> "SoapClient":
        from repro.container.client import SoapClient

        client = SoapClient(self.deployment, self.host, self.credentials)
        if self.deployment.reliability is not None:
            from repro.reliable.channel import ReliableChannel

            return ReliableChannel(
                client, self.deployment.reliability, self.deployment.dead_letters
            )
        return client

    # -- request processing -------------------------------------------------------

    def handle(self, message: WireMessage) -> WireMessage:
        """Process one request message and produce the response message.

        Transport costs are charged by the caller (the client proxy); this
        method charges server-side processing.
        """
        costs = self.network.costs
        self.network.charge(
            costs.soap_dispatch
            + costs.soap_per_message
            + costs.xml_parse_per_kb * message.n_kb,
            "server.receive",
        )
        request = message.parse()
        request_headers: MessageHeaders | None = None
        try:
            self._check_must_understand(request)
            sender = self.security.verify_incoming(request)
            request_headers = MessageHeaders.from_header_element(request.header)
            rm_key = self._sequence_key(request_headers)
            if rm_key is not None:
                cached = self.request_log.replay(rm_key)
                if cached is not None:
                    # Retransmission: the first execution's reply went
                    # missing on the wire.  Answer from the cache.
                    self.network.charge(costs.soap_per_message, "server.send")
                    return cached
            service = self.services.get(request_headers.to)
            if service is None:
                raise SoapFault("Client", f"no service at {request_headers.to}")
            context = MessageContext(
                headers=request_headers,
                body=request.body_child(),
                sender=sender,
                container=self,
            )
            result = service.dispatch(context)
            response = self._response_envelope(request_headers, result)
        except SoapFault as fault:
            response = build_fault_envelope(
                self._reply_headers(request_headers), fault
            )
        except SecurityError as exc:
            response = build_fault_envelope(
                self._reply_headers(request_headers),
                SoapFault("Client", f"security failure: {exc}"),
            )
        try:
            self.security.secure_outgoing(response, self.credentials)
        except SecurityError:
            # A misconfigured (credential-less) container cannot sign; send
            # the response unsigned and let the client's policy reject it.
            pass
        reply = WireMessage.from_envelope(response)
        self.network.charge(
            costs.soap_per_message + costs.xml_serialize_per_kb * reply.n_kb,
            "server.send",
        )
        if request_headers is not None:
            rm_key = self._sequence_key(request_headers)
            if rm_key is not None:
                self.request_log.store(rm_key, reply)
        return reply

    @staticmethod
    def _sequence_key(headers: MessageHeaders) -> tuple[str, int] | None:
        """The (sequence id, message number) stamp, if the request has one."""
        identifier = number = None
        for key, value in headers.reference_properties:
            if key == SEQUENCE_ID_HEADER:
                identifier = value
            elif key == MESSAGE_NUMBER_HEADER:
                number = value
        if identifier and number and number.isdigit():
            return identifier, int(number)
        return None

    #: Header namespaces this container processes (WS-I processing model).
    _UNDERSTOOD = ()

    def _check_must_understand(self, request: Envelope) -> None:
        """Fault on mustUnderstand="1" headers this node cannot process.

        WS-Addressing, WS-Security and signature headers are processed
        here; anything else flagged mandatory earns a MustUnderstand fault
        (SOAP 1.1 §4.2.3) instead of being silently ignored.
        """
        from repro.xmllib import QName, ns as nsmod

        understood = {nsmod.WSA, nsmod.WSSE, nsmod.DS}
        flag = QName(nsmod.SOAP, "mustUnderstand")
        for header in request.header.element_children():
            if header.attributes.get(flag) in ("1", "true") and header.tag.namespace not in understood:
                raise SoapFault(
                    "MustUnderstand",
                    f"mandatory header {header.tag.clark()} not understood",
                )

    def _reply_headers(self, request_headers: MessageHeaders | None) -> list[XmlElement]:
        if request_headers is None:
            return []
        reply = MessageHeaders(
            to="soap://anonymous",
            action=request_headers.action + "Response",
            relates_to=request_headers.message_id,
        )
        return reply.to_elements()

    def _response_envelope(
        self, request_headers: MessageHeaders, result: XmlElement | None
    ) -> Envelope:
        body = [result] if result is not None else []
        return build_envelope(self._reply_headers(request_headers), body)
