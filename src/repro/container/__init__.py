"""The generic resource-aware container (the paper's Figure 1).

A request enters the container, the Dispatch mechanism routes it to the
correct service, the Security/Policy handler authenticates and verifies
signatures, the service code runs against state loaded from storage, and the
response passes back out through the security handler.  Both stacks are
built on this one container — exactly the architecture shared by WSRF.NET
and the WS-Transfer implementation in the paper.
"""

from repro.container.security import (
    Credentials,
    SecurityError,
    SecurityMode,
    SecurityPolicy,
)
from repro.container.service import MessageContext, ServiceSkeleton, web_method
from repro.container.container import Container
from repro.container.deployment import Deployment, NotificationSink
from repro.container.client import SoapClient

__all__ = [
    "Credentials",
    "SecurityError",
    "SecurityMode",
    "SecurityPolicy",
    "MessageContext",
    "ServiceSkeleton",
    "web_method",
    "Container",
    "Deployment",
    "NotificationSink",
    "SoapClient",
]
