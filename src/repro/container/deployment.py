"""Deployment: the wiring of hosts, containers, endpoints and trust.

One :class:`Deployment` is one measurement scenario: it fixes the security
policy, owns the simulated network, and resolves addresses — both container
endpoints and client-side notification sinks (the "custom HTTP server" a
WSRF.NET client embeds, or the persistent-TCP ``SoapReceiver`` a Plumbwork
Orange client uses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.container.container import Container
from repro.container.security import Credentials, SecurityPolicy
from repro.crypto.x509 import Certificate, CertificateAuthority
from repro.pipeline import FilterChain, PipelineContext, SecurityFilter
from repro.reliable.deadletter import DeadLetterLog
from repro.reliable.policy import RetryPolicy
from repro.sim.costs import CostModel
from repro.sim.network import Host, Network, TransportKind
from repro.soap.envelope import Envelope


@dataclass
class NotificationSink:
    """A client-side endpoint that receives asynchronous notifications.

    ``kind`` selects the delivery path and its cost: ``"http-server"``
    models WSRF.NET's embedded per-delivery HTTP server; ``"tcp-receiver"``
    models WS-Eventing's persistent-TCP SoapReceiver.  This asymmetry is the
    paper's explanation for WS-Eventing's "considerably better" Notify.
    """

    address: str
    host: Host
    handler: Callable[[Envelope], None]
    kind: str = "http-server"

    @property
    def transport(self) -> TransportKind:
        return TransportKind.TCP if self.kind == "tcp-receiver" else TransportKind.HTTP

    def delivery_overhead(self, costs: CostModel) -> float:
        if self.kind == "tcp-receiver":
            return costs.notify_tcp_overhead
        return costs.notify_http_overhead


class Deployment:
    """A virtual organisation deployment under one security scenario."""

    def __init__(
        self,
        policy: SecurityPolicy | None = None,
        cost_model: CostModel | None = None,
        ca: CertificateAuthority | None = None,
    ) -> None:
        self.policy = policy or SecurityPolicy()
        self.network = Network(cost_model)
        self.ca = ca
        self.trust: dict[str, Certificate] = {}
        #: The one security filter every chain shares (clients, containers
        #: and notification delivery sign/verify with the same handler).
        self.security_filter = SecurityFilter(self.policy, self.network, ca, self.trust)
        #: Chain driving producer→consumer notification delivery.
        self.notification_chain = self.pipeline()
        self._hosts: dict[str, Host] = {}
        self._containers: dict[str, Container] = {}
        self._endpoints: dict[str, tuple[Host, Container]] = {}
        self._sinks: dict[str, NotificationSink] = {}
        self._sink_counter = 0
        #: When set, container out-calls are wrapped in a
        #: :class:`~repro.reliable.channel.ReliableChannel` with this policy.
        self.reliability: RetryPolicy | None = None
        #: Shared terminal record for undeliverable messages.
        self.dead_letters = DeadLetterLog()

    def pipeline(self) -> FilterChain:
        """A fresh filter chain for this deployment's policy.

        Apps, containers and benchmarks construct chains here instead of
        wiring handlers by hand; the security filter is shared so the
        whole deployment signs and verifies with one handler.
        """
        return FilterChain.standard(self.security_filter)

    # -- topology -----------------------------------------------------------

    def host(self, name: str) -> Host:
        existing = self._hosts.get(name)
        if existing is None:
            existing = Host(name)
            self._hosts[name] = existing
        return existing

    def add_container(
        self, host_name: str, container_name: str, credentials: Credentials | None = None
    ) -> Container:
        key = f"{host_name}/{container_name}"
        if key in self._containers:
            raise ValueError(f"duplicate container: {key}")
        container = Container(self, self.host(host_name), container_name, credentials)
        self._containers[key] = container
        if credentials is not None:
            self.add_trust(credentials.certificate)
        return container

    def add_trust(self, certificate: Certificate) -> None:
        self.trust[str(certificate.subject)] = certificate

    def register_endpoint(self, address: str, host: Host, container: Container) -> None:
        if address in self._endpoints:
            raise ValueError(f"duplicate endpoint: {address}")
        self._endpoints[address] = (host, container)

    def resolve(self, address: str) -> tuple[Host, Container]:
        entry = self._endpoints.get(address)
        if entry is None:
            raise LookupError(f"no endpoint registered at {address}")
        return entry

    # -- notification sinks ---------------------------------------------------

    def add_sink(
        self,
        host_name: str,
        handler: Callable[[Envelope], None],
        kind: str = "http-server",
    ) -> NotificationSink:
        self._sink_counter += 1
        address = f"soap://{host_name}/_sink/{self._sink_counter}"
        sink = NotificationSink(address, self.host(host_name), handler, kind)
        self._sinks[address] = sink
        return sink

    def deliver_notification(
        self,
        from_host: Host,
        sink_address: str,
        envelope: Envelope,
        credentials: Credentials | None = None,
    ) -> bool:
        """Producer-side delivery of one notification message.

        Returns False when the sink is unknown (consumer gone) — producers
        treat that as a dropped delivery, not an error.  Injected transport
        faults (:class:`~repro.sim.faults.DeliveryFault`) propagate to the
        caller; a fault-injected *duplicate* hands the sink two copies, so
        unguarded consumers see the raw at-least-once stream (the reliable
        layer's :class:`~repro.reliable.sequence.InboundDeduper` collapses
        it back to exactly-once).
        """
        sink = self._sinks.get(sink_address)
        if sink is None:
            return False
        chain = self.notification_chain
        out_ctx = PipelineContext.notify_outbound(self, envelope, credentials, sink)
        with out_ctx.span("notify.deliver", detail=sink_address):
            chain.run_outbound(out_ctx)
            message = out_ctx.request_message
            with out_ctx.span("wire.notify"):
                copies = self.network.transmit(
                    from_host, sink.host, message.n_bytes, sink.transport,
                    service=sink_address,
                )
                self.network.metrics.log_message(
                    self.network.clock.now, from_host.name, sink_address,
                    "Notify", message.n_bytes, kind="notify",
                )
            for _ in range(copies):
                in_ctx = PipelineContext.notify_inbound(self, message, sink)
                chain.run_inbound(in_ctx)
                sink.handler(in_ctx.request_envelope)
        return True

    # -- identity helpers --------------------------------------------------------

    def issue_credentials(self, common_name: str, *, seed: int) -> Credentials:
        """Issue signed credentials from this deployment's CA and trust them."""
        if self.ca is None:
            raise RuntimeError("deployment has no certificate authority")
        certificate, keypair = self.ca.issue_identity(common_name, seed=seed)
        credentials = Credentials(certificate, keypair)
        self.add_trust(certificate)
        return credentials
