"""Deployment: the wiring of hosts, containers, endpoints and trust.

One :class:`Deployment` is one measurement scenario: it fixes the security
policy, owns the simulated network, and resolves addresses — both container
endpoints and client-side notification sinks (the "custom HTTP server" a
WSRF.NET client embeds, or the persistent-TCP ``SoapReceiver`` a Plumbwork
Orange client uses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.container.container import Container
from repro.container.security import Credentials, SecurityPolicy
from repro.crypto.x509 import Certificate, CertificateAuthority, DistinguishedName
from repro.crypto.xmldsig import DsigError, signer_subject, verify_element
from repro.reliable.deadletter import DeadLetterLog
from repro.reliable.policy import RetryPolicy
from repro.sim.costs import CostModel
from repro.sim.network import Host, Network, TransportKind
from repro.soap.envelope import Envelope
from repro.soap.message import WireMessage
from repro.xmllib import QName, ns


@dataclass
class NotificationSink:
    """A client-side endpoint that receives asynchronous notifications.

    ``kind`` selects the delivery path and its cost: ``"http-server"``
    models WSRF.NET's embedded per-delivery HTTP server; ``"tcp-receiver"``
    models WS-Eventing's persistent-TCP SoapReceiver.  This asymmetry is the
    paper's explanation for WS-Eventing's "considerably better" Notify.
    """

    address: str
    host: Host
    handler: Callable[[Envelope], None]
    kind: str = "http-server"

    @property
    def transport(self) -> TransportKind:
        return TransportKind.TCP if self.kind == "tcp-receiver" else TransportKind.HTTP

    def delivery_overhead(self, costs: CostModel) -> float:
        if self.kind == "tcp-receiver":
            return costs.notify_tcp_overhead
        return costs.notify_http_overhead


class Deployment:
    """A virtual organisation deployment under one security scenario."""

    def __init__(
        self,
        policy: SecurityPolicy | None = None,
        cost_model: CostModel | None = None,
        ca: CertificateAuthority | None = None,
    ) -> None:
        self.policy = policy or SecurityPolicy()
        self.network = Network(cost_model)
        self.ca = ca
        self.trust: dict[str, Certificate] = {}
        self._hosts: dict[str, Host] = {}
        self._containers: dict[str, Container] = {}
        self._endpoints: dict[str, tuple[Host, Container]] = {}
        self._sinks: dict[str, NotificationSink] = {}
        self._sink_counter = 0
        #: When set, container out-calls are wrapped in a
        #: :class:`~repro.reliable.channel.ReliableChannel` with this policy.
        self.reliability: RetryPolicy | None = None
        #: Shared terminal record for undeliverable messages.
        self.dead_letters = DeadLetterLog()

    # -- topology -----------------------------------------------------------

    def host(self, name: str) -> Host:
        existing = self._hosts.get(name)
        if existing is None:
            existing = Host(name)
            self._hosts[name] = existing
        return existing

    def add_container(
        self, host_name: str, container_name: str, credentials: Credentials | None = None
    ) -> Container:
        key = f"{host_name}/{container_name}"
        if key in self._containers:
            raise ValueError(f"duplicate container: {key}")
        container = Container(self, self.host(host_name), container_name, credentials)
        self._containers[key] = container
        if credentials is not None:
            self.add_trust(credentials.certificate)
        return container

    def add_trust(self, certificate: Certificate) -> None:
        self.trust[str(certificate.subject)] = certificate

    def register_endpoint(self, address: str, host: Host, container: Container) -> None:
        if address in self._endpoints:
            raise ValueError(f"duplicate endpoint: {address}")
        self._endpoints[address] = (host, container)

    def resolve(self, address: str) -> tuple[Host, Container]:
        entry = self._endpoints.get(address)
        if entry is None:
            raise LookupError(f"no endpoint registered at {address}")
        return entry

    # -- notification sinks ---------------------------------------------------

    def add_sink(
        self,
        host_name: str,
        handler: Callable[[Envelope], None],
        kind: str = "http-server",
    ) -> NotificationSink:
        self._sink_counter += 1
        address = f"soap://{host_name}/_sink/{self._sink_counter}"
        sink = NotificationSink(address, self.host(host_name), handler, kind)
        self._sinks[address] = sink
        return sink

    def deliver_notification(
        self,
        from_host: Host,
        sink_address: str,
        envelope: Envelope,
        credentials: Credentials | None = None,
    ) -> bool:
        """Producer-side delivery of one notification message.

        Returns False when the sink is unknown (consumer gone) — producers
        treat that as a dropped delivery, not an error.  Injected transport
        faults (:class:`~repro.sim.faults.DeliveryFault`) propagate to the
        caller; a fault-injected *duplicate* hands the sink two copies, so
        unguarded consumers see the raw at-least-once stream (the reliable
        layer's :class:`~repro.reliable.sequence.InboundDeduper` collapses
        it back to exactly-once).
        """
        sink = self._sinks.get(sink_address)
        if sink is None:
            return False
        costs = self.network.costs
        if self.policy.signing and credentials is not None:
            from repro.container.security import SecurityHandler

            SecurityHandler(self.policy, self.network, self.ca, self.trust).secure_outgoing(
                envelope, credentials
            )
        message = WireMessage.from_envelope(envelope)
        self.network.charge(
            costs.soap_per_message + costs.xml_serialize_per_kb * message.n_kb,
            "notify.send",
        )
        copies = self.network.transmit(
            from_host, sink.host, message.n_bytes, sink.transport, service=sink_address
        )
        self.network.metrics.log_message(
            self.network.clock.now, from_host.name, sink_address,
            "Notify", message.n_bytes, kind="notify",
        )
        for _ in range(copies):
            self.network.charge(
                sink.delivery_overhead(costs) + costs.xml_parse_per_kb * message.n_kb,
                "notify.receive",
            )
            received = message.parse()
            if self.policy.signing:
                self._verify_notification(received)
            sink.handler(received)
        return True

    def _verify_notification(self, envelope: Envelope) -> None:
        security = envelope.header_element(QName(ns.WSSE, "Security"))
        signature = security.find(QName(ns.DS, "Signature")) if security is not None else None
        if signature is None:
            raise DsigError("signed deployment received unsigned notification")
        subject = signer_subject(signature)
        certificate = self.trust.get(subject)
        if certificate is None:
            raise DsigError(f"notification signed by unknown party {subject}")
        costs = self.network.costs
        self.network.charge(costs.rsa_verify, "security.verify")
        verify_element(envelope.body, signature, certificate.public_key)
        self.network.metrics.verified()

    # -- identity helpers --------------------------------------------------------

    def issue_credentials(self, common_name: str, *, seed: int) -> Credentials:
        """Issue signed credentials from this deployment's CA and trust them."""
        if self.ca is None:
            raise RuntimeError("deployment has no certificate authority")
        certificate, keypair = self.ca.issue_identity(common_name, seed=seed)
        credentials = Credentials(certificate, keypair)
        self.add_trust(certificate)
        return credentials
