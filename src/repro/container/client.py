"""The client proxy: invoking services over the simulated wire.

Mirrors a .NET Web-service proxy built on WSE: marshalling, security,
addressing and cost accounting all live in the deployment's filter
pipeline (:mod:`repro.pipeline`); this class only drives the chain and
moves bytes through the transport.  The same class serves end-user
clients and server out-calls.
"""

from __future__ import annotations

from repro.addressing.epr import EndpointReference
from repro.container.security import Credentials
from repro.pipeline import PipelineContext
from repro.sim.kernel import Acquire, Release, Work, drive_inline
from repro.sim.network import Host
from repro.xmllib.element import XmlElement


class SoapClient:
    """A client bound to one host and one identity."""

    def __init__(
        self,
        deployment,
        host: Host | str,
        credentials: Credentials | None = None,
    ) -> None:
        self.deployment = deployment
        self.host = deployment.host(host) if isinstance(host, str) else host
        self.credentials = credentials
        self.chain = deployment.pipeline()

    @property
    def network(self):
        return self.deployment.network

    @property
    def security(self):
        """The deployment-wide security handler (one per deployment)."""
        return self.deployment.security_filter.handler

    def invoke(
        self,
        epr: EndpointReference,
        action: str,
        body: XmlElement,
        *,
        reply_to: EndpointReference | None = None,
        rm_stamp: tuple[str, int] | None = None,
    ) -> XmlElement | None:
        """Round-trip one request; returns the response body child (if any).

        ``rm_stamp`` is the WS-RM ``(sequence id, message number)`` a
        :class:`~repro.reliable.channel.ReliableChannel` assigns; the
        pipeline's reliability filter stamps it onto the wire headers.
        """
        task = self.invoke_task(
            epr, action, body, reply_to=reply_to, rm_stamp=rm_stamp,
        )
        kernel = getattr(self.network, "kernel", None)
        if kernel is not None and kernel.can_run_sync:
            # The single-request fast path: eager stages, direct charging —
            # bit-identical to the pre-kernel inline execution.
            return kernel.run_sync(task)
        # No kernel, or we are already inside a kernel stage (a server
        # out-call nested in `container.handle`): run inline.  Nested
        # out-calls must not re-enter the pools — their cost is part of
        # the enclosing request's service stage.
        return drive_inline(task)

    def invoke_task(
        self,
        epr: EndpointReference,
        action: str,
        body: XmlElement,
        *,
        reply_to: EndpointReference | None = None,
        rm_stamp: tuple[str, int] | None = None,
    ):
        """The request as a staged kernel task (generator of effects).

        One stage per Figure-1 seam — client outbound pipeline, request
        wire leg, server handling (bracketed by the server host's worker
        pool), response wire leg + client inbound pipeline.  Under the
        kernel's concurrent regime each stage's cost elapses as one
        schedulable delay, so overlapping requests interleave between
        stages; under the eager drivers the stages run back-to-back and
        the charge order is exactly the legacy serial order.
        """
        ctx = PipelineContext.client_request(
            self.deployment, self.credentials, epr, action, body,
            reply_to=reply_to, rm_stamp=rm_stamp,
        )
        network = self.network
        with ctx.span("client.invoke", detail=action):

            def outbound():
                self.chain.run_outbound(ctx)
                return self.deployment.resolve(epr.address)

            server_host, container = yield Work(outbound, "client.outbound")
            request = ctx.request_message
            transport = self.deployment.policy.transport

            def send_request():
                with ctx.span("wire.request"):
                    network.transmit(
                        self.host, server_host, request.n_bytes, transport,
                        service=epr.address,
                    )
                    network.metrics.log_message(
                        network.clock.now, self.host.name, epr.address,
                        action, request.n_bytes,
                    )

            yield Work(send_request, "wire.request")

            # A worker slot on the serving host: granted immediately when
            # idle (zero wait — the serial ledgers never see a queue),
            # otherwise the request waits in the host's bounded FIFO.
            yield Acquire(server_host.name)
            try:
                ctx.response_message = yield Work(
                    lambda: container.handle(request), "server.handle"
                )
            finally:
                yield Release(server_host.name)

            def receive_response():
                # The response flows back on the same connection: wire time
                # only (and the same injected faults — a lossy link can eat
                # replies).
                with ctx.span("wire.response"):
                    network.transmit_response(
                        server_host, self.host, ctx.response_message.n_bytes,
                        transport, service=epr.address,
                    )
                    network.metrics.log_message(
                        network.clock.now, epr.address, self.host.name,
                        action + "Response", ctx.response_message.n_bytes,
                        kind="response",
                    )
                self.chain.run_inbound(ctx)

            yield Work(receive_response, "client.inbound")
        return ctx.response_body
