"""The client proxy: invoking services over the simulated wire.

Mirrors a .NET Web-service proxy built on WSE: marshalling, security,
addressing and cost accounting all live in the deployment's filter
pipeline (:mod:`repro.pipeline`); this class only drives the chain and
moves bytes through the transport.  The same class serves end-user
clients and server out-calls.
"""

from __future__ import annotations

from repro.addressing.epr import EndpointReference
from repro.container.security import Credentials
from repro.pipeline import PipelineContext
from repro.sim.network import Host
from repro.xmllib.element import XmlElement


class SoapClient:
    """A client bound to one host and one identity."""

    def __init__(
        self,
        deployment,
        host: Host | str,
        credentials: Credentials | None = None,
    ) -> None:
        self.deployment = deployment
        self.host = deployment.host(host) if isinstance(host, str) else host
        self.credentials = credentials
        self.chain = deployment.pipeline()

    @property
    def network(self):
        return self.deployment.network

    @property
    def security(self):
        """The deployment-wide security handler (one per deployment)."""
        return self.deployment.security_filter.handler

    def invoke(
        self,
        epr: EndpointReference,
        action: str,
        body: XmlElement,
        *,
        reply_to: EndpointReference | None = None,
        rm_stamp: tuple[str, int] | None = None,
    ) -> XmlElement | None:
        """Round-trip one request; returns the response body child (if any).

        ``rm_stamp`` is the WS-RM ``(sequence id, message number)`` a
        :class:`~repro.reliable.channel.ReliableChannel` assigns; the
        pipeline's reliability filter stamps it onto the wire headers.
        """
        ctx = PipelineContext.client_request(
            self.deployment, self.credentials, epr, action, body,
            reply_to=reply_to, rm_stamp=rm_stamp,
        )
        network = self.network
        with ctx.span("client.invoke", detail=action):
            self.chain.run_outbound(ctx)
            request = ctx.request_message
            server_host, container = self.deployment.resolve(epr.address)
            transport = self.deployment.policy.transport
            with ctx.span("wire.request"):
                network.transmit(
                    self.host, server_host, request.n_bytes, transport,
                    service=epr.address,
                )
                network.metrics.log_message(
                    network.clock.now, self.host.name, epr.address,
                    action, request.n_bytes,
                )

            ctx.response_message = container.handle(request)

            # The response flows back on the same connection: wire time only
            # (and the same injected faults — a lossy link can eat replies).
            with ctx.span("wire.response"):
                network.transmit_response(
                    server_host, self.host, ctx.response_message.n_bytes,
                    transport, service=epr.address,
                )
                network.metrics.log_message(
                    network.clock.now, epr.address, self.host.name,
                    action + "Response", ctx.response_message.n_bytes,
                    kind="response",
                )
            self.chain.run_inbound(ctx)
        return ctx.response_body
