"""The client proxy: invoking services over the simulated wire.

Mirrors a .NET Web-service proxy: it marshals the request, runs the
security handler, pushes bytes through the transport, and unmarshals the
response (re-raising faults as :class:`~repro.soap.envelope.SoapFault`).
The same class serves end-user clients and server out-calls.
"""

from __future__ import annotations

from repro.addressing.epr import EndpointReference
from repro.addressing.headers import MessageHeaders
from repro.container.security import Credentials, SecurityError, SecurityHandler
from repro.sim.network import Host
from repro.soap.envelope import SoapFault, build_envelope
from repro.soap.message import WireMessage
from repro.xmllib.element import XmlElement


class SoapClient:
    """A client bound to one host and one identity."""

    def __init__(
        self,
        deployment,
        host: Host | str,
        credentials: Credentials | None = None,
    ) -> None:
        self.deployment = deployment
        self.host = deployment.host(host) if isinstance(host, str) else host
        self.credentials = credentials
        self.security = SecurityHandler(
            deployment.policy, deployment.network, deployment.ca, deployment.trust
        )

    @property
    def network(self):
        return self.deployment.network

    def invoke(
        self,
        epr: EndpointReference,
        action: str,
        body: XmlElement,
        *,
        reply_to: EndpointReference | None = None,
    ) -> XmlElement | None:
        """Round-trip one request; returns the response body child (if any)."""
        headers = MessageHeaders(
            to=epr.address,
            action=action,
            reply_to=reply_to,
            reference_properties=epr.reference_properties,
        )
        envelope = build_envelope(headers.to_elements(), [body])
        self.security.secure_outgoing(envelope, self.credentials)

        costs = self.network.costs
        request = WireMessage.from_envelope(envelope)
        self.network.charge(
            costs.soap_per_message + costs.xml_serialize_per_kb * request.n_kb,
            "client.send",
        )
        server_host, container = self.deployment.resolve(epr.address)
        transport = self.deployment.policy.transport
        self.network.transmit(
            self.host, server_host, request.n_bytes, transport, service=epr.address
        )
        self.network.metrics.log_message(
            self.network.clock.now, self.host.name, epr.address, action, request.n_bytes
        )

        reply = container.handle(request)

        # The response flows back on the same connection: wire time only
        # (and the same injected faults — a lossy link can eat replies).
        self.network.transmit_response(
            server_host, self.host, reply.n_bytes, transport, service=epr.address
        )
        kb = reply.n_bytes / 1024.0
        self.network.metrics.log_message(
            self.network.clock.now, epr.address, self.host.name,
            action + "Response", reply.n_bytes, kind="response",
        )

        self.network.charge(
            costs.soap_per_message + costs.xml_parse_per_kb * kb, "client.receive"
        )
        response = reply.parse()
        try:
            self.security.verify_incoming(response)
        except SecurityError as exc:
            raise SoapFault("Client", f"response security failure: {exc}") from exc
        if response.is_fault():
            raise response.fault()
        children = list(response.body.element_children())
        return children[0] if children else None
