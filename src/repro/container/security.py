"""The Security/Policy handler from Figure 1.

Three policies, matching the paper's six measurement scenarios:

* ``NONE`` — plain HTTP, no message security;
* ``X509`` — WS-Security-style XML-DSig signing of request and response
  bodies over plain HTTP (the paper's "X.509-based signing" scenario);
* ``HTTPS`` — transport security only; the TLS costs live in the transport.

Signatures are computed and verified for real (see :mod:`repro.crypto`);
their virtual cost is charged from the cost model so "the overhead of the
security processing is so large that the performance differences between
the two underlying systems tend to fade" reproduces.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.crypto.rsa import RsaKeyPair
from repro.crypto.x509 import Certificate, CertificateAuthority, CertificateError, DistinguishedName
from repro.crypto.xmldsig import DsigError, sign_element, signer_subject, verify_element
from repro.sim.network import Network, TransportKind
from repro.soap.envelope import Envelope
from repro.xmllib import QName, element, ns
from repro.xmllib.element import XmlElement

_SECURITY_HEADER = QName(ns.WSSE, "Security")
_SIGNATURE = QName(ns.DS, "Signature")


class SecurityError(Exception):
    """Authentication/verification failure; mapped to a SOAP fault upstream."""


class SecurityMode(enum.Enum):
    NONE = "none"
    X509 = "x509"
    HTTPS = "https"


@dataclass(frozen=True)
class SecurityPolicy:
    """Scenario-wide security policy."""

    mode: SecurityMode = SecurityMode.NONE

    @property
    def transport(self) -> TransportKind:
        return TransportKind.HTTPS if self.mode is SecurityMode.HTTPS else TransportKind.HTTP

    @property
    def signing(self) -> bool:
        return self.mode is SecurityMode.X509


@dataclass(frozen=True)
class Credentials:
    """An identity that can sign messages."""

    certificate: Certificate
    keypair: RsaKeyPair

    @property
    def subject(self) -> DistinguishedName:
        return self.certificate.subject


class SecurityHandler:
    """Signs outgoing and verifies incoming messages per the policy.

    ``trust`` maps DN strings to certificates (the VO's certificate
    directory); the CA root key validates each certificate before its
    public key is trusted.
    """

    def __init__(
        self,
        policy: SecurityPolicy,
        network: Network,
        ca: CertificateAuthority | None = None,
        trust: dict[str, Certificate] | None = None,
    ) -> None:
        self.policy = policy
        self.network = network
        self.ca = ca
        self.trust = trust if trust is not None else {}

    # -- outgoing ------------------------------------------------------------

    def secure_outgoing(self, envelope: Envelope, credentials: Credentials | None) -> None:
        """Attach a wsse:Security/ds:Signature header over the Body."""
        if not self.policy.signing:
            return
        if credentials is None:
            raise SecurityError("X.509 policy requires credentials to sign")
        body = envelope.body
        costs = self.network.costs
        kb = _approx_kb(body)
        self.network.charge(costs.c14n_digest_per_kb * kb + costs.rsa_sign, "security.sign")
        signature = sign_element(body, credentials.keypair, credentials.certificate)
        envelope.header.append(element(_SECURITY_HEADER, signature))
        self.network.metrics.signed()

    # -- incoming -------------------------------------------------------------

    def verify_incoming(self, envelope: Envelope) -> DistinguishedName | None:
        """Verify the signature (if policy requires) and return the sender DN."""
        if not self.policy.signing:
            return None
        security = envelope.header_element(_SECURITY_HEADER)
        signature = security.find(_SIGNATURE) if security is not None else None
        if signature is None:
            raise SecurityError("policy requires a signed message; none present")
        subject = signer_subject(signature)
        certificate = self.trust.get(subject)
        if certificate is None:
            raise SecurityError(f"unknown signer: {subject}")
        if self.ca is not None:
            try:
                certificate.check(self.ca.keypair.public, at_time=self.network.clock.now)
            except CertificateError as exc:
                raise SecurityError(str(exc)) from exc
        costs = self.network.costs
        kb = _approx_kb(envelope.body)
        self.network.charge(
            costs.c14n_digest_per_kb * kb + costs.rsa_verify + costs.security_policy_check,
            "security.verify",
        )
        try:
            verify_element(envelope.body, signature, certificate.public_key)
        except DsigError as exc:
            raise SecurityError(f"signature invalid: {exc}") from exc
        self.network.metrics.verified()
        return certificate.subject


def _approx_kb(node: XmlElement) -> float:
    # Cheap size proxy for cost scaling: count of text + tags. The exact wire
    # size is charged by the transport; this only scales crypto cost.
    total = 0
    stack = [node]
    while stack:
        current = stack.pop()
        total += 16 + len(current.tag.local)
        for child in current.children:
            if isinstance(child, str):
                total += len(child)
            else:
                stack.append(child)
    return total / 1024.0
