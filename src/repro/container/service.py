"""Service skeletons and the operation dispatch model.

A service is a class deriving from :class:`ServiceSkeleton` whose operations
are methods decorated with :func:`web_method`, keyed by WS-Addressing Action
URI.  Port-type mixins (WSRF GetResourceProperty, WS-Transfer Get, ...)
contribute their own decorated methods, which is how the "import
functionality defined in the specifications" programming model works in both
stacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.addressing.epr import EndpointReference
from repro.addressing.headers import MessageHeaders
from repro.crypto.x509 import DistinguishedName
from repro.soap.envelope import SoapFault
from repro.xmllib.element import XmlElement

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.container.client import SoapClient
    from repro.container.container import Container


def web_method(action: str) -> Callable:
    """Mark a method as a SOAP operation bound to an Action URI."""

    def mark(func: Callable) -> Callable:
        func.__soap_action__ = action
        return func

    return mark


@dataclass
class MessageContext:
    """Everything an operation can see about the current request."""

    headers: MessageHeaders
    body: XmlElement
    sender: DistinguishedName | None
    container: "Container"

    @property
    def resource_key(self) -> str | None:
        """The opaque resource id carried in the EPR reference properties
        (shared convention across both stacks)."""
        for key, value in self.headers.reference_properties:
            if key.local in ("ResourceID", "ResourceId"):
                return value
        return None

    def target_epr(self) -> EndpointReference:
        return self.headers.target_epr()

    def client(self) -> "SoapClient":
        """A client for server out-calls, rooted at this container's host and
        signing with this container's credentials — the "web service
        outcalls" whose count dominates the Grid-in-a-Box numbers."""
        return self.container.outcall_client()


class ServiceSkeleton:
    """Base class for all services in both stacks."""

    #: Service name; also the final component of the service address.
    service_name: str = "Service"

    def __init__(self) -> None:
        self.container: "Container | None" = None
        self.address: str = ""
        self._operations: dict[str, Callable[[MessageContext], XmlElement | None]] = {}
        # Scan class attributes (not the instance) so properties are not
        # evaluated during construction; later subclasses override earlier.
        seen_names: set[str] = set()
        for klass in type(self).__mro__:
            for name, member in vars(klass).items():
                if name in seen_names or not callable(member):
                    continue
                seen_names.add(name)
                action = getattr(member, "__soap_action__", None)
                if action is not None:
                    if action in self._operations:
                        raise ValueError(
                            f"{type(self).__name__}: duplicate operation for action {action}"
                        )
                    self._operations[action] = getattr(self, name)

    # -- dispatch -------------------------------------------------------------

    def operations(self) -> dict[str, Callable]:
        return dict(self._operations)

    def dispatch(self, context: MessageContext) -> XmlElement | None:
        operation = self._operations.get(context.headers.action)
        if operation is None:
            raise SoapFault(
                "Client",
                f"{self.service_name} does not support action {context.headers.action}",
            )
        return operation(context)

    # -- conveniences available once deployed ---------------------------------

    def attached(self, container: "Container", address: str) -> None:
        """Called by the container when the service is registered."""
        self.container = container
        self.address = address

    def epr(self, properties: dict | None = None) -> EndpointReference:
        """Mint an EPR for this service (optionally naming a resource)."""
        if not self.address:
            raise RuntimeError(f"{self.service_name} is not attached to a container")
        return EndpointReference.create(self.address, properties)

    @property
    def network(self):
        if self.container is None:
            raise RuntimeError(f"{self.service_name} is not attached to a container")
        return self.container.network
