"""Declarative experiment specs: axes × measurement × invariants.

A spec names what varies (:class:`Axis` values — stack, security mode,
placement, workload, fault profile, index/reliability flags…), how one
cell is measured (a callable from ``(params, seed)`` to a JSON payload),
and which *shape* claims the measured numbers must keep satisfying
(:class:`PairOrdering` / :class:`Predicate` invariants).  The engine
(:mod:`repro.experiments.engine`) expands the grid and runs it; the gate
(:mod:`repro.experiments.gates`) re-evaluates the invariants and diffs
fresh numbers against the recorded trajectory.
"""

from __future__ import annotations

import hashlib
import re
import zlib
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.experiments.schema import (
    SCHEMA_VERSION,
    RunRecord,
    dumps_canonical,
    numeric_leaves,
)


class SpecError(ValueError):
    """A malformed spec declaration or selector."""


_SCALARS = (str, int, float, bool)


@dataclass(frozen=True)
class Axis:
    """One swept dimension: a name and its ordered values.

    Values must be JSON scalars — they appear verbatim in cell ids,
    checkpoint filenames and the serialized record, and the grid order
    (outer axes first, values in declaration order) is part of the
    reproducibility contract.
    """

    name: str
    values: tuple

    def __post_init__(self) -> None:
        if not self.name or not re.fullmatch(r"[a-z0-9_]+", self.name):
            raise SpecError(f"axis name must be a lower_snake identifier: {self.name!r}")
        if not self.values:
            raise SpecError(f"axis {self.name!r} has no values")
        for value in self.values:
            if not isinstance(value, _SCALARS):
                raise SpecError(
                    f"axis {self.name!r} value {value!r} is not a JSON scalar"
                )
        if len(set(map(repr, self.values))) != len(self.values):
            raise SpecError(f"axis {self.name!r} has duplicate values")


# -- invariants --------------------------------------------------------------


@dataclass(frozen=True)
class Invariant:
    """Base class: a named shape claim evaluated against a RunRecord."""

    name: str
    claim: str = ""

    def evaluate(self, spec: "ExperimentSpec", record: RunRecord) -> list[str]:
        raise NotImplementedError


def _matches(params: dict, selector: dict) -> bool:
    return all(params.get(axis) == value for axis, value in selector.items())


@dataclass(frozen=True)
class PairOrdering(Invariant):
    """Every matching cell pair must order ``greater`` above ``lesser``.

    Cells matching the ``greater`` selector are paired with the cell
    whose params are identical except for the axes named in ``lesser``
    (e.g. ``greater={"mode": "x509"}, lesser={"mode": "https"}`` pairs
    across the mode axis).  ``metric`` selects which numeric leaves are
    compared: an exact path, a ``prefix.`` (trailing dot), or ``"*"``
    for every shared numeric leaf.  ``factor`` demands
    ``greater > factor × lesser``.
    """

    metric: str = "*"
    greater: dict = field(default_factory=dict)
    lesser: dict = field(default_factory=dict)
    factor: float = 1.0

    def __post_init__(self) -> None:
        if set(self.greater) != set(self.lesser):
            raise SpecError(
                f"ordering {self.name!r}: greater/lesser must name the same axes"
            )
        if not self.greater:
            raise SpecError(f"ordering {self.name!r}: empty selectors")

    def _select(self, leaves: dict[str, float]) -> dict[str, float]:
        if self.metric == "*":
            return leaves
        if self.metric.endswith("."):
            return {p: v for p, v in leaves.items() if p.startswith(self.metric)}
        return {p: v for p, v in leaves.items() if p == self.metric}

    def evaluate(self, spec: "ExperimentSpec", record: RunRecord) -> list[str]:
        violations: list[str] = []
        paired = 0
        for cell in record.cells:
            if not _matches(cell.params, self.greater):
                continue
            partner_params = {**cell.params, **self.lesser}
            partner = next(
                (c for c in record.cells if c.params == partner_params), None
            )
            if partner is None:
                continue
            paired += 1
            high = self._select(numeric_leaves(cell.values))
            low = self._select(numeric_leaves(partner.values))
            for path in sorted(set(high) & set(low)):
                if not high[path] > self.factor * low[path]:
                    violations.append(
                        f"{self.name}: {cell.cell_id}:{path} ({high[path]:g}) "
                        f"must exceed {self.factor:g} x {partner.cell_id}:{path} "
                        f"({low[path]:g})"
                    )
        if not paired:
            violations.append(f"{self.name}: selector matched no cell pairs")
        return violations


@dataclass(frozen=True)
class Predicate(Invariant):
    """Escape hatch: an arbitrary check over the whole record.

    ``fn(record)`` returns a list of violation strings (empty = holds).
    """

    fn: Callable[[RunRecord], list[str]] | None = None

    def evaluate(self, spec: "ExperimentSpec", record: RunRecord) -> list[str]:
        if self.fn is None:
            raise SpecError(f"predicate {self.name!r} has no function")
        return [f"{self.name}: {v}" for v in self.fn(record)]


def evaluate_invariants(spec: "ExperimentSpec", record: RunRecord) -> list[str]:
    """All invariant violations for ``record``, in declaration order."""
    violations: list[str] = []
    for invariant in spec.invariants:
        violations.extend(invariant.evaluate(spec, record))
    return violations


# -- the spec ----------------------------------------------------------------

#: How the gate treats a spec's numbers.  ``exact``: virtual-clock
#: deterministic — fresh numbers must match the record bit-for-bit (plus
#: ordering stability at any looser tolerance).  ``shape``: wall-clock —
#: only the invariants are re-evaluated; absolute numbers may drift.
GATE_KINDS = ("exact", "shape")


@dataclass(frozen=True)
class ExperimentSpec:
    """One declarative experiment: grid, measurement, contract, outputs."""

    name: str
    title: str
    axes: tuple[Axis, ...]
    #: ``measure(params, seed) -> values`` for one cell.  ``params`` maps
    #: axis names to values; ``seed`` is the cell's derived seed.  Must be
    #: a pure function of its arguments and the virtual clock.
    measure: Callable[[dict, int], dict]
    #: Base seed; each cell's seed is derived from it and the cell id.
    seed: int = 0
    invariants: tuple[Invariant, ...] = ()
    #: Gate mode (see GATE_KINDS) and allowed relative drift for "exact"
    #: specs (0.0 = bit-identical, the default for virtual-clock numbers).
    gate: str = "exact"
    tolerance: float = 0.0
    #: Builds the legacy figure table (series → {column → value}) from a
    #: record; used for the ``results/*.csv`` artifact and the docs table.
    to_figure: Callable[[RunRecord], dict] | None = None
    #: Extra artifacts beyond the default figure CSV:
    #: ``fn(record) -> {relative filename: exact file text}``.
    extra_artifacts: Callable[[RunRecord], dict[str, str]] | None = None
    #: Markdown narrative for EXPERIMENTS.md, formatted from the record;
    #: ``fn(record) -> str`` (the section body below the table).
    doc_narrative: Callable[[RunRecord], str] | None = None
    #: Included in ``--smoke`` (must be cheap: a few hundred ms).
    smoke: bool = False
    #: Spec-level constants recorded in the run record's config block.
    config: dict = field(default_factory=dict)
    #: Where this spec's measurement lives, for the docs.
    source: str = ""

    def __post_init__(self) -> None:
        if not re.fullmatch(r"[a-z0-9_]+", self.name):
            raise SpecError(f"spec name must be a lower_snake identifier: {self.name!r}")
        if not self.axes:
            raise SpecError(f"spec {self.name!r} declares no axes")
        names = [axis.name for axis in self.axes]
        if len(set(names)) != len(names):
            raise SpecError(f"spec {self.name!r} has duplicate axis names")
        if self.gate not in GATE_KINDS:
            raise SpecError(f"spec {self.name!r}: unknown gate kind {self.gate!r}")
        if self.tolerance < 0:
            raise SpecError(f"spec {self.name!r}: negative tolerance")

    # -- grid --------------------------------------------------------------

    def grid(self) -> list[dict]:
        """Every cell's params, outer axes varying slowest."""
        cells: list[dict] = [{}]
        for axis in self.axes:
            cells = [
                {**params, axis.name: value}
                for params in cells
                for value in axis.values
            ]
        return cells

    def cell_id(self, params: dict) -> str:
        if set(params) != {axis.name for axis in self.axes}:
            raise SpecError(
                f"params {sorted(params)} do not cover axes of {self.name!r}"
            )
        return ",".join(f"{axis.name}={params[axis.name]}" for axis in self.axes)

    def cell_seed(self, cell_id: str) -> int:
        """Stable per-cell seed: crc32 over (base seed, cell id)."""
        return zlib.crc32(f"{self.seed}:{cell_id}".encode("utf-8"))

    def fingerprint(self) -> str:
        """Identity of the grid contract (not the measurement code):
        changing axes, seed, gate or config invalidates old records and
        checkpoints."""
        identity = dumps_canonical(
            {
                "schema_version": SCHEMA_VERSION,
                "name": self.name,
                "axes": [[axis.name, list(axis.values)] for axis in self.axes],
                "seed": self.seed,
                "gate": self.gate,
                "config": self.config,
            }
        )
        return hashlib.sha256(identity.encode("utf-8")).hexdigest()[:16]

    # -- outputs -----------------------------------------------------------

    def figure(self, record: RunRecord) -> dict:
        if self.to_figure is None:
            raise SpecError(f"spec {self.name!r} declares no figure")
        return self.to_figure(record)

    def artifacts(self, record: RunRecord) -> dict[str, str]:
        """Relative filename → exact text of every published artifact."""
        from repro.bench.report import figure_to_csv, slugify

        produced: dict[str, str] = {}
        if self.to_figure is not None:
            produced[f"{slugify(self.title)}.csv"] = figure_to_csv(self.figure(record))
        if self.extra_artifacts is not None:
            produced.update(self.extra_artifacts(record))
        return produced


def make_record(spec: ExperimentSpec, cells: Sequence) -> RunRecord:
    """A RunRecord for ``spec`` holding ``cells`` (schema objects)."""
    return RunRecord(
        spec=spec.name,
        fingerprint=spec.fingerprint(),
        config=dict(spec.config),
        cells=list(cells),
    )
