"""The sweep engine: deterministic, seeded, resumable grid execution.

Cells run in grid order (outer axes slowest).  After each cell the
result is checkpointed to
``<results>/experiments/.cells/<spec>/<cell>.json`` — a crash or kill
between cells loses at most the cell in flight, and a ``--resume`` run
loads completed checkpoints instead of re-measuring, completing the grid
bit-identically to an uninterrupted run (the resumability tests pin
exactly that).  Checkpoints carry the spec fingerprint; a spec whose
axes/seed/config changed silently invalidates its old checkpoints.

A completed grid is consolidated into ``<results>/experiments/<spec>.json``
(the unified :mod:`~repro.experiments.schema` record) and the spec's
published artifacts (``results/*.csv``, ``BENCH_*.json``) are rewritten
from the record — the record is the single source every number flows
through.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Callable

from repro.experiments.schema import (
    CellResult,
    RunRecord,
    SchemaError,
    dumps_canonical,
)
from repro.experiments.spec import ExperimentSpec, make_record


class EngineError(RuntimeError):
    """A run that cannot proceed (bad spec state, broken checkpoint dir)."""


@dataclass
class RunStats:
    """What one engine run actually did (for progress reporting)."""

    measured: int = 0
    resumed: int = 0

    @property
    def total(self) -> int:
        return self.measured + self.resumed


class ExperimentEngine:
    """Runs specs against a results directory.

    ``results_dir`` is the repo's ``results/``; records land in
    ``results/experiments/`` and artifacts in ``results/`` itself.  Pass
    ``persist=False`` for a purely in-memory run (no checkpoints, no
    record, no artifacts) — what the check gates and tests use.
    """

    def __init__(self, results_dir: str, *, persist: bool = True) -> None:
        self.results_dir = results_dir
        self.persist = persist

    # -- paths -------------------------------------------------------------

    def record_path(self, spec_name: str) -> str:
        return os.path.join(self.results_dir, "experiments", f"{spec_name}.json")

    def checkpoint_dir(self, spec_name: str) -> str:
        return os.path.join(self.results_dir, "experiments", ".cells", spec_name)

    def checkpoint_path(self, spec: ExperimentSpec, cell_id: str) -> str:
        from repro.bench.report import slugify

        return os.path.join(self.checkpoint_dir(spec.name), f"{slugify(cell_id)}.json")

    # -- checkpoints -------------------------------------------------------

    def _load_checkpoint(self, spec: ExperimentSpec, cell_id: str) -> CellResult | None:
        path = self.checkpoint_path(spec, cell_id)
        if not os.path.exists(path):
            return None
        try:
            with open(path, encoding="utf-8") as fh:
                payload = json.load(fh)
            if payload.get("fingerprint") != spec.fingerprint():
                return None  # stale: the spec changed under the checkpoint
            cell = CellResult.from_json(payload["cell"])
        except (OSError, ValueError, KeyError, SchemaError):
            return None  # unreadable/torn checkpoint: re-measure the cell
        if cell.cell_id != cell_id:
            return None
        return cell

    def _save_checkpoint(self, spec: ExperimentSpec, cell: CellResult) -> None:
        directory = self.checkpoint_dir(spec.name)
        os.makedirs(directory, exist_ok=True)
        path = self.checkpoint_path(spec, cell.cell_id)
        payload = {"fingerprint": spec.fingerprint(), "cell": cell.to_json()}
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(dumps_canonical(payload))
        os.replace(tmp, path)  # atomic: a kill mid-write never tears a cell

    def clear_checkpoints(self, spec: ExperimentSpec) -> None:
        directory = self.checkpoint_dir(spec.name)
        if not os.path.isdir(directory):
            return
        for name in os.listdir(directory):
            if name.endswith(".json") or name.endswith(".tmp"):
                os.unlink(os.path.join(directory, name))

    # -- running -----------------------------------------------------------

    def run(
        self,
        spec: ExperimentSpec,
        *,
        resume: bool = False,
        max_cells: int | None = None,
        on_cell: Callable[[CellResult, bool], None] | None = None,
    ) -> RunRecord:
        """Run ``spec``'s grid and return the consolidated record.

        ``resume=True`` loads checkpointed cells instead of re-measuring
        them.  ``max_cells`` stops (with :class:`GridIncomplete`) after
        measuring that many *new* cells — the hook the resumability tests
        use to simulate a kill.  ``on_cell(cell, was_resumed)`` fires
        after every completed cell.
        """
        stats = RunStats()
        # Published up front (and filled in place) so nothing mutates the
        # engine after the on_cell fan-out below (RPO12).
        self.last_stats = stats
        cells: list[CellResult] = []
        for params in spec.grid():
            cell_id = spec.cell_id(params)
            cell = self._load_checkpoint(spec, cell_id) if resume else None
            resumed = cell is not None
            if cell is None:
                if max_cells is not None and stats.measured >= max_cells:
                    raise GridIncomplete(spec.name, [c.cell_id for c in cells])
                seed = spec.cell_seed(cell_id)
                values = spec.measure(dict(params), seed)
                if not isinstance(values, dict):
                    raise EngineError(
                        f"{spec.name}:{cell_id} measure returned "
                        f"{type(values).__name__}, expected dict"
                    )
                cell = CellResult(
                    cell_id=cell_id, params=dict(params), seed=seed, values=values
                )
                if self.persist:
                    self._save_checkpoint(spec, cell)
                stats.measured += 1
            else:
                stats.resumed += 1
            cells.append(cell)
            if on_cell is not None:
                on_cell(cell, resumed)
        record = make_record(spec, cells)
        if self.persist:
            self._write_outputs(spec, record)
        return record

    def _write_outputs(self, spec: ExperimentSpec, record: RunRecord) -> None:
        os.makedirs(os.path.join(self.results_dir, "experiments"), exist_ok=True)
        record.save(self.record_path(spec.name))
        for name, text in spec.artifacts(record).items():
            path = os.path.join(self.results_dir, name)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(text)

    # -- records -----------------------------------------------------------

    def load_record(self, spec_name: str) -> RunRecord:
        path = self.record_path(spec_name)
        if not os.path.exists(path):
            raise EngineError(
                f"no recorded run for {spec_name!r} at {path}; "
                f"run `python -m repro experiments --run {spec_name}` first"
            )
        return RunRecord.load(path)


class GridIncomplete(EngineError):
    """Raised when ``max_cells`` stopped a run before the grid finished."""

    def __init__(self, spec_name: str, completed: list[str]) -> None:
        super().__init__(
            f"{spec_name}: stopped after {len(completed)} cells (resumable)"
        )
        self.spec_name = spec_name
        self.completed = completed


def run_in_memory(spec: ExperimentSpec) -> RunRecord:
    """One fresh, checkpoint-free run (what benches and gates use)."""
    return ExperimentEngine(results_dir=".", persist=False).run(spec)
