"""Regression gates: fresh numbers vs the recorded trajectory.

Three failure classes, in the order they are reported:

* **invariant violations** — the spec's declared shape claims
  (x509 > https > none, distributed > colocated, Create slowest, …)
  no longer hold on the fresh run;
* **ordering flips** — for any numeric metric path, two cells whose
  recorded values were strictly ordered now order the other way (this
  catches shape regressions even when a tolerance allows drift);
* **cost drift** — a numeric leaf moved more than the spec's tolerance
  relative to the recorded value (0.0 = bit-identical, the default for
  virtual-clock specs).

Specs gated ``shape`` (wall-clock benches) skip drift and ordering —
their absolute numbers are machine-dependent — and are judged on
invariants alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.schema import RunRecord, numeric_leaves
from repro.experiments.spec import ExperimentSpec, evaluate_invariants


@dataclass
class GateReport:
    """The outcome of one spec's check, partitioned by failure class."""

    spec: str
    invariant_violations: list[str] = field(default_factory=list)
    ordering_flips: list[str] = field(default_factory=list)
    drift_violations: list[str] = field(default_factory=list)
    structural_problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (
            self.invariant_violations
            or self.ordering_flips
            or self.drift_violations
            or self.structural_problems
        )

    def lines(self) -> list[str]:
        out: list[str] = []
        for label, problems in (
            ("structural", self.structural_problems),
            ("invariant", self.invariant_violations),
            ("ordering flip", self.ordering_flips),
            ("drift", self.drift_violations),
        ):
            out.extend(f"{self.spec}: {label}: {problem}" for problem in problems)
        return out


def _leaves_by_cell(record: RunRecord) -> dict[str, dict[str, float]]:
    return {cell.cell_id: numeric_leaves(cell.values) for cell in record.cells}


def find_ordering_flips(
    recorded: RunRecord, fresh: RunRecord
) -> list[str]:
    """Strict cross-cell orderings in ``recorded`` that reversed in ``fresh``.

    For every metric path, each cell pair the recorded run ordered
    strictly must not order strictly the other way now; ties (either
    then or now) are not flips.
    """
    rec = _leaves_by_cell(recorded)
    new = _leaves_by_cell(fresh)
    flips: list[str] = []
    cell_ids = [c for c in recorded.cell_ids() if c in new]
    paths: set[str] = set()
    for cell_id in cell_ids:
        paths.update(rec[cell_id])
    for path in sorted(paths):
        holders = [
            c for c in cell_ids if path in rec[c] and path in new[c]
        ]
        for i, a in enumerate(holders):
            for b in holders[i + 1:]:
                was = rec[a][path] - rec[b][path]
                now = new[a][path] - new[b][path]
                if was > 0 and now < 0:
                    flips.append(
                        f"{path}: {a} ({rec[a][path]:g}→{new[a][path]:g}) was above "
                        f"{b} ({rec[b][path]:g}→{new[b][path]:g}), now below"
                    )
                elif was < 0 and now > 0:
                    flips.append(
                        f"{path}: {a} ({rec[a][path]:g}→{new[a][path]:g}) was below "
                        f"{b} ({rec[b][path]:g}→{new[b][path]:g}), now above"
                    )
    return flips


def find_drift(
    recorded: RunRecord, fresh: RunRecord, tolerance: float
) -> list[str]:
    """Numeric leaves that moved beyond ``tolerance`` (relative)."""
    rec = _leaves_by_cell(recorded)
    new = _leaves_by_cell(fresh)
    problems: list[str] = []
    for cell_id in recorded.cell_ids():
        if cell_id not in new:
            continue
        rec_leaves, new_leaves = rec[cell_id], new[cell_id]
        for path in sorted(set(rec_leaves) | set(new_leaves)):
            if path not in rec_leaves:
                problems.append(f"{cell_id}:{path} appeared (not in the record)")
                continue
            if path not in new_leaves:
                problems.append(f"{cell_id}:{path} vanished from the fresh run")
                continue
            was, now = rec_leaves[path], new_leaves[path]
            if was == now:
                continue
            drift = abs(now - was) / abs(was) if was != 0 else float("inf")
            if drift > tolerance:
                problems.append(
                    f"{cell_id}:{path} drifted {was:g} → {now:g} "
                    f"({'∞' if drift == float('inf') else f'{drift:.2%}'} "
                    f"> {tolerance:.2%} tolerance)"
                )
    return problems


def check_against_record(
    spec: ExperimentSpec, recorded: RunRecord, fresh: RunRecord
) -> GateReport:
    """Gate one fresh run against its recorded trajectory."""
    report = GateReport(spec=spec.name)
    if recorded.fingerprint != fresh.fingerprint:
        report.structural_problems.append(
            f"spec fingerprint changed ({recorded.fingerprint} → "
            f"{fresh.fingerprint}); the grid contract moved — regenerate the "
            f"record with `python -m repro experiments --run {spec.name}`"
        )
        return report
    missing = [c for c in recorded.cell_ids() if c not in fresh.cell_ids()]
    extra = [c for c in fresh.cell_ids() if c not in recorded.cell_ids()]
    if missing:
        report.structural_problems.append(f"cells missing from fresh run: {missing}")
    if extra:
        report.structural_problems.append(f"cells not in the record: {extra}")
    report.invariant_violations = evaluate_invariants(spec, fresh)
    if spec.gate == "exact":
        report.ordering_flips = find_ordering_flips(recorded, fresh)
        report.drift_violations = find_drift(recorded, fresh, spec.tolerance)
    return report


def check_artifacts(
    spec: ExperimentSpec, record: RunRecord, results_dir: str
) -> list[str]:
    """Committed artifact files that differ from what ``record`` renders.

    The staleness gate: every ``results/*.csv`` / ``BENCH_*.json`` a spec
    publishes must be exactly what its committed record produces.
    """
    import os

    problems: list[str] = []
    for name, text in spec.artifacts(record).items():
        path = os.path.join(results_dir, name)
        if not os.path.exists(path):
            problems.append(f"{spec.name}: artifact {name} is missing")
            continue
        with open(path, encoding="utf-8") as fh:
            committed = fh.read()
        if committed != text:
            problems.append(
                f"{spec.name}: artifact {name} is stale (regenerate with "
                f"`python -m repro experiments --run {spec.name}`)"
            )
    return problems
