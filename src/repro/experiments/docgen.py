"""EXPERIMENTS.md generation from the recorded experiment runs.

The document is a pure render of ``results/experiments/*.json`` plus the
static narrative below — no measurement happens here, so regenerating it
on any machine yields identical bytes (wall-clock specs render their
*recorded* numbers).  ``python -m repro experiments --docs`` writes it;
``--check-docs`` fails when the committed file differs from the render.
"""

from __future__ import annotations

import os

from repro.bench.report import figure_to_markdown
from repro.experiments.engine import ExperimentEngine
from repro.experiments.registry import SPECS
from repro.experiments.spec import ExperimentSpec

#: Section tag shown in each heading, per spec name.
SECTION_TAGS = {
    "fig2_hello_nosec": "FIG2",
    "fig3_hello_https": "FIG3",
    "fig4_hello_x509": "FIG4",
    "fig6_giab": "FIG6",
    "scenarios_sweep": "SCEN-6",
    "spec_complexity": "TAB-SPEC",
    "brokered_messages": "MSG-BROKER",
    "scaling": "SCALE",
    "workload": "LOAD",
    "stack_switching": "SWITCH",
    "reliability_counter": "RELIAB-C",
    "reliability_giab": "RELIAB-G",
    "ablation_robustness": "ABLATE",
    "trace_spans": "TRACE",
    "xmldb_scaling": "XMLDB",
    "datagrid": "DATAGRID",
    "loadgen": "LOADGEN",
    "msgperf": "MSGPERF",
}

#: Specs whose bench wrapper file is not ``benchmarks/bench_<name>.py``.
BENCH_WRAPPERS = {
    "reliability_counter": "benchmarks/bench_reliability.py",
    "reliability_giab": "benchmarks/bench_reliability.py",
    "ablation_robustness": "benchmarks/bench_ablation_costs.py",
    "xmldb_scaling": "benchmarks/bench_xmldb.py",
}

#: Hand-written prose per section, rendered below the measured table.
NARRATIVES = {
    "fig2_hello_nosec": """\
Paper (approx. from the chart): Get ≈ 8–15, Set ≈ 12–20, Create ≈ 25–35,
Destroy ≈ 8–15, Notify ≈ 20 (WS-Eventing) vs ≈ 35–45 (WSRF.NET); axis max 50.
Create is slowest (DB insert dominates), WSRF.NET reads/writes are faster
(write-through resource caching), WS-Eventing's persistent-TCP Notify beats
WSRF.NET's per-delivery HTTP server, and no CRUD op differs across stacks
by more than ~2.5× ("overwhelmingly equivalent ... implied performance").""",
    "fig3_hello_https": """\
Paper: same axis (max 50) as Figure 2 — "Due to socket caching, HTTPS
performance is much faster".  With TLS session resumption the per-op delta
over Figure 2 is a few ms; the bench's cold-handshake ablation
(`test_cold_handshake_would_dominate`) shows an uncached handshake would
add ≈ 28 ms to every call.  All Figure 2 orderings are preserved.""",
    "fig4_hello_x509": """\
Paper: 80–160 ms band, axis max 160.  Every op is ≥ 3× its no-security
time ("the overhead of the security processing is so large that the
performance differences ... fade") and the relative cross-stack gaps
shrink under signing — both asserted against the Figure 2 record by the
bench wrapper.  Signatures are real RSA/PKCS#1 over exclusive-c14n bytes
(2 signatures + 2 verifications per round trip, trace-verified).

Deviation: our band sits slightly above the paper's (≈ 110–180 vs 80–160)
because we charge the same RSA cost for request and response signing;
shape unaffected.""",
    "fig6_giab": """\
Workload: the six measured client operations on a freshly-deployed,
X.509-signed VO (1 central host + 2 compute nodes), 64 KiB stage-in file.
Paper (≈): Get Available 150/250, Make Reservation 280/300, Upload
420/430, Instantiate 600/1050, Delete 150/150, Unreserve 200/(not
reported) — WS-Transfer/WSRF respectively.  The per-operation message and
signature counts (the analysis table artifact) carry the paper's reading:
"the greatest factor influencing the performance of individual operations
is the number of web service outcalls (and message signings)".

Deviation: absolute values ≈ 0.5× the paper's — their services evidently
performed more signed interactions per operation than the Figure 5 flow
strictly requires; the cross-op and cross-stack orderings all hold.""",
    "scenarios_sweep": """\
One table, 12 rows (3 security modes × 2 placements × 2 stacks) × 5
operations — the complete data behind Figures 2–4 plus §4.1.3's prose
claims: X.509 slowest everywhere, none < HTTPS < X.509 per-op, and
cross-stack gaps shrink as security cost grows.""",
    "spec_complexity": """\
The paper argues this in prose ("WS-Transfer is a less complex
specification than WSRF (in terms of the number and scope of functions
defined)"); we count the spec-defined operations each stack's
implementation carries.  WS-Transfer has exactly 4 verbs.""",
    "brokered_messages": """\
Plain Subscribe = 2 messages, 1 service; the full demand-based scenario
(register + subscribe + publish + unsubscribe) spans 5 wire endpoints
(+ the in-container PublisherRegistrationManager = 6 participating
services) — "can involve as many as six separate Web services" — and
costs "more messages ... by what we estimate to be an order of
magnitude".  Example: `examples/brokered_notification.py`.""",
    "scaling": """\
Asserted shapes: availability-query time grows with registered hosts but
sublinearly (fixed per-call overhead amortizes the per-document query
cost); Set+Notify grows linearly in subscriber count (one delivery each);
Upload grows linearly in file size (per-KB transport + signing +
filesystem costs).""",
    "workload": """\
An identical deterministic 12-job stream (mixed applications, input
sizes, run times) executed end-to-end on both stacks under X.509.  The
per-job ratio sits below Figure 6's Instantiate-Job ratio (1.73×) because
staging, job run time and cleanup are common work — the workload-level
integral of the paper's per-operation analysis, with WS-Transfer's
explicit unreserve call partially offsetting its cheaper instantiation.""",
    "stack_switching": """\
A facade service (`repro.bridge`) lets an unmodified client of one stack
drive a service of the other.  Every bridged operation pays one extra
signed hop; bridged WSRF Set is > 2.5× native (the facade must Get+Put
the backing representation because WS-Transfer has no partial update);
everything stays within an order of magnitude — switching is feasible but
never free, which is the §5 takeaway.""",
    "reliability_counter": """\
Counter notifications on both stacks across {0, 1, 5, 10}% message loss
(plus the duplication/reset/delay mix of `FaultSpec.lossy`), WS-RM armed.
Every cell's accounting ledger closes (delivered + dead-lettered ==
assigned), clean-wire cells pay zero reliability overhead, and lossy
cells pay latency for retransmission + backoff.""",
    "reliability_giab": """\
The same loss sweep over the Grid-in-a-Box job flow (X.509): every job
survives every swept loss rate under the bench retry policy, and the
ledger-closure guarantee holds end-to-end through the signed pipeline.""",
    "ablation_robustness": """\
Each load-bearing cost-model entry perturbed ±50%, headline orderings
re-checked: every cell must read 0 violations.  Create-vs-Set is excluded
by design — WS-Transfer's Set pays read+update, so "Create is slowest"
requires insert ≳ read+update (true for Xindice, flips if insert cost is
halved); that sensitivity is pinned by its own bench test instead.""",
    "trace_spans": """\
Per-stage breakdown of one signed distributed Get per stack, from the
pipeline's TracingFilter — the Figure 1 stages made measurable.  The four
security-bearing stages outweigh pure wire time (the paper's signing
observation, visible inside a single message).  Full span trees for Get
and Notify are published as `results/trace_spans_x509.{csv,json}`.""",
    "xmldb_scaling": """\
Registry sizes 10/100/1000/5000 HostInfo documents: the scan path charges
the pinned `db_query_base + per_doc × N` formula, the declared secondary
index answers the same lookup O(hits) (flat across sizes, ≥ 10× cheaper
at 1000 docs), and an expression no index covers reproduces the scan
curve bit-identically — the planner's fallback guarantee.  Also published
as `results/xmldb_scaling.{csv,json}`.""",
    "datagrid": """\
A fixed replica-staging workload (3 registrations, 2 replications, 2
stage-ins, catalog queries) through the ReplicaCatalog/DataTransfer pair
*generated* from single `ServiceDecl`s (DESIGN.md §15), both stacks × all
six security×placement cells.  Pinned invariants: every cell/stack picks
the same replica sources (LAN beats WAN, same-site beats cross-site,
local stage-in is free), charges exactly 480 link ms, exchanges the same
messages, and leaves an identical catalog — the layered framework's
shared logic made benchmark-visible.  The security ordering matches the
hello-world figures (X.509 ≫ HTTPS > none), and the stacks sit within
0.5% of each other because the declared workload is
message-count-symmetric.  Committed as `results/BENCH_datagrid.json`;
the differential fuzzer also sweeps seeded `datagrid` programs across all
six cells (`python -m repro conformance`, seeds 200000+).""",
    "loadgen": """\
Open-loop Poisson arrivals against the discrete-event kernel (DESIGN.md
§16), 60 requests per point, X.509 distributed: p95 latency grows
superlinearly with offered load, throughput saturates at the top swept
rate, and queue depth rises — the committed trajectory is
`results/BENCH_loadgen.json`.""",
    "msgperf": """\
The one wall-clock experiment (gate: shape): real elapsed time of the
signed message path with the memoization layer on vs off.  The recorded
numbers are machine-specific; the gate re-checks only the invariants —
the soak speedup floor, bit-identical virtual costs with caching on/off,
and cache hit counters.  The committed trajectory is
`results/BENCH_msgperf.json`.""",
}

HEADER = """\
# EXPERIMENTS — paper vs. measured

Record of every table/figure in the paper's evaluation and what this
reproduction measures.  Units are milliseconds for a single request; the
paper's values are wall-clock ms on its 2005 dual-Opteron testbed (read off
the bar charts, so ±), ours are **virtual ms** from the calibrated
simulation (DESIGN.md §2, §5).  Per the reproduction contract, the
comparison targets are the *shapes* — orderings, ratios, what dominates —
not absolute values.

This file is **generated** from the recorded experiment runs in
`results/experiments/` (DESIGN.md §17) — edit the specs in
`repro.experiments.registry` or the narratives in
`repro.experiments.docgen`, never this file.  Regenerate with:

```sh
python -m repro experiments --run all   # re-measure, refresh records + artifacts
python -m repro experiments --docs      # re-render this file from the records
```

`python -m repro experiments --check` re-runs every grid and gates it
against the records (orderings, invariants, bit-identical virtual costs);
`scripts/check.sh` wires the smoke subset into CI.  All virtual-clock
numbers below are deterministic: re-running reproduces them exactly.

---
"""

CALIBRATION_NOTE = """\
---

## Calibration note

The cost model (`repro/sim/costs.py`) was back-fitted once against the
paper's charts: RSA-1024 sign 45 (WSE pipeline included), verify 3.5, TLS
handshake 28 / resume 1.8, Xindice read 5.5 / update 7 / insert 24 /
delete 5, WSRF.NET HTTP notify overhead 16 vs persistent-TCP 1.1, process
spawn 55.  Every figure above is a deterministic function of that table
plus the real serialized message sizes and real message counts; the
ABLATE experiment perturbs individual entries to show which results are
calibration-robust.  All headline orderings survive any single-entry ±50%
perturbation, with one documented exception: WS-Transfer's "Create slower
than Set" requires insert ≳ read+update (true for Xindice, flips if
insert cost is halved) — the bench pins that sensitivity explicitly.
Mechanism ablations further show each paper observation disappears when
its mechanism is disabled (no cache → no Set advantage; same delivery
overhead → no Notify gap; no TLS resumption → HTTPS pays the handshake;
free crypto → the X.509 figure collapses).
"""


def bench_wrapper(spec: ExperimentSpec) -> str:
    return BENCH_WRAPPERS.get(spec.name, f"benchmarks/bench_{spec.name}.py")


def render_section(spec: ExperimentSpec, record) -> str:
    gate_label = (
        "exact (bit-identical virtual ms)" if spec.gate == "exact"
        else "shape (wall-clock; invariants only)"
    )
    lines = [
        f"## {SECTION_TAGS[spec.name]} — {spec.title}",
        "",
        f"Spec: `{spec.name}` ({len(record.cells)} cells; gate: {gate_label}).",
        f"Measurement: `{spec.source}`; bench wrapper: `{bench_wrapper(spec)}`.",
        "",
    ]
    if spec.to_figure is not None:
        lines.append(figure_to_markdown(spec.figure(record)))
        lines.append("")
    if spec.invariants:
        lines.append("Invariants (re-checked by `--check`):")
        lines.extend(
            f"* `{invariant.name}` — {invariant.claim}" for invariant in spec.invariants
        )
        lines.append("")
    narrative = NARRATIVES.get(spec.name)
    if narrative:
        lines.append(narrative)
        lines.append("")
    return "\n".join(lines)


def generate(results_dir: str) -> str:
    """The full EXPERIMENTS.md text, rendered from the committed records."""
    engine = ExperimentEngine(results_dir)
    sections = [HEADER]
    for spec in SPECS:
        record = engine.load_record(spec.name)
        sections.append(render_section(spec, record))
    sections.append(CALIBRATION_NOTE)
    return "\n".join(sections)


def docs_path(results_dir: str) -> str:
    return os.path.join(os.path.dirname(os.path.abspath(results_dir)), "EXPERIMENTS.md")


def write_docs(results_dir: str, path: str | None = None) -> str:
    path = path or docs_path(results_dir)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(generate(results_dir))
    return path


def check_docs(results_dir: str, path: str | None = None) -> list[str]:
    """Empty if the committed EXPERIMENTS.md matches the regenerated one."""
    path = path or docs_path(results_dir)
    expected = generate(results_dir)
    if not os.path.exists(path):
        return [f"{path} is missing; write it with `python -m repro experiments --docs`"]
    with open(path, encoding="utf-8") as fh:
        committed = fh.read()
    if committed != expected:
        return [
            f"{path} is stale: it differs from the render of "
            f"results/experiments/ — regenerate with "
            f"`python -m repro experiments --docs`"
        ]
    return []
