"""Every experiment in the repo, declared as a spec.

One entry per legacy ``benchmarks/bench_*.py`` figure: the axes it
sweeps, the measurement behind one cell, the shape invariants the paper
claims, and how the recorded cells render back into the committed
``results/*.csv`` / ``BENCH_*.json`` artifacts.  The bench scripts are
thin wrappers over these specs; ``python -m repro experiments`` runs
them; ``scripts/check.sh`` gates fresh runs against the records.

Figure builders always impose explicit row/column orders — cell payloads
round-trip through sorted-key JSON, so insertion order is *not*
preserved by the record and must be re-imposed here to keep artifact
bytes identical to the legacy ones.
"""

from __future__ import annotations

from repro.bench.giab import GIAB_OPS, measure_giab
from repro.bench.hello import HELLO_OPS, measure_hello_world
from repro.container.security import SecurityMode
from repro.experiments.schema import RunRecord
from repro.experiments.spec import (
    Axis,
    ExperimentSpec,
    PairOrdering,
    Predicate,
    SpecError,
)

# -- selectors ---------------------------------------------------------------


def cell_values(record: RunRecord, **selector) -> dict:
    """The values payload of the single cell matching ``selector``."""
    matches = [
        cell.values
        for cell in record.cells
        if all(cell.params.get(k) == v for k, v in selector.items())
    ]
    if len(matches) != 1:
        raise SpecError(
            f"selector {selector!r} matched {len(matches)} cells in {record.spec!r}"
        )
    return matches[0]


def _ordered(values: dict, columns) -> dict[str, float]:
    return {column: values[column] for column in columns if column in values}


# -- hello-world figures (FIG2/3/4) ------------------------------------------

_PLACEMENTS = ("colocated", "distributed")
_HELLO_STACKS = ("transfer", "wsrf")

_PLACEMENT_LABELS = {"colocated": "Co-located", "distributed": "Distributed"}
_STACK_LABELS = {"transfer": "WS-Transfer / WS-Eventing", "wsrf": "WSRF.NET"}


def _hello_label(params: dict) -> str:
    return f"{_PLACEMENT_LABELS[params['placement']]} {_STACK_LABELS[params['stack']]}"


def _measure_hello(mode: SecurityMode):
    def measure(params: dict, seed: int) -> dict:
        return measure_hello_world(
            params["stack"], mode, params["placement"] == "colocated"
        )

    return measure


def _hello_figure(record: RunRecord) -> dict:
    return {
        _hello_label(cell.params): _ordered(cell.values, HELLO_OPS)
        for cell in record.cells
    }


def _create_slowest(record: RunRecord) -> list[str]:
    problems = []
    for cell in record.cells:
        for op in ("Get", "Set", "Destroy"):
            if not cell.values["Create"] > cell.values[op]:
                problems.append(f"{cell.cell_id}: Create is not slower than {op}")
    return problems


def _hello_invariants() -> tuple:
    co = {"placement": "colocated"}
    return (
        Predicate(
            "create_slowest",
            "Create must be the slowest CRUD op in every cell",
            fn=_create_slowest,
        ),
        PairOrdering(
            "wsrf_set_cache_advantage",
            "write-through cache: co-located WSRF Set beats WS-Transfer Set",
            metric="Set",
            greater={"stack": "transfer", **co},
            lesser={"stack": "wsrf", **co},
        ),
        PairOrdering(
            "eventing_notify_cheaper",
            "TCP vs HTTP notify: co-located WS-Eventing beats WSRF",
            metric="Notify",
            greater={"stack": "wsrf", **co},
            lesser={"stack": "transfer", **co},
        ),
        PairOrdering(
            "distributed_adds_overhead",
            "distribution costs wire time on every operation",
            greater={"placement": "distributed"},
            lesser={"placement": "colocated"},
        ),
        PairOrdering(
            "distributed_bounded",
            "distribution stays under 1.5x the co-located cost",
            greater={"placement": "colocated"},
            lesser={"placement": "distributed"},
            factor=2.0 / 3.0,
        ),
    )


def _fig2_comparable(record: RunRecord) -> list[str]:
    problems = []
    wsrf = cell_values(record, stack="wsrf", placement="colocated")
    transfer = cell_values(record, stack="transfer", placement="colocated")
    for op in ("Get", "Set", "Create", "Destroy"):
        ratio = max(wsrf[op], transfer[op]) / min(wsrf[op], transfer[op])
        if not ratio < 2.5:
            problems.append(f"co-located {op} differs {ratio:.2f}x across stacks")
    return problems


def _hello_spec(name: str, title: str, mode: SecurityMode, extra=(), **kwargs):
    return ExperimentSpec(
        name=name,
        title=title,
        axes=(Axis("placement", _PLACEMENTS), Axis("stack", _HELLO_STACKS)),
        measure=_measure_hello(mode),
        invariants=_hello_invariants() + tuple(extra),
        to_figure=_hello_figure,
        config={"mode": mode.value, "ops": list(HELLO_OPS)},
        source="repro.bench.hello.measure_hello_world",
        **kwargs,
    )


FIG2 = _hello_spec(
    "fig2_hello_nosec",
    "Figure 2: Hello World, no security",
    SecurityMode.NONE,
    extra=(
        PairOrdering(
            "notify_considerably_better",
            "co-located eventing Notify under 0.75x of WSRF's",
            metric="Notify",
            greater={"stack": "wsrf", "placement": "colocated"},
            lesser={"stack": "transfer", "placement": "colocated"},
            factor=4.0 / 3.0,
        ),
        Predicate(
            "cross_stack_comparable",
            "no CRUD op differs by more than ~2.5x across stacks",
            fn=_fig2_comparable,
        ),
    ),
    smoke=True,
)

FIG3 = _hello_spec(
    "fig3_hello_https", "Figure 3: Hello World, HTTPS", SecurityMode.HTTPS
)

FIG4 = _hello_spec(
    "fig4_hello_x509", "Figure 4: Hello World, X.509 signing", SecurityMode.X509
)


# -- Figure 6: Grid-in-a-Box -------------------------------------------------

_GIAB_LABELS = {"transfer": "WS-Transfer / WS-Eventing", "wsrf": "WSRF.NET"}


def _measure_fig6(params: dict, seed: int) -> dict:
    results, traces = measure_giab(params["stack"], with_traces=True)
    return {
        "ms": results,
        "messages": {op: float(t.messages) for op, t in traces.items()},
        "signatures": {op: float(t.signatures) for op, t in traces.items()},
    }


def _fig6_figure(record: RunRecord) -> dict:
    return {
        _GIAB_LABELS[cell.params["stack"]]: _ordered(cell.values["ms"], GIAB_OPS)
        for cell in record.cells
    }


def fig6_analysis_figure(record: RunRecord) -> dict:
    figure = {}
    for cell in record.cells:
        prefix = "WS-Transfer" if cell.params["stack"] == "transfer" else "WSRF.NET"
        figure[f"{prefix} messages"] = _ordered(cell.values["messages"], GIAB_OPS)
        figure[f"{prefix} signatures"] = _ordered(cell.values["signatures"], GIAB_OPS)
    return figure


def _fig6_artifacts(record: RunRecord) -> dict[str, str]:
    from repro.bench.report import figure_to_csv, slugify

    title = "Figure 6 analysis: messages (and signatures) per operation"
    return {f"{slugify(title)}.csv": figure_to_csv(fig6_analysis_figure(record))}


def _fig6_claims(record: RunRecord) -> list[str]:
    problems = []
    wsrf = cell_values(record, stack="wsrf")
    wxf = cell_values(record, stack="transfer")
    for series in (wsrf, wxf):
        if set(series["ms"]) != set(GIAB_OPS):
            problems.append("a stack did not measure all six operations")
    for op, expected in (("Delete File", 2.0), ("Upload File", 4.0)):
        for series in (wsrf, wxf):
            if series["messages"][op] != expected:
                problems.append(f"{op} message count is not {expected:g}")
        a, b = wsrf["ms"][op], wxf["ms"][op]
        if not max(a, b) / min(a, b) < 1.3:
            problems.append(f"{op} times are not comparable across stacks")
    if not wsrf["messages"]["Instantiate Job"] > wxf["messages"]["Instantiate Job"] + 2:
        problems.append("WSRF Instantiate Job does not need several more outcalls")
    if not wsrf["ms"]["Instantiate Job"] > 1.4 * wxf["ms"]["Instantiate Job"]:
        problems.append("WSRF Instantiate Job is not >1.4x the WS-Transfer time")
    if wsrf["ms"]["Unreserve Resource"] != 0.0:
        problems.append("WSRF unreserve should be free (automatic)")
    if not wxf["ms"]["Unreserve Resource"] > 0:
        problems.append("WS-Transfer unreserve should cost time")
    ordered = sorted(wsrf["messages"], key=lambda op: wsrf["messages"][op])
    if wsrf["signatures"][ordered[0]] > wsrf["signatures"][ordered[-1]]:
        problems.append("signings do not track outcalls")
    if wsrf["signatures"]["Instantiate Job"] < 8:
        problems.append("WSRF Instantiate Job signs fewer than 8 messages")
    gap = wsrf["ms"]["Instantiate Job"] - wxf["ms"]["Instantiate Job"]
    if not gap > 100:
        problems.append("the cross-stack Instantiate gap is not design-dominated")
    return problems


FIG6 = ExperimentSpec(
    name="fig6_giab",
    title="Figure 6: Grid-in-a-Box comparison (X.509 signing)",
    axes=(Axis("stack", ("transfer", "wsrf")),),
    measure=_measure_fig6,
    invariants=(
        Predicate("giab_claims", "the §4.2.3 outcall/signing analysis", fn=_fig6_claims),
    ),
    to_figure=_fig6_figure,
    extra_artifacts=_fig6_artifacts,
    config={"mode": "x509", "ops": list(GIAB_OPS)},
    source="repro.bench.giab.measure_giab",
)


# -- six-scenario sweep ------------------------------------------------------

_MODES = ("none", "x509", "https")


def _measure_sweep(params: dict, seed: int) -> dict:
    return measure_hello_world(
        params["stack"],
        SecurityMode(params["mode"]),
        params["placement"] == "colocated",
    )


def _sweep_label(params: dict) -> str:
    placement = "co-located" if params["placement"] == "colocated" else "distributed"
    stack_name = "WSRF.NET" if params["stack"] == "wsrf" else "WS-Transfer"
    return f"{params['mode']}/{placement}/{stack_name}"


def _sweep_figure(record: RunRecord) -> dict:
    return {
        _sweep_label(cell.params): _ordered(cell.values, HELLO_OPS)
        for cell in record.cells
    }


def _sweep_security_dominates(record: RunRecord) -> list[str]:
    problems = []
    for op in ("Get", "Set"):
        base = cell_values(record, mode="none", placement="colocated", stack="transfer")
        wsrf0 = cell_values(record, mode="none", placement="colocated", stack="wsrf")
        signed = cell_values(record, mode="x509", placement="colocated", stack="transfer")
        wsrf9 = cell_values(record, mode="x509", placement="colocated", stack="wsrf")
        nosec_gap = abs(wsrf0[op] - base[op]) / base[op]
        signed_gap = abs(wsrf9[op] - signed[op]) / signed[op]
        if not signed_gap < nosec_gap:
            problems.append(f"signing did not shrink the relative {op} gap")
    return problems


SCENARIOS_SWEEP = ExperimentSpec(
    name="scenarios_sweep",
    title="Six-scenario sweep: all counter operations",
    axes=(
        Axis("mode", _MODES),
        Axis("placement", _PLACEMENTS),
        Axis("stack", _HELLO_STACKS),
    ),
    measure=_measure_sweep,
    invariants=(
        PairOrdering(
            "x509_above_none",
            "X.509 signing is the slowest scenario (vs none)",
            greater={"mode": "x509"},
            lesser={"mode": "none"},
        ),
        PairOrdering(
            "x509_above_https",
            "X.509 signing is the slowest scenario (vs https)",
            greater={"mode": "x509"},
            lesser={"mode": "https"},
        ),
        PairOrdering(
            "https_above_none_get",
            "warm HTTPS sits between none and X.509 (Get)",
            metric="Get",
            greater={"mode": "https", "placement": "colocated"},
            lesser={"mode": "none", "placement": "colocated"},
        ),
        PairOrdering(
            "https_above_none_set",
            "warm HTTPS sits between none and X.509 (Set)",
            metric="Set",
            greater={"mode": "https", "placement": "colocated"},
            lesser={"mode": "none", "placement": "colocated"},
        ),
        Predicate(
            "security_dominates",
            "signing shrinks the percentage-wise stack gaps",
            fn=_sweep_security_dominates,
        ),
    ),
    to_figure=_sweep_figure,
    config={"ops": list(HELLO_OPS)},
    source="repro.bench.hello.measure_hello_world",
)


# -- spec complexity ---------------------------------------------------------

_WSRF_SPEC_COLUMNS = (
    "WS-ResourceProperties",
    "WS-ResourceLifetime",
    "WS-ServiceGroup",
    "WS-BaseNotification",
    "WS-BrokeredNotification",
    "total",
)
_TRANSFER_SPEC_COLUMNS = ("WS-Transfer", "WS-Eventing", "total")


def _count_actions(actions_class) -> int:
    return sum(
        1 for name, value in vars(actions_class).items()
        if not name.startswith("_") and isinstance(value, str)
    )


def _measure_spec_complexity(params: dict, seed: int) -> dict:
    from repro.eventing.source import actions as wse_actions
    from repro.transfer.service import actions as wxf_actions
    from repro.wsn.base import actions as wsnt_actions
    from repro.wsn.broker import actions as wsbr_actions
    from repro.wsrf.lifetime import actions as rl_actions
    from repro.wsrf.properties import actions as rp_actions
    from repro.wsrf.servicegroup import actions as sg_actions

    if params["stack"] == "wsrf":
        specs = {
            "WS-ResourceProperties": _count_actions(rp_actions),
            "WS-ResourceLifetime": _count_actions(rl_actions),
            "WS-ServiceGroup": _count_actions(sg_actions),
            "WS-BaseNotification": _count_actions(wsnt_actions),
            "WS-BrokeredNotification": _count_actions(wsbr_actions),
        }
    else:
        specs = {
            "WS-Transfer": _count_actions(wxf_actions),
            # SUBSCRIPTION_END is an event, not an operation clients invoke.
            "WS-Eventing": _count_actions(wse_actions) - 1,
        }
    row = {name: float(count) for name, count in specs.items()}
    row["total"] = float(sum(specs.values()))
    return row


def _spec_complexity_figure(record: RunRecord) -> dict:
    return {
        "WSRF / WS-Notification": _ordered(
            cell_values(record, stack="wsrf"), _WSRF_SPEC_COLUMNS
        ),
        "WS-Transfer / WS-Eventing": _ordered(
            cell_values(record, stack="transfer"), _TRANSFER_SPEC_COLUMNS
        ),
    }


def _spec_complexity_counts(record: RunRecord) -> list[str]:
    problems = []
    transfer = cell_values(record, stack="transfer")
    wsrf = cell_values(record, stack="wsrf")
    for name, expected in (
        ("WS-Transfer", 4.0), ("WS-Eventing", 4.0),
    ):
        if transfer[name] != expected:
            problems.append(f"{name} should define {expected:g} operations")
    for name, expected in (
        ("WS-ResourceProperties", 4.0), ("WS-ResourceLifetime", 2.0),
    ):
        if wsrf[name] != expected:
            problems.append(f"{name} should define {expected:g} operations")
    return problems


SPEC_COMPLEXITY = ExperimentSpec(
    name="spec_complexity",
    title="Spec complexity: operations defined per stack",
    axes=(Axis("stack", ("wsrf", "transfer")),),
    measure=_measure_spec_complexity,
    invariants=(
        PairOrdering(
            "wsrf_defines_more",
            "the WSRF stack carries the larger specification set",
            metric="total",
            greater={"stack": "wsrf"},
            lesser={"stack": "transfer"},
        ),
        Predicate(
            "per_spec_counts",
            "the per-specification operation counts",
            fn=_spec_complexity_counts,
        ),
    ),
    to_figure=_spec_complexity_figure,
    source="repro.experiments.registry._measure_spec_complexity",
    smoke=True,
)


# -- brokered notification ---------------------------------------------------

_BROKERED_COLUMNS = ("messages", "services", "virtual ms")


def _measure_brokered(params: dict, seed: int) -> dict:
    from repro.bench.brokered import measure_brokered

    return measure_brokered()


def _brokered_row(values: dict) -> dict[str, float]:
    return {
        "messages": values["messages"],
        "services": values["services"],
        "virtual ms": values["virtual_ms"],
    }


def _brokered_figure(record: RunRecord) -> dict:
    values = cell_values(record, workload="brokered")
    return {
        "plain Subscribe": _brokered_row(values["plain"]),
        "demand-based scenario": _brokered_row(values["demand"]),
    }


def _brokered_claims(record: RunRecord) -> list[str]:
    problems = []
    values = cell_values(record, workload="brokered")
    plain, demand = values["plain"], values["demand"]
    if not demand["messages"] >= 5 * plain["messages"]:
        problems.append("demand scenario is not >=5x the plain message count")
    if not demand["services"] >= 4:
        problems.append("demand scenario touched fewer than 4 services")
    if plain["services"] != 1:
        problems.append("plain Subscribe touched more than one service")
    return problems


BROKERED = ExperimentSpec(
    name="brokered_messages",
    title="Brokered-notification message counts (per §3.1 scenario)",
    axes=(Axis("workload", ("brokered",)),),
    measure=_measure_brokered,
    invariants=(
        Predicate("brokered_claims", "§3.1's message-explosion claims", fn=_brokered_claims),
    ),
    to_figure=_brokered_figure,
    source="repro.bench.brokered.measure_brokered",
    smoke=True,
)


# -- scaling characterization ------------------------------------------------

_SCALING_SIZES = {
    "hosts": (2, 8, 32),
    "subscribers": (1, 4, 16),
    "kib": (16, 64, 256),
}
_SCALING_LABELS = {
    "hosts": "GetAvailableResources vs hosts",
    "subscribers": "Set+Notify vs subscribers",
    "kib": "UploadFile vs KiB",
}


def _availability_time(n_hosts: int) -> float:
    from repro.apps.giab import build_wsrf_vo
    from repro.bench.runner import measure_virtual

    hosts = {f"node{i:03d}": ["sort"] for i in range(n_hosts)}
    vo = build_wsrf_vo(mode=SecurityMode.NONE, hosts=hosts)
    vo.client.get_available_resources("sort")  # warm caches
    return measure_virtual(
        vo.deployment, "avail", lambda: vo.client.get_available_resources("sort")
    ).elapsed_ms


def _fanout_time(n_subscribers: int) -> float:
    from repro.apps.counter.deploy import CounterScenario, build_wsrf_rig
    from repro.bench.runner import measure_virtual
    from repro.wsn import NotificationConsumer

    rig = build_wsrf_rig(CounterScenario())
    counter = rig.client.create(0)
    for _ in range(n_subscribers):
        consumer = NotificationConsumer(rig.deployment, "client")
        rig.client.subscribe(counter, consumer)
    return measure_virtual(
        rig.deployment, "set+notify", lambda: rig.client.set(counter, 1)
    ).elapsed_ms


def _upload_time(n_kb: int) -> float:
    from repro.apps.giab import build_wsrf_vo
    from repro.bench.runner import measure_virtual

    vo = build_wsrf_vo(mode=SecurityMode.NONE)
    vo.client.make_reservation("node1")
    directory = vo.client.create_data_directory(vo.nodes["node1"].data_service.address)
    payload = "x" * (n_kb * 1024)
    return measure_virtual(
        vo.deployment, "upload", lambda: vo.client.upload_file(directory, "f", payload)
    ).elapsed_ms


_SCALING_MEASURES = {
    "hosts": _availability_time,
    "subscribers": _fanout_time,
    "kib": _upload_time,
}


def _measure_scaling(params: dict, seed: int) -> dict:
    series = params["series"]
    measure = _SCALING_MEASURES[series]
    return {str(n): measure(n) for n in _SCALING_SIZES[series]}


def _scaling_figure(record: RunRecord) -> dict:
    return {
        _SCALING_LABELS[cell.params["series"]]: _ordered(
            cell.values, tuple(str(n) for n in _SCALING_SIZES[cell.params["series"]])
        )
        for cell in record.cells
    }


def _scaling_shapes(record: RunRecord) -> list[str]:
    problems = []
    hosts = cell_values(record, series="hosts")
    if not hosts["2"] < hosts["8"] < hosts["32"]:
        problems.append("availability time is not monotone in hosts")
    if not hosts["32"] < 16 * hosts["2"]:
        problems.append("availability grows superlinearly (overheads not amortized)")
    subs = cell_values(record, series="subscribers")
    if not subs["1"] < subs["4"] < subs["16"]:
        problems.append("fan-out time is not monotone in subscribers")
    per_sub_4 = (subs["4"] - subs["1"]) / 3
    per_sub_16 = (subs["16"] - subs["4"]) / 12
    if abs(per_sub_16 - per_sub_4) > 0.5 * abs(per_sub_4):
        problems.append("fan-out is not linear per subscriber")
    kib = cell_values(record, series="kib")
    if not kib["16"] < kib["64"] < kib["256"]:
        problems.append("upload time is not monotone in size")
    slope_low = (kib["64"] - kib["16"]) / (64 - 16)
    slope_high = (kib["256"] - kib["64"]) / (256 - 64)
    if abs(slope_high - slope_low) > 0.3 * abs(slope_low):
        problems.append("upload cost is not linear in size")
    return problems


SCALING = ExperimentSpec(
    name="scaling",
    title="Scaling characterization (virtual ms)",
    axes=(Axis("series", ("hosts", "subscribers", "kib")),),
    measure=_measure_scaling,
    invariants=(
        Predicate("scaling_shapes", "monotone growth with the right slopes", fn=_scaling_shapes),
    ),
    to_figure=_scaling_figure,
    config={"sizes": {k: list(v) for k, v in _SCALING_SIZES.items()}},
    source="repro.experiments.registry._measure_scaling",
)


# -- workload comparison -----------------------------------------------------

_WORKLOAD_COLUMNS = ("jobs", "virtual ms", "ms/job", "messages")


def _measure_workload(params: dict, seed: int) -> dict:
    from repro.bench.workload import (
        GridWorkload,
        run_workload_transfer,
        run_workload_wsrf,
    )

    workload = GridWorkload(seed=7, n_jobs=12)
    runner = run_workload_wsrf if params["stack"] == "wsrf" else run_workload_transfer
    result = runner(workload)
    return {
        "jobs": float(result.completed),
        "virtual ms": result.virtual_ms,
        "ms/job": result.ms_per_job,
        "messages": float(result.messages),
        "skipped": float(result.skipped_no_resource),
    }


def _workload_figure(record: RunRecord) -> dict:
    return {
        _STACK_LABELS[cell.params["stack"]]: _ordered(cell.values, _WORKLOAD_COLUMNS)
        for cell in record.cells
    }


def _workload_claims(record: RunRecord) -> list[str]:
    problems = []
    wsrf = cell_values(record, stack="wsrf")
    transfer = cell_values(record, stack="transfer")
    for label, values in (("wsrf", wsrf), ("transfer", transfer)):
        if values["jobs"] != 12.0:
            problems.append(f"{label} did not complete all 12 jobs")
    if wsrf["skipped"] != 0.0:
        problems.append("wsrf skipped jobs for lack of resources")
    ratio = wsrf["ms/job"] / transfer["ms/job"]
    if not 1.0 < ratio < 1.73:
        problems.append(
            f"per-job ratio {ratio:.3f} outside (1.0, 1.73): the gap should "
            f"narrow below the Figure 6 instantiate ratio but not vanish"
        )
    return problems


WORKLOAD = ExperimentSpec(
    name="workload",
    title="Workload comparison: 12-job synthetic stream (X.509)",
    axes=(Axis("stack", ("transfer", "wsrf")),),
    measure=_measure_workload,
    invariants=(
        PairOrdering(
            "wsrf_costs_more_messages",
            "WSRF's extra out-calls persist at workload level",
            metric="messages",
            greater={"stack": "wsrf"},
            lesser={"stack": "transfer"},
        ),
        Predicate("workload_claims", "completion and the diluted per-job gap", fn=_workload_claims),
    ),
    to_figure=_workload_figure,
    config={"seed": 7, "n_jobs": 12, "mode": "x509"},
    source="repro.bench.workload.run_workload_wsrf",
)


# -- stack switching ---------------------------------------------------------

_SWITCH_OPS = ("Get", "Set", "Create", "Destroy")


def _measure_switching(params: dict, seed: int) -> dict:
    from repro.bench.switching import measure_route

    return measure_route(params["route"])


def _switching_figure(record: RunRecord) -> dict:
    from repro.bench.switching import ROUTES

    labels = dict(ROUTES)
    return {
        labels[cell.params["route"]]: _ordered(cell.values, _SWITCH_OPS)
        for cell in record.cells
    }


def _switch_orderings() -> tuple:
    orderings = []
    for native, bridged in (
        ("native_wsrf", "bridged_wsrf"),
        ("native_transfer", "bridged_transfer"),
    ):
        orderings.append(
            PairOrdering(
                f"{bridged}_costs_more",
                "the facade indirection always costs time",
                greater={"route": bridged},
                lesser={"route": native},
            )
        )
        orderings.append(
            PairOrdering(
                f"{bridged}_within_10x",
                "switching is expensive but feasible (§5)",
                greater={"route": native},
                lesser={"route": bridged},
                factor=0.1,
            )
        )
    orderings.append(
        PairOrdering(
            "bridged_set_worst_case",
            "the WSRF→Transfer Set pays Get+Put on the backing service",
            metric="Set",
            greater={"route": "bridged_wsrf"},
            lesser={"route": "native_wsrf"},
            factor=2.5,
        )
    )
    return tuple(orderings)


STACK_SWITCHING = ExperimentSpec(
    name="stack_switching",
    title="Stack switching: native vs bridged operation cost",
    axes=(
        Axis("route", ("native_wsrf", "bridged_wsrf", "native_transfer", "bridged_transfer")),
    ),
    measure=_measure_switching,
    invariants=_switch_orderings(),
    to_figure=_switching_figure,
    source="repro.bench.switching.measure_route",
)


# -- reliability sweeps ------------------------------------------------------

_RELIABILITY_LABELS = {"wsrf": "WSRF.NET", "transfer": "WS-Transfer"}
_RELIABILITY_COLUMNS = (
    "virtual ms", "overhead x", "delivered", "retransmits",
    "dup suppressed", "dead-lettered",
)


def _reliability_values(result) -> dict:
    return {
        "virtual_ms": result.virtual_ms,
        "operations": result.operations,
        "completed": result.completed,
        "notifications_delivered": result.notifications_delivered,
        "notification_retransmissions": result.notification_retransmissions,
        "notifications_dead_lettered": result.notifications_dead_lettered,
        "notifications_assigned": result.notifications_assigned,
        "duplicates_suppressed": result.duplicates_suppressed,
        "requests_delivered": result.requests_delivered,
        "request_retransmissions": result.request_retransmissions,
        "dead_letters_total": result.dead_letters_total,
        "messages_lost": result.messages_lost,
        "messages_duplicated": result.messages_duplicated,
        "connections_reset": result.connections_reset,
    }


def _measure_reliability(workload: str):
    def measure(params: dict, seed: int) -> dict:
        from repro.bench.reliability import (
            run_counter_reliability,
            run_giab_reliability,
        )

        runner = run_counter_reliability if workload == "counter" else run_giab_reliability
        return _reliability_values(runner(params["stack"], params["loss_rate"]))

    return measure


def _reliability_figure(record: RunRecord) -> dict:
    clean = {
        stack: cell_values(record, stack=stack, loss_rate=0.0)["virtual_ms"]
        for stack in _RELIABILITY_LABELS
    }
    figure = {}
    for cell in record.cells:
        stack, rate = cell.params["stack"], cell.params["loss_rate"]
        values = cell.values
        figure[f"{_RELIABILITY_LABELS[stack]} @ {rate:.0%} loss"] = {
            "virtual ms": values["virtual_ms"],
            "overhead x": values["virtual_ms"] / clean[stack],
            "delivered": float(values["notifications_delivered"]),
            "retransmits": float(
                values["notification_retransmissions"]
                + values["request_retransmissions"]
            ),
            "dup suppressed": float(values["duplicates_suppressed"]),
            "dead-lettered": float(values["dead_letters_total"]),
        }
    return figure


def _reliability_claims(record: RunRecord) -> list[str]:
    problems = []
    for cell in record.cells:
        v = cell.values
        if v["notifications_delivered"] + v["notifications_dead_lettered"] != v["notifications_assigned"]:
            problems.append(f"{cell.cell_id}: the accounting ledger does not close")
        undelivered = v["notifications_assigned"] - v["notifications_delivered"]
        if undelivered > v["dead_letters_total"]:
            problems.append(f"{cell.cell_id}: undelivered messages escaped the dead-letter log")
        if v["completed"] != v["operations"]:
            problems.append(f"{cell.cell_id}: an operation did not survive the loss rate")
    for stack in _RELIABILITY_LABELS:
        clean = cell_values(record, stack=stack, loss_rate=0.0)
        for field in (
            "notification_retransmissions", "request_retransmissions",
            "duplicates_suppressed", "dead_letters_total",
        ):
            if clean[field] != 0:
                problems.append(f"{stack}: clean wire shows reliability overhead ({field})")
        for rate in (0.05, 0.10):
            lossy = cell_values(record, stack=stack, loss_rate=rate)
            total = (
                lossy["notification_retransmissions"]
                + lossy["request_retransmissions"]
            )
            if total <= 0:
                problems.append(f"{stack} @ {rate:.0%}: no retransmissions under heavy loss")
    worst = cell_values(record, stack="wsrf", loss_rate=0.10)
    if worst["messages_lost"] + worst["connections_reset"] <= 0:
        problems.append("the fault injector never actually misbehaved")
    return problems


def _loss_orderings() -> tuple:
    return tuple(
        PairOrdering(
            f"loss_{rate:g}_costs_latency",
            "retransmission + backoff make a lossy wire slower",
            metric="virtual_ms",
            greater={"loss_rate": rate},
            lesser={"loss_rate": 0.0},
        )
        for rate in (0.01, 0.05, 0.10)
    )


def _reliability_spec(name: str, title: str, workload: str) -> ExperimentSpec:
    return ExperimentSpec(
        name=name,
        title=title,
        axes=(
            Axis("stack", ("wsrf", "transfer")),
            Axis("loss_rate", (0.0, 0.01, 0.05, 0.10)),
        ),
        measure=_measure_reliability(workload),
        invariants=_loss_orderings() + (
            Predicate("reliability_claims", "ledger closure and retry behavior", fn=_reliability_claims),
        ),
        to_figure=_reliability_figure,
        config={"workload": workload, "policy": "RetryPolicy(max_attempts=5, base_backoff_ms=20, jitter_ms=4)"},
        source=f"repro.bench.reliability.run_{workload}_reliability",
    )


RELIABILITY_COUNTER = _reliability_spec(
    "reliability_counter", "Reliability: counter notifications under loss", "counter"
)
RELIABILITY_GIAB = _reliability_spec(
    "reliability_giab", "Reliability: GiaB job flow under loss (X.509)", "giab"
)


# -- calibration robustness --------------------------------------------------


def _measure_ablation(params: dict, seed: int) -> dict:
    from repro.bench.ablation import perturbation_row

    return perturbation_row(params["entry"])


def _ablation_figure(record: RunRecord) -> dict:
    return {
        cell.params["entry"]: _ordered(cell.values, ("x0.5", "x1.5"))
        for cell in record.cells
    }


def _ablation_clean(record: RunRecord) -> list[str]:
    return [
        f"{cell.cell_id}: {column} perturbation broke {cell.values[column]:g} orderings"
        for cell in record.cells
        for column in ("x0.5", "x1.5")
        if cell.values[column] != 0.0
    ]


def _ablation_spec() -> ExperimentSpec:
    from repro.bench.ablation import PERTURBED_ENTRIES

    return ExperimentSpec(
        name="ablation_robustness",
        title="Calibration robustness: ordering violations per perturbation",
        axes=(Axis("entry", PERTURBED_ENTRIES),),
        measure=_measure_ablation,
        invariants=(
            Predicate(
                "orderings_survive",
                "±50% on any one entry breaks no headline ordering",
                fn=_ablation_clean,
            ),
        ),
        to_figure=_ablation_figure,
        config={"factors": [0.5, 1.5]},
        source="repro.bench.ablation.perturbation_row",
    )


ABLATION = _ablation_spec()


# -- trace spans -------------------------------------------------------------

TRACE_STAGES = (
    "client.send", "wire.request", "server.receive", "dispatch",
    "server.send", "wire.response", "client.receive",
)


def _measure_trace(params: dict, seed: int) -> dict:
    from repro.bench.trace import stage_breakdown, trace_round_trip

    trees = trace_round_trip(params["stack"], SecurityMode.X509)
    return {
        "stages": stage_breakdown(trees["Get"]),
        "get_tree": trees["Get"].to_dict(),
        "notify_tree": trees["Notify"].to_dict(),
    }


def _trace_figure(record: RunRecord) -> dict:
    return {
        _STACK_LABELS[cell.params["stack"]]: _ordered(
            cell.values["stages"], TRACE_STAGES
        )
        for cell in record.cells
    }


def _span_dict_rows(label: str, node: dict, depth: int, lines: list[str]) -> None:
    lines.append(
        f"{label},{depth},{node['name']},{node['started_at']:.3f},"
        f"{node['ended_at']:.3f},{node['elapsed_ms']:.3f},{node.get('detail', '')}"
    )
    for child in node["children"]:
        _span_dict_rows(label, child, depth + 1, lines)


def _trace_artifacts(record: RunRecord) -> dict[str, str]:
    import json

    lines = ["series,depth,span,started_at,ended_at,elapsed_ms,detail"]
    trees: dict[str, dict] = {}
    for cell in record.cells:
        label = _STACK_LABELS[cell.params["stack"]]
        trees[label] = {
            "Get": cell.values["get_tree"],
            "Notify": cell.values["notify_tree"],
        }
        for op in ("Get", "Notify"):
            _span_dict_rows(f"{label}/{op}", trees[label][op], 0, lines)
    return {
        "trace_spans_x509.csv": "\n".join(lines) + "\n",
        "trace_spans_x509.json": json.dumps(trees, indent=2, sort_keys=True),
    }


def _span_names(node: dict) -> set[str]:
    names = {node["name"]}
    for child in node["children"]:
        names |= _span_names(child)
    return names


def _trace_claims(record: RunRecord) -> list[str]:
    problems = []
    for cell in record.cells:
        stages = cell.values["stages"]
        if tuple(_ordered(stages, TRACE_STAGES)) != TRACE_STAGES:
            problems.append(f"{cell.cell_id}: a Figure-1 stage is missing")
        root = cell.values["get_tree"]
        total = sum(child["elapsed_ms"] for child in root["children"])
        if abs(total - root["elapsed_ms"]) > 1e-9:
            problems.append(f"{cell.cell_id}: stages do not partition the round trip")
        security = (
            stages["client.send"] + stages["server.receive"]
            + stages["server.send"] + stages["client.receive"]
        )
        wire = stages["wire.request"] + stages["wire.response"]
        if not security > wire:
            problems.append(f"{cell.cell_id}: security stages do not outweigh wire time")
        needed = {"notify.deliver", "notify.send", "wire.notify", "notify.receive"}
        if not needed <= _span_names(cell.values["notify_tree"]):
            problems.append(f"{cell.cell_id}: the Notify tree is missing stages")
    return problems


TRACE_SPANS = ExperimentSpec(
    name="trace_spans",
    title="Trace spans: signed distributed Get per stage",
    axes=(Axis("stack", ("transfer", "wsrf")),),
    measure=_measure_trace,
    invariants=(
        Predicate("trace_claims", "stage coverage, partition and security weight", fn=_trace_claims),
    ),
    to_figure=_trace_figure,
    extra_artifacts=_trace_artifacts,
    config={"mode": "x509", "stages": list(TRACE_STAGES)},
    source="repro.bench.trace.trace_round_trip",
)


# -- XML DB scaling ----------------------------------------------------------

_XMLDB_SIZES = (10, 100, 1000, 5000)
_XMLDB_ROWS = (
    ("scan host lookup", "scan"),
    ("indexed host lookup", "indexed"),
    ("unindexable (falls back to scan)", "fallback"),
    ("scan / indexed speedup ×", "speedup"),
)


def _measure_xmldb(params: dict, seed: int) -> dict:
    from repro.bench.xmldb import (
        UNINDEXABLE,
        build_corpus,
        host_lookup,
        query_cost,
    )

    n = params["size"]
    plain = build_corpus(n, indexed=False)
    fast = build_corpus(n, indexed=True)
    scan, scan_hits = query_cost(plain, host_lookup(n))
    indexed, indexed_hits = query_cost(fast, host_lookup(n))
    fallback, _hits = query_cost(fast, UNINDEXABLE)
    return {
        "scan": scan,
        "indexed": indexed,
        "fallback": fallback,
        "speedup": scan / indexed,
        "scan_hits": scan_hits,
        "indexed_hits": indexed_hits,
    }


def _xmldb_figure(record: RunRecord) -> dict:
    return {
        row_label: {
            str(cell.params["size"]): cell.values[key] for cell in record.cells
        }
        for row_label, key in _XMLDB_ROWS
    }


def _xmldb_artifacts(record: RunRecord) -> dict[str, str]:
    import json

    from repro.bench.report import figure_to_csv

    table = _xmldb_figure(record)
    return {
        "xmldb_scaling.csv": figure_to_csv(table),
        "xmldb_scaling.json": json.dumps(table, indent=2, sort_keys=True) + "\n",
    }


def _xmldb_claims(record: RunRecord) -> list[str]:
    from repro.bench.xmldb import scan_cost_model

    problems = []
    for cell in record.cells:
        n, v = cell.params["size"], cell.values
        if abs(v["scan"] - scan_cost_model(n)) > 1e-6:
            problems.append(f"size={n}: the scan path left the pinned cost formula")
        if abs(v["fallback"] - v["scan"]) > 1e-9:
            problems.append(f"size={n}: the planner fallback does not reproduce the scan curve")
        if v["scan_hits"] != 1 or v["indexed_hits"] != 1:
            problems.append(f"size={n}: the host lookup should match exactly one document")
    indexed = [cell.values["indexed"] for cell in record.cells]
    if max(indexed) - min(indexed) >= 0.5:
        problems.append("indexed lookup cost is not flat across corpus sizes")
    at_1000 = cell_values(record, size=1000)
    if at_1000["scan"] < 10 * at_1000["indexed"]:
        problems.append("the index is not >=10x cheaper at 1000 documents")
    return problems


XMLDB_SCALING = ExperimentSpec(
    name="xmldb_scaling",
    title="XML DB scaling: indexed query vs collection scan",
    axes=(Axis("size", _XMLDB_SIZES),),
    measure=_measure_xmldb,
    invariants=(
        Predicate("xmldb_claims", "cost formula, flat index and planner fallback", fn=_xmldb_claims),
    ),
    to_figure=_xmldb_figure,
    extra_artifacts=_xmldb_artifacts,
    source="repro.bench.xmldb.query_cost",
)


# -- datagrid replica staging ------------------------------------------------

_DATAGRID_STACKS = ("wsrf", "transfer")


def _measure_datagrid(params: dict, seed: int) -> dict:
    from repro.apps.datagrid import DatagridScenario
    from repro.bench.datagrid import run_staging

    scenario = DatagridScenario(
        SecurityMode(params["mode"]), params["placement"] == "co-located"
    )
    return run_staging(params["stack"], scenario)


def _datagrid_cells(record: RunRecord) -> dict[str, dict[str, dict]]:
    """Record cells regrouped as the legacy ``cells`` nesting, in the
    ``DatagridScenario.all_six()`` row order."""
    cells: dict[str, dict[str, dict]] = {}
    for mode in _MODES:
        for placement in ("co-located", "distributed"):
            label = f"{placement}/{mode}"
            cells[label] = {
                stack: cell_values(
                    record, mode=mode, placement=placement, stack=stack
                )
                for stack in _DATAGRID_STACKS
            }
    return cells


def _datagrid_figure(record: RunRecord) -> dict:
    return {
        label: {stack: row["virtual_ms"] for stack, row in stacks.items()}
        for label, stacks in _datagrid_cells(record).items()
    }


def _datagrid_artifacts(record: RunRecord) -> dict[str, str]:
    from repro.experiments.schema import dumps_canonical

    report = {"config": dict(record.config), "cells": _datagrid_cells(record)}
    return {"BENCH_datagrid.json": dumps_canonical(report)}


def _datagrid_claims(record: RunRecord) -> list[str]:
    from repro.bench.datagrid import EXPECTED_SOURCES

    problems = []
    for cell in record.cells:
        row = cell.values
        if row["sources"] != EXPECTED_SOURCES:
            problems.append(f"{cell.cell_id}: the shared logic picked different sources")
        if row["link_ms"] != 480.0:
            problems.append(f"{cell.cell_id}: link charges moved off the topology-only 480ms")
        if row["events_replicas"] != ["se1.cern", "se1.fnal", "se2.cern"]:
            problems.append(f"{cell.cell_id}: catalog replica state diverged")
        if row["se1.cern_files"] != ["lfn:calib", "lfn:events"]:
            problems.append(f"{cell.cell_id}: catalog file state diverged")
    for label, stacks in _datagrid_cells(record).items():
        if len({row["messages"] for row in stacks.values()}) != 1:
            problems.append(f"{label}: message counts differ across stacks")
    return problems


DATAGRID = ExperimentSpec(
    name="datagrid",
    title="Datagrid replica staging (virtual ms per cell)",
    axes=(
        Axis("mode", _MODES),
        Axis("placement", ("co-located", "distributed")),
        Axis("stack", _DATAGRID_STACKS),
    ),
    measure=_measure_datagrid,
    invariants=(
        PairOrdering(
            "x509_above_https",
            "signing costs dominate the staging wire time",
            metric="virtual_ms",
            greater={"mode": "x509", "placement": "co-located"},
            lesser={"mode": "https", "placement": "co-located"},
        ),
        PairOrdering(
            "https_above_none",
            "TLS still costs more than a bare wire",
            metric="virtual_ms",
            greater={"mode": "https", "placement": "co-located"},
            lesser={"mode": "none", "placement": "co-located"},
        ),
        PairOrdering(
            "distributed_adds_wire_time",
            "distribution adds wire time in every mode",
            metric="virtual_ms",
            greater={"placement": "distributed"},
            lesser={"placement": "co-located"},
        ),
        Predicate("shared_logic", "identical decisions and charges everywhere", fn=_datagrid_claims),
    ),
    to_figure=_datagrid_figure,
    extra_artifacts=_datagrid_artifacts,
    config={
        "workload": "replica staging",
        "registrations": 3,
        "replications": 2,
        "stage_ins": 2,
        "expected_sources": {
            "replicate lfn:events to se2.cern": "se1.cern",
            "replicate lfn:calib to se1.fnal": "se1.cern",
            "stage-in lfn:events to se2.fnal": "se1.fnal",
            "stage-in lfn:calib to se1.cern": "se1.cern",
        },
    },
    source="repro.bench.datagrid.run_staging",
)


# -- open-loop load ----------------------------------------------------------

_LOADGEN_RATES = (10.0, 20.0, 40.0)


def _measure_loadgen(params: dict, seed: int) -> dict:
    from repro.bench.loadgen import run_load

    return run_load(params["stack"], rate_per_sec=params["rate"]).summary()


def _loadgen_figure(record: RunRecord) -> dict:
    figure: dict[str, dict[str, float]] = {}
    for stack in _DATAGRID_STACKS:
        figure[stack] = {}
        for rate in _LOADGEN_RATES:
            values = cell_values(record, stack=stack, rate=rate)
            figure[stack][f"{values['offered_per_sec']:g}/s"] = values["latency"]["p95_ms"]
    return figure


def _loadgen_artifacts(record: RunRecord) -> dict[str, str]:
    from repro.experiments.schema import dumps_canonical

    report = {
        "title": "Open-loop counter load: offered load vs latency (X.509, distributed)",
        "config": dict(record.config),
        "stacks": {
            stack: [
                cell_values(record, stack=stack, rate=rate)
                for rate in _LOADGEN_RATES
            ]
            for stack in _DATAGRID_STACKS
        },
    }
    return {"BENCH_loadgen.json": dumps_canonical(report)}


def _loadgen_claims(record: RunRecord) -> list[str]:
    problems = []
    n = record.config["requests_per_point"]
    for cell in record.cells:
        v = cell.values
        if v["completed"] + v["rejected"] + v["failed"] != n:
            problems.append(f"{cell.cell_id}: a request went unaccounted for")
        if v["failed"] != 0:
            problems.append(f"{cell.cell_id}: requests failed outright")
    for stack in _DATAGRID_STACKS:
        rows = [cell_values(record, stack=stack, rate=rate) for rate in _LOADGEN_RATES]
        mid, top = rows[-2], rows[-1]
        if top["throughput_per_sec"] >= 1.5 * mid["throughput_per_sec"]:
            problems.append(f"{stack}: throughput did not saturate at the top rate")
        depths = [max(row["max_queue_depth"].values()) for row in rows]
        if depths[-1] <= depths[0]:
            problems.append(f"{stack}: queue depth did not rise with load")
        if rows[-1]["queueing"]["p95_ms"] <= 0:
            problems.append(f"{stack}: no queueing delay under saturation")
    return problems


LOADGEN = ExperimentSpec(
    name="loadgen",
    title="Open-loop load: offered load vs p95 latency (X.509, distributed)",
    axes=(
        Axis("stack", _DATAGRID_STACKS),
        Axis("rate", _LOADGEN_RATES),
    ),
    measure=_measure_loadgen,
    invariants=(
        PairOrdering(
            "p95_grows_20_over_10",
            "open loop: more offered load lengthens the queue",
            metric="latency.p95_ms",
            greater={"rate": 20.0},
            lesser={"rate": 10.0},
        ),
        PairOrdering(
            "p95_grows_40_over_20",
            "open loop: more offered load lengthens the queue",
            metric="latency.p95_ms",
            greater={"rate": 40.0},
            lesser={"rate": 20.0},
        ),
        PairOrdering(
            "p95_doubles_top_to_bottom",
            "saturation at the top swept rate",
            metric="latency.p95_ms",
            greater={"rate": 40.0},
            lesser={"rate": 10.0},
            factor=2.0,
        ),
        Predicate("trajectory_claims", "accounting, saturation and queue growth", fn=_loadgen_claims),
    ),
    to_figure=_loadgen_figure,
    extra_artifacts=_loadgen_artifacts,
    config={
        "requests_per_point": 60,
        "process": "poisson",
        "seed": 1405,
        "workers": 1,
        "queue_limit": 64,
        "mode": "x509",
        "placement": "distributed",
        "unit": "virtual ms",
    },
    source="repro.bench.loadgen.run_load",
)


# -- msgperf (wall clock; shape-gated) ---------------------------------------


def _measure_msgperf(params: dict, seed: int) -> dict:
    from repro.bench.msgperf import run_msgperf

    return run_msgperf()


def _msgperf_figure(record: RunRecord) -> dict:
    report = cell_values(record, run="all")
    return {
        "soak (msg/s)": {
            "cached": report["soak"]["cached"]["messages_per_sec"],
            "uncached": report["soak"]["uncached"]["messages_per_sec"],
            "speedup x": report["soak"]["speedup"],
        },
        "xmldb (doc/s)": {
            "cached": report["xmldb"]["cached"]["docs_per_sec"],
            "uncached": report["xmldb"]["uncached"]["docs_per_sec"],
            "speedup x": report["xmldb"]["speedup"],
        },
    }


def _msgperf_artifacts(record: RunRecord) -> dict[str, str]:
    from repro.experiments.schema import dumps_canonical

    return {"BENCH_msgperf.json": dumps_canonical(cell_values(record, run="all"))}


def _msgperf_claims(record: RunRecord) -> list[str]:
    problems = []
    report = cell_values(record, run="all")
    soak = report["soak"]
    if soak["speedup"] < soak["min_speedup"]:
        problems.append("the soak speedup fell under the floor")
    if not soak["cached"]["virtual_ms_per_op"] == soak["uncached"]["virtual_ms_per_op"] > 0:
        problems.append("caching changed the virtual costs")
    stats = report["cache_stats"]
    if stats["dsig.sign"]["hits"] <= stats["dsig.sign"]["misses"]:
        problems.append("the signing cache was not exercised")
    if stats["dsig.verify"]["hits"] <= 0:
        problems.append("the verification cache was not exercised")
    if report["xmldb"]["speedup"] < 0.75:
        problems.append("caching pessimized the one-shot document workload")
    return problems


MSGPERF = ExperimentSpec(
    name="msgperf",
    title="Message-path wall-clock throughput: memoized vs uncached",
    axes=(Axis("run", ("all",)),),
    measure=_measure_msgperf,
    invariants=(
        Predicate("msgperf_claims", "speedup floor and virtual-cost invariance", fn=_msgperf_claims),
    ),
    gate="shape",
    to_figure=_msgperf_figure,
    extra_artifacts=_msgperf_artifacts,
    source="repro.bench.msgperf.run_msgperf",
)


# -- the registry ------------------------------------------------------------

SPECS: tuple[ExperimentSpec, ...] = (
    FIG2,
    FIG3,
    FIG4,
    FIG6,
    SCENARIOS_SWEEP,
    SPEC_COMPLEXITY,
    BROKERED,
    SCALING,
    WORKLOAD,
    STACK_SWITCHING,
    RELIABILITY_COUNTER,
    RELIABILITY_GIAB,
    ABLATION,
    TRACE_SPANS,
    XMLDB_SCALING,
    DATAGRID,
    LOADGEN,
    MSGPERF,
)


def all_specs() -> tuple[ExperimentSpec, ...]:
    return SPECS


def spec_names() -> list[str]:
    return [spec.name for spec in SPECS]


def get_spec(name: str) -> ExperimentSpec:
    for spec in SPECS:
        if spec.name == name:
            return spec
    raise KeyError(
        f"no experiment spec named {name!r}; known: {', '.join(spec_names())}"
    )


def smoke_specs() -> tuple[ExperimentSpec, ...]:
    return tuple(spec for spec in SPECS if spec.smoke)
