"""Declarative experiment engine (DESIGN.md §17).

A spec (:class:`~repro.experiments.spec.ExperimentSpec`) names its swept
axes, its measurement callable and its shape invariants; the engine
(:class:`~repro.experiments.engine.ExperimentEngine`) expands the grid,
runs cells deterministically (seeded, checkpointed, resumable) and
consolidates them into one unified record schema
(:class:`~repro.experiments.schema.RunRecord`) that every published
artifact — ``results/*.csv``, ``BENCH_*.json``, EXPERIMENTS.md — renders
from.  The gates (:mod:`~repro.experiments.gates`) diff fresh runs
against the recorded trajectory: invariant violations, ordering flips and
virtual-cost drift all fail ``python -m repro experiments --check``.
"""

from repro.experiments.engine import (
    EngineError,
    ExperimentEngine,
    GridIncomplete,
    RunStats,
    run_in_memory,
)
from repro.experiments.gates import (
    GateReport,
    check_against_record,
    check_artifacts,
    find_drift,
    find_ordering_flips,
)
from repro.experiments.schema import (
    SCHEMA_VERSION,
    CellResult,
    RunRecord,
    SchemaError,
    dumps_canonical,
    numeric_leaves,
)
from repro.experiments.spec import (
    Axis,
    ExperimentSpec,
    Invariant,
    PairOrdering,
    Predicate,
    SpecError,
    evaluate_invariants,
    make_record,
)

__all__ = [
    "SCHEMA_VERSION",
    "Axis",
    "CellResult",
    "EngineError",
    "ExperimentEngine",
    "ExperimentSpec",
    "GateReport",
    "GridIncomplete",
    "Invariant",
    "PairOrdering",
    "Predicate",
    "RunRecord",
    "RunStats",
    "SchemaError",
    "SpecError",
    "check_against_record",
    "check_artifacts",
    "dumps_canonical",
    "evaluate_invariants",
    "find_drift",
    "find_ordering_flips",
    "make_record",
    "numeric_leaves",
    "run_in_memory",
]
