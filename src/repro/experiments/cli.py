"""``python -m repro experiments`` — run, resume, check, document.

Modes (combinable where it makes sense):

* ``--list``            — every spec: grid size, gate kind, smoke flag.
* ``--run NAME...``     — run grids (``all`` = every spec), write records
                          + artifacts; ``--resume`` loads checkpointed
                          cells instead of re-measuring them.
* ``--check [NAME...]`` — fresh in-memory runs gated against the
                          committed records (invariants, ordering flips,
                          drift, artifact staleness).
* ``--smoke``           — the CI quick gate: ``--check`` over the smoke
                          subset only.
* ``--soak``            — the full-grid gate: ``--check`` over every spec.
* ``--docs``            — regenerate EXPERIMENTS.md from the records.
* ``--check-docs``      — fail if the committed EXPERIMENTS.md differs
                          from the regenerated one.
* ``--json``            — machine-readable summary on stdout.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.experiments.engine import ExperimentEngine, run_in_memory
from repro.experiments.gates import check_against_record, check_artifacts
from repro.experiments.registry import all_specs, get_spec, smoke_specs

_REPO_ROOT = os.path.dirname(  # repo root: src/repro/experiments/cli.py -> ../../..
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
)
DEFAULT_RESULTS_DIR = os.path.join(_REPO_ROOT, "results")


def _resolve(names: list[str]):
    if not names or "all" in names:
        return list(all_specs())
    try:
        return [get_spec(name) for name in names]
    except KeyError as exc:
        raise SystemExit(f"error: {exc.args[0]}")


def _list_specs(out) -> None:
    for spec in all_specs():
        cells = len(spec.grid())
        axes = " x ".join(f"{axis.name}[{len(axis.values)}]" for axis in spec.axes)
        smoke = "  [smoke]" if spec.smoke else ""
        out.write(f"{spec.name:22s} {cells:3d} cells  {spec.gate:5s}  {axes}{smoke}\n")
        out.write(f"{'':22s} {spec.title}\n")


def _run_specs(engine: ExperimentEngine, specs, *, resume: bool, out) -> dict:
    from repro.bench.report import format_figure_table

    summary = {}
    for spec in specs:
        record = engine.run(spec, resume=resume)
        stats = engine.last_stats
        out.write(
            f"{spec.name}: {stats.measured} measured, {stats.resumed} resumed "
            f"-> {engine.record_path(spec.name)}\n"
        )
        if spec.to_figure is not None:
            out.write(format_figure_table(spec.title, spec.figure(record)) + "\n\n")
        summary[spec.name] = {
            "measured": stats.measured,
            "resumed": stats.resumed,
            "record": engine.record_path(spec.name),
            "artifacts": sorted(spec.artifacts(record)),
        }
    return summary


def _check_specs(engine: ExperimentEngine, specs, out) -> dict:
    summary = {}
    for spec in specs:
        recorded = engine.load_record(spec.name)
        fresh = run_in_memory(spec)
        report = check_against_record(spec, recorded, fresh)
        problems = report.lines()
        problems.extend(check_artifacts(spec, recorded, engine.results_dir))
        status = "ok" if not problems else "FAIL"
        out.write(f"{spec.name}: {status} ({len(recorded.cells)} cells)\n")
        for problem in problems:
            out.write(f"  {problem}\n")
        summary[spec.name] = {"ok": not problems, "problems": problems}
    return summary


def experiments_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro experiments",
        description="declarative experiment engine: run grids, gate regressions",
    )
    parser.add_argument("--list", action="store_true", help="list every spec")
    parser.add_argument(
        "--run", nargs="+", metavar="NAME", help="run specs ('all' = every spec)"
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="with --run: load completed cell checkpoints instead of re-measuring",
    )
    parser.add_argument(
        "--check", nargs="*", metavar="NAME",
        help="gate fresh runs against the records (default: every spec)",
    )
    parser.add_argument(
        "--smoke", action="store_true", help="check the smoke subset only (CI)"
    )
    parser.add_argument(
        "--soak", action="store_true", help="check every spec (full grids)"
    )
    parser.add_argument(
        "--docs", action="store_true", help="regenerate EXPERIMENTS.md from the records"
    )
    parser.add_argument(
        "--check-docs", action="store_true",
        help="fail if EXPERIMENTS.md differs from the regenerated one",
    )
    parser.add_argument("--json", action="store_true", help="JSON summary on stdout")
    parser.add_argument(
        "--results", default=DEFAULT_RESULTS_DIR, metavar="DIR",
        help="results directory (default: the repo's results/)",
    )
    args = parser.parse_args(argv)

    engine = ExperimentEngine(args.results)
    out = sys.stderr if args.json else sys.stdout
    summary: dict = {}
    failed = False
    acted = False

    if args.list:
        acted = True
        _list_specs(out)

    if args.run:
        acted = True
        summary["run"] = _run_specs(
            engine, _resolve(args.run), resume=args.resume, out=out
        )

    check_specs = None
    if args.smoke:
        check_specs = list(smoke_specs())
    elif args.soak:
        check_specs = list(all_specs())
    elif args.check is not None:
        check_specs = _resolve(args.check)
    if check_specs is not None:
        acted = True
        summary["check"] = _check_specs(engine, check_specs, out)
        failed = failed or any(not r["ok"] for r in summary["check"].values())

    if args.docs:
        acted = True
        from repro.experiments.docgen import write_docs

        path = write_docs(args.results)
        out.write(f"wrote {path}\n")
        summary["docs"] = {"path": path}

    if args.check_docs:
        acted = True
        from repro.experiments.docgen import check_docs

        problems = check_docs(args.results)
        for problem in problems:
            out.write(f"docs: {problem}\n")
        summary["check_docs"] = {"ok": not problems, "problems": problems}
        failed = failed or bool(problems)

    if not acted:
        parser.print_help(sys.stderr)
        return 2

    if args.json:
        summary["ok"] = not failed
        print(json.dumps(summary, indent=2, sort_keys=True))
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(experiments_main(sys.argv[1:]))
