"""The unified results schema every experiment feeds.

One vocabulary for every benchmark: a spec expands to a grid of *cells*
(one per combination of axis values), each cell run produces a
:class:`CellResult`, and a completed grid is a :class:`RunRecord` — the
thing that is serialized under ``results/experiments/``, diffed by the
regression gate, rendered into ``results/*.csv`` / ``BENCH_*.json``
artifacts, and compiled into ``EXPERIMENTS.md``.

Serialization is deliberately boring: everything is plain JSON with
sorted keys and a fixed indent, so a record regenerated from the same
virtual-clock run is *byte-identical* — which is exactly what the
check gates diff.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: Bumped when the serialized layout changes incompatibly.
SCHEMA_VERSION = 1


class SchemaError(ValueError):
    """A record (or checkpoint) that does not parse as this schema."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SchemaError(message)


@dataclass(frozen=True)
class CellResult:
    """One measured cell: the axis values it ran at and what it produced.

    ``values`` is an arbitrary JSON-serializable payload (floats for
    simple figures, nested dicts/lists for sweep rows); the gate layer
    only compares its *numeric leaves* (see :func:`numeric_leaves`).
    """

    cell_id: str
    params: dict
    seed: int
    values: dict

    def to_json(self) -> dict:
        return {
            "cell_id": self.cell_id,
            "params": self.params,
            "seed": self.seed,
            "values": self.values,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "CellResult":
        _require(isinstance(payload, dict), "cell payload must be an object")
        for key in ("cell_id", "params", "seed", "values"):
            _require(key in payload, f"cell payload missing {key!r}")
        _require(isinstance(payload["params"], dict), "cell params must be an object")
        _require(isinstance(payload["values"], dict), "cell values must be an object")
        _require(
            isinstance(payload["seed"], int) and not isinstance(payload["seed"], bool),
            "cell seed must be an integer",
        )
        return cls(
            cell_id=str(payload["cell_id"]),
            params=dict(payload["params"]),
            seed=payload["seed"],
            values=payload["values"],
        )


@dataclass
class RunRecord:
    """A completed (or partially completed) grid run of one spec."""

    spec: str
    fingerprint: str
    config: dict = field(default_factory=dict)
    cells: list[CellResult] = field(default_factory=list)
    schema_version: int = SCHEMA_VERSION

    def cell(self, cell_id: str) -> CellResult:
        for cell in self.cells:
            if cell.cell_id == cell_id:
                return cell
        raise KeyError(f"no cell {cell_id!r} in record for {self.spec!r}")

    def cell_ids(self) -> list[str]:
        return [cell.cell_id for cell in self.cells]

    def to_json(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "spec": self.spec,
            "fingerprint": self.fingerprint,
            "config": self.config,
            "cells": [cell.to_json() for cell in self.cells],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "RunRecord":
        _require(isinstance(payload, dict), "record payload must be an object")
        for key in ("schema_version", "spec", "fingerprint", "cells"):
            _require(key in payload, f"record payload missing {key!r}")
        _require(
            payload["schema_version"] == SCHEMA_VERSION,
            f"unsupported schema version {payload['schema_version']!r} "
            f"(this build reads {SCHEMA_VERSION})",
        )
        cells = [CellResult.from_json(cell) for cell in payload["cells"]]
        seen: set[str] = set()
        for cell in cells:
            _require(cell.cell_id not in seen, f"duplicate cell id {cell.cell_id!r}")
            seen.add(cell.cell_id)
        return cls(
            spec=str(payload["spec"]),
            fingerprint=str(payload["fingerprint"]),
            config=dict(payload.get("config", {})),
            cells=cells,
        )

    # -- file I/O ----------------------------------------------------------

    def dumps(self) -> str:
        return dumps_canonical(self.to_json())

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.dumps())

    @classmethod
    def loads(cls, text: str) -> "RunRecord":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SchemaError(f"record is not valid JSON: {exc}") from exc
        return cls.from_json(payload)

    @classmethod
    def load(cls, path: str) -> "RunRecord":
        with open(path, encoding="utf-8") as fh:
            return cls.loads(fh.read())


def dumps_canonical(payload) -> str:
    """The one serializer every record/checkpoint/artifact JSON goes
    through: sorted keys, indent 2, trailing newline — so identical data
    is identical bytes."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def numeric_leaves(values, prefix: str = "") -> dict[str, float]:
    """Flatten the numeric leaves of a cell payload to ``path → value``.

    Paths join nested dict keys (and list indexes) with ``.``; booleans
    are *not* numbers here — ``True`` drifting to ``False`` should read
    as a value change, not a 100% numeric drift.
    """
    flat: dict[str, float] = {}
    if isinstance(values, dict):
        for key in sorted(values):
            child_prefix = f"{prefix}.{key}" if prefix else str(key)
            flat.update(numeric_leaves(values[key], child_prefix))
    elif isinstance(values, (list, tuple)):
        for index, item in enumerate(values):
            child_prefix = f"{prefix}.{index}" if prefix else str(index)
            flat.update(numeric_leaves(item, child_prefix))
    elif isinstance(values, bool):
        pass
    elif isinstance(values, (int, float)):
        flat[prefix] = float(values)
    return flat
