"""Secondary indexes and the query planner for the XML database.

The paper's central performance caveat is that both stacks are "dominated
by the XML database": every WS-ServiceGroup membership read and every
Grid-in-a-Box lookup is a full-collection XPath scan, so the metadata path
degrades linearly as the VO grows.  That is a missing-index problem, not a
stack problem.

An :class:`XPathIndex` is declared on a collection for one simple,
predicate-free location path (``//giab:Host``, a service-group member
address, a subscription source).  It maps the *string value* of every node
the path selects to the set of document keys containing it, and is
maintained incrementally by the collection on every
insert/update/upsert/delete.

:func:`plan_query` is the planner.  It matches a query expression's
:class:`~repro.xmllib.xpath.PlanShape` against the declared indexes: an
expression of the form ``P[. = 'v']`` or ``B[Q = 'v']`` is covered by an
index on ``P`` (respectively ``B/Q``), because a document holds at least
one hit exactly when it posted the value ``'v'`` under that path.  A
covered query is answered by running the *same* compiled expression over
only the posting-list documents — results are identical to the scan, only
the candidate set (and therefore the charged cost, ``db_query_indexed`` +
per-document over O(hits) instead of ``db_query_base`` + per-document over
O(N)) shrinks.  Anything the shape cannot express falls back to the scan
path untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.xmllib.element import XmlElement
from repro.xmllib.xpath import XPath, XPathError, compile_xpath


class IndexDefinitionError(ValueError):
    """Raised when an index is declared on a path the planner cannot use."""


class XPathIndex:
    """A posting-list index over one location path of a collection.

    The index stores ``value -> {keys}`` plus the reverse ``key -> values``
    map that makes removal (and therefore update) independent of the stored
    document text.
    """

    def __init__(
        self,
        path: str,
        prefixes: dict[str, str] | None = None,
        *,
        name: str | None = None,
    ) -> None:
        self.path = path
        self.prefixes = dict(prefixes or {})
        self.name = name if name is not None else path
        self._compiled = compile_xpath(path, self.prefixes)
        shape = self._compiled.plan_shape()
        if shape is None or shape.literal is not None:
            raise IndexDefinitionError(
                f"index path must be a simple, predicate-free location path: {path!r}"
            )
        #: Structural identity of the indexed path (prefixes resolved), the
        #: key the planner matches query shapes against.
        self.signature = shape.signature
        self._postings: dict[str, set[str]] = {}
        self._values_by_key: dict[str, tuple[str, ...]] = {}

    # -- maintenance (driven by Collection on every write) -----------------

    def extract(self, document: XmlElement) -> tuple[str, ...]:
        """Distinct string values the indexed path selects in ``document``."""
        return tuple(
            sorted({node.string_value() for node in self._compiled.select(document)})
        )

    def add(self, key: str, document: XmlElement) -> None:
        """(Re)index one document; replaces any previous entry for ``key``."""
        self.discard(key)
        values = self.extract(document)
        if not values:
            return
        self._values_by_key[key] = values
        for value in values:
            self._postings.setdefault(value, set()).add(key)

    def discard(self, key: str) -> None:
        """Forget a document's entries (no-op when it posted nothing)."""
        for value in self._values_by_key.pop(key, ()):
            posting = self._postings.get(value)
            if posting is not None:
                posting.discard(key)
                if not posting:
                    del self._postings[value]

    # -- reads -------------------------------------------------------------

    def lookup(self, value: str) -> set[str]:
        """Keys of documents where the indexed path takes ``value``."""
        return set(self._postings.get(value, ()))

    def values(self) -> list[str]:
        """Distinct live values — the covering read (no document access)."""
        return sorted(self._postings)

    def __len__(self) -> int:
        return len(self._postings)


@dataclass(frozen=True)
class QueryPlan:
    """The planner's verdict: answer ``value`` from ``index``'s postings."""

    index: XPathIndex
    value: str


def plan_query(compiled: XPath, indexes: Iterable[XPathIndex]) -> QueryPlan | None:
    """Match a compiled expression against declared indexes.

    Returns a plan only when an index's path signature equals the
    expression's (base path + predicate value path) and the predicate
    compares against a string literal — the one case where the posting list
    is exactly the set of documents with at least one hit.
    """
    shape = compiled.plan_shape()
    if shape is None or shape.literal is None:
        return None
    signature = shape.signature
    for index in indexes:
        if index.signature == signature:
            return QueryPlan(index, shape.literal)
    return None


def find_index(
    path: str, prefixes: dict[str, str] | None, indexes: Iterable[XPathIndex]
) -> XPathIndex | None:
    """The index declared on ``path``, if any (matched structurally, so the
    lookup succeeds whatever prefix names the caller uses)."""
    try:
        shape = compile_xpath(path, prefixes).plan_shape()
    except XPathError:
        return None
    if shape is None or shape.literal is not None:
        return None
    signature = shape.signature
    for index in indexes:
        if index.signature == signature:
            return index
    return None
