"""The write-through resource cache.

The paper attributes WSRF.NET's faster Set to "the more extensive
optimization effort (particularly write-through resource caching)": a Set
avoids the read-before-write the unoptimized WS-Transfer service pays.
This wrapper provides exactly that: reads served from cache are charged the
(cheap) cache-hit cost, writes go to both cache and database.

Eviction is true LRU: a read hit refreshes a document's recency, so under
churn the hottest resources stay resident and the coldest one is evicted.
"""

from __future__ import annotations

from repro.xmldb.collection import Collection, DocumentNotFound
from repro.xmldb.index import XPathIndex
from repro.xmllib.element import XmlElement


class WriteThroughCache:
    """A caching facade over a :class:`~repro.xmldb.collection.Collection`."""

    def __init__(self, collection: Collection, capacity: int = 256) -> None:
        self.collection = collection
        self.capacity = capacity
        # Insertion order doubles as recency order: least-recently-used
        # first.  Every hit and every write moves its key to the end.
        self._cache: dict[str, XmlElement] = {}
        self.hits = 0
        self.misses = 0

    @property
    def name(self) -> str:
        return self.collection.name

    def new_id(self) -> str:
        return self.collection.new_id()

    def insert(self, document: XmlElement, key: str | None = None) -> str:
        key = self.collection.insert(document, key)
        self._put(key, document)
        return key

    def read(self, key: str) -> XmlElement:
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            # Move-to-end: a hit makes this the most recently used entry.
            self._cache[key] = self._cache.pop(key)
            self.collection.network.charge(self.collection.network.costs.cache_hit, "db.cache")
            return cached.copy()
        self.misses += 1
        document = self.collection.read(key)
        self._put(key, document)
        return document

    def update(self, key: str, document: XmlElement) -> None:
        self.collection.update(key, document)
        self._put(key, document)

    def upsert(self, key: str, document: XmlElement) -> None:
        """Write-through upsert: without this, an upsert reaching the raw
        collection would leave a stale copy of ``key`` in the cache."""
        self.collection.upsert(key, document)
        self._put(key, document)

    def delete(self, key: str) -> None:
        self._cache.pop(key, None)
        self.collection.delete(key)

    def contains(self, key: str) -> bool:
        return key in self._cache or self.collection.contains(key)

    def keys(self) -> list[str]:
        return self.collection.keys()

    def documents(self):
        return self.collection.documents()

    def query(self, expression: str, prefixes: dict[str, str] | None = None):
        # Queries bypass the cache: write-through means the DB is never stale.
        return self.collection.query(expression, prefixes)

    def query_keys(self, expression: str, prefixes: dict[str, str] | None = None):
        return self.collection.query_keys(expression, prefixes)

    # -- secondary indexes (maintained by the collection on every write) ----

    def declare_index(
        self,
        path: str,
        prefixes: dict[str, str] | None = None,
        *,
        name: str | None = None,
    ) -> XPathIndex:
        return self.collection.declare_index(path, prefixes, name=name)

    def find_index(
        self, path: str, prefixes: dict[str, str] | None = None
    ) -> XPathIndex | None:
        return self.collection.find_index(path, prefixes)

    def index_values(self, path: str, prefixes: dict[str, str] | None = None) -> list[str]:
        return self.collection.index_values(path, prefixes)

    def _put(self, key: str, document: XmlElement) -> None:
        # Re-inserting an existing key must refresh its recency, so drop it
        # first; then evict the least recently used entry if still full.
        self._cache.pop(key, None)
        if len(self._cache) >= self.capacity:
            self._cache.pop(next(iter(self._cache)))
        self._cache[key] = document.copy()
