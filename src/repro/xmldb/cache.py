"""The write-through resource cache.

The paper attributes WSRF.NET's faster Set to "the more extensive
optimization effort (particularly write-through resource caching)": a Set
avoids the read-before-write the unoptimized WS-Transfer service pays.
This wrapper provides exactly that: reads served from cache are charged the
(cheap) cache-hit cost, writes go to both cache and database.
"""

from __future__ import annotations

from repro.xmldb.collection import Collection, DocumentNotFound
from repro.xmllib.element import XmlElement


class WriteThroughCache:
    """A caching facade over a :class:`~repro.xmldb.collection.Collection`."""

    def __init__(self, collection: Collection, capacity: int = 256) -> None:
        self.collection = collection
        self.capacity = capacity
        self._cache: dict[str, XmlElement] = {}
        self.hits = 0
        self.misses = 0

    @property
    def name(self) -> str:
        return self.collection.name

    def new_id(self) -> str:
        return self.collection.new_id()

    def insert(self, document: XmlElement, key: str | None = None) -> str:
        key = self.collection.insert(document, key)
        self._put(key, document)
        return key

    def read(self, key: str) -> XmlElement:
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            self.collection.network.charge(self.collection.network.costs.cache_hit, "db.cache")
            return cached.copy()
        self.misses += 1
        document = self.collection.read(key)
        self._put(key, document)
        return document

    def update(self, key: str, document: XmlElement) -> None:
        self.collection.update(key, document)
        self._put(key, document)

    def delete(self, key: str) -> None:
        self._cache.pop(key, None)
        self.collection.delete(key)

    def contains(self, key: str) -> bool:
        return key in self._cache or self.collection.contains(key)

    def keys(self) -> list[str]:
        return self.collection.keys()

    def query(self, expression: str, prefixes: dict[str, str] | None = None):
        # Queries bypass the cache: write-through means the DB is never stale.
        return self.collection.query(expression, prefixes)

    def query_keys(self, expression: str, prefixes: dict[str, str] | None = None):
        return self.collection.query_keys(expression, prefixes)

    def _put(self, key: str, document: XmlElement) -> None:
        if len(self._cache) >= self.capacity and key not in self._cache:
            self._cache.pop(next(iter(self._cache)))
        self._cache[key] = document.copy()
