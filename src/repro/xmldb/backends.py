"""Storage backends for the XML database.

The backend interface is deliberately tiny (the paper: "An interface to
allow custom backends to be used (useful for legacy systems) is also
provided").  Documents cross the backend boundary as serialized XML text so
a backend never needs to understand the tree model.
"""

from __future__ import annotations

import os
from typing import Iterator, Protocol, runtime_checkable


@runtime_checkable
class Backend(Protocol):
    """Keyed storage of serialized XML documents."""

    def load(self, key: str) -> str | None:  # pragma: no cover - protocol
        ...

    def store(self, key: str, text: str) -> None:  # pragma: no cover - protocol
        ...

    def remove(self, key: str) -> bool:  # pragma: no cover - protocol
        ...

    def keys(self) -> Iterator[str]:  # pragma: no cover - protocol
        ...


def backend_items(backend: Backend) -> Iterator[tuple[str, str]]:
    """All (key, text) pairs of a backend, in key order.

    Bulk reads (collection scans, index builds) go through here: a backend
    may provide an ``items()`` fast path (one pass for dict-backed stores);
    custom backends implementing only the minimal protocol are walked
    key-by-key.
    """
    items = getattr(backend, "items", None)
    if items is not None:
        yield from sorted(items())
        return
    for key in sorted(backend.keys()):
        text = backend.load(key)
        if text is not None:
            yield key, text


class MemoryBackend:
    """The in-memory document collection backend."""

    def __init__(self) -> None:
        self._docs: dict[str, str] = {}

    def load(self, key: str) -> str | None:
        return self._docs.get(key)

    def store(self, key: str, text: str) -> None:
        self._docs[key] = text

    def remove(self, key: str) -> bool:
        return self._docs.pop(key, None) is not None

    def keys(self) -> Iterator[str]:
        return iter(list(self._docs))

    def items(self) -> Iterator[tuple[str, str]]:
        return iter(list(self._docs.items()))

    def __len__(self) -> int:
        return len(self._docs)


class FileBackend:
    """One file per document under a directory (Xindice's filer, roughly)."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def _path(self, key: str) -> str:
        safe = key.replace("/", "_").replace("..", "_")
        return os.path.join(self.directory, f"{safe}.xml")

    def load(self, key: str) -> str | None:
        path = self._path(key)
        if not os.path.exists(path):
            return None
        with open(path, "r", encoding="utf-8") as handle:
            return handle.read()

    def store(self, key: str, text: str) -> None:
        with open(self._path(key), "w", encoding="utf-8") as handle:
            handle.write(text)

    def remove(self, key: str) -> bool:
        path = self._path(key)
        if not os.path.exists(path):
            return False
        os.remove(path)
        return True

    def keys(self) -> Iterator[str]:
        for entry in sorted(os.listdir(self.directory)):
            if entry.endswith(".xml"):
                yield entry[: -len(".xml")]

    def items(self) -> Iterator[tuple[str, str]]:
        for key in self.keys():
            text = self.load(key)
            if text is not None:
                yield key, text
