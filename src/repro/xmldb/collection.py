"""Collections: the unit of storage and query.

Every operation charges its calibrated virtual cost (reads are cheap,
inserts expensive — "Creating resources (and adding them to the database) in
particular is always slower than reading or updating them") and counts as a
``db_op`` in the metrics.

Collections may carry secondary indexes (:mod:`repro.xmldb.index`):
``declare_index`` builds one over the current contents, every write
maintains it incrementally, and ``query``/``query_keys`` route through the
planner — answering covered equality lookups in O(hits) instead of O(N),
and falling back to the scan path, bit-identically, for everything else.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from repro.sim.network import Network
from repro.xmldb.backends import Backend, MemoryBackend, backend_items
from repro.xmldb.index import XPathIndex, find_index, plan_query
from repro.xmllib import parse_xml, serialize
from repro.xmllib.element import XmlElement
from repro.xmllib.xpath import NodeResult, compile_xpath


class DocumentNotFound(KeyError):
    """Raised when a document id does not exist in the collection."""

    def __init__(self, collection: str, key: str):
        super().__init__(f"{collection}/{key}")
        self.collection = collection
        self.key = key


class Collection:
    """A named set of XML documents keyed by resource id."""

    def __init__(
        self,
        name: str,
        network: Network,
        backend: Backend | None = None,
    ) -> None:
        self.name = name
        self.network = network
        self.backend: Backend = backend if backend is not None else MemoryBackend()
        self.indexes: dict[str, XPathIndex] = {}
        self._guid = itertools.count(1)

    # -- key generation ---------------------------------------------------

    def new_id(self) -> str:
        """Deterministic GUID-style resource ids (paper §3.2: "by default,
        GUID").  Skips ids already present so a collection reopened over a
        persistent backend (file/custom) never re-issues a taken name."""
        while True:
            candidate = f"{self.name}-{next(self._guid):08d}"
            if self.backend.load(candidate) is None:
                return candidate

    # -- CRUD ----------------------------------------------------------------

    def insert(self, document: XmlElement, key: str | None = None) -> str:
        """Store a new document; returns its id.  Inserting over an existing
        id is an error — that is what :meth:`update` is for."""
        key = key if key is not None else self.new_id()
        if self.backend.load(key) is not None:
            raise ValueError(f"document already exists: {self.name}/{key}")
        self._charge(self.network.costs.db_insert)
        self.network.note_mutation(self.name, key, "insert")
        text = serialize(document)
        self.backend.store(key, text)
        self._index_put(key, text)
        return key

    def read(self, key: str) -> XmlElement:
        self._charge(self.network.costs.db_read)
        text = self.backend.load(key)
        if text is None:
            raise DocumentNotFound(self.name, key)
        return parse_xml(text)

    def update(self, key: str, document: XmlElement) -> None:
        self._charge(self.network.costs.db_update)
        if self.backend.load(key) is None:
            raise DocumentNotFound(self.name, key)
        self.network.note_mutation(self.name, key, "update")
        text = serialize(document)
        self.backend.store(key, text)
        self._index_put(key, text)

    def upsert(self, key: str, document: XmlElement) -> None:
        """Store whether or not the key exists (out-of-band resource
        creation support — paper §3.2's second implementation issue)."""
        if self.backend.load(key) is None:
            self._charge(self.network.costs.db_insert)
        else:
            self._charge(self.network.costs.db_update)
        self.network.note_mutation(self.name, key, "upsert")
        text = serialize(document)
        self.backend.store(key, text)
        self._index_put(key, text)

    def delete(self, key: str) -> None:
        self._charge(self.network.costs.db_delete)
        if not self.backend.remove(key):
            raise DocumentNotFound(self.name, key)
        self.network.note_mutation(self.name, key, "delete")
        self._index_discard(key)

    def contains(self, key: str) -> bool:
        return self.backend.load(key) is not None

    def keys(self) -> list[str]:
        return sorted(self.backend.keys())

    def __len__(self) -> int:
        return len(self.keys())

    # -- secondary indexes --------------------------------------------------

    def declare_index(
        self,
        path: str,
        prefixes: dict[str, str] | None = None,
        *,
        name: str | None = None,
    ) -> XPathIndex:
        """Declare (and build) a secondary index on ``path``.

        Redeclaring a structurally identical path returns the existing
        index.  Building charges one scan over the current contents — the
        same shape as the query the index will keep us from repeating.
        """
        index = XPathIndex(path, prefixes, name=name)
        for existing in self.indexes.values():
            if existing.signature == index.signature:
                return existing
        if index.name in self.indexes:
            raise ValueError(f"index name already taken: {index.name!r}")
        contents = list(backend_items(self.backend))
        if contents:
            self._charge(
                self.network.costs.db_query_base
                + self.network.costs.db_query_per_doc * len(contents)
            )
        for key, text in contents:
            index.add(key, parse_xml(text))
        self.indexes[index.name] = index
        return index

    def find_index(
        self, path: str, prefixes: dict[str, str] | None = None
    ) -> XPathIndex | None:
        """The declared index covering ``path``, or None."""
        return find_index(path, prefixes, self.indexes.values())

    def index_values(self, path: str, prefixes: dict[str, str] | None = None) -> list[str]:
        """Distinct values of an indexed path — a covering read answered
        from the index alone, at fixed ``db_query_indexed`` cost."""
        index = self.find_index(path, prefixes)
        if index is None:
            raise KeyError(f"no index on {path!r} in collection {self.name!r}")
        self._charge(self.network.costs.db_query_indexed)
        return index.values()

    def _index_put(self, key: str, text: str) -> None:
        # Index the *stored* text, not the caller's tree: the backend copy
        # is the source of truth, and callers may mutate their document
        # object after the write returns.
        if not self.indexes:
            return
        document = parse_xml(text)
        for index in self.indexes.values():
            index.add(key, document)
        self.network.charge(
            self.network.costs.db_index_maintain * len(self.indexes), "db.index"
        )

    def _index_discard(self, key: str) -> None:
        if not self.indexes:
            return
        for index in self.indexes.values():
            index.discard(key)
        self.network.charge(
            self.network.costs.db_index_maintain * len(self.indexes), "db.index"
        )

    # -- query -----------------------------------------------------------------

    def documents(self) -> Iterator[tuple[str, XmlElement]]:
        for key, text in backend_items(self.backend):
            yield key, parse_xml(text)

    def query(
        self, expression: str, prefixes: dict[str, str] | None = None
    ) -> list[tuple[str, NodeResult]]:
        """Evaluate an XPath; returns (key, hit) pairs.

        When a declared index covers the expression's equality predicate
        the candidate documents come from its posting list (O(hits),
        charged ``db_query_indexed`` + per-document); otherwise every
        document is scanned (O(N), charged ``db_query_base`` +
        per-document).  The same compiled expression runs against the
        candidates either way, so the results are identical — only the
        candidate set shrinks.
        """
        compiled = compile_xpath(expression, prefixes)
        plan = plan_query(compiled, self.indexes.values()) if self.indexes else None
        if plan is not None:
            keys = sorted(plan.index.lookup(plan.value))
            self._charge(
                self.network.costs.db_query_indexed
                + self.network.costs.db_query_per_doc * len(keys)
            )
        else:
            keys = self.keys()
            self._charge(
                self.network.costs.db_query_base
                + self.network.costs.db_query_per_doc * len(keys)
            )
        hits: list[tuple[str, NodeResult]] = []
        for key in keys:
            text = self.backend.load(key)
            if text is None:
                continue
            for node in compiled.select(parse_xml(text)):
                hits.append((key, node))
        return hits

    def query_keys(self, expression: str, prefixes: dict[str, str] | None = None) -> list[str]:
        """Ids of documents with at least one hit for the expression."""
        seen: dict[str, None] = {}
        for key, _ in self.query(expression, prefixes):
            seen.setdefault(key, None)
        return list(seen)

    # -- internals ---------------------------------------------------------------

    def _charge(self, ms: float) -> None:
        self.network.charge(ms, "db")
        self.network.metrics.db_op()
