"""Collections: the unit of storage and query.

Every operation charges its calibrated virtual cost (reads are cheap,
inserts expensive — "Creating resources (and adding them to the database) in
particular is always slower than reading or updating them") and counts as a
``db_op`` in the metrics.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from repro.sim.network import Network
from repro.xmldb.backends import Backend, MemoryBackend
from repro.xmllib import parse_xml, serialize
from repro.xmllib.element import XmlElement
from repro.xmllib.xpath import NodeResult, compile_xpath


class DocumentNotFound(KeyError):
    """Raised when a document id does not exist in the collection."""

    def __init__(self, collection: str, key: str):
        super().__init__(f"{collection}/{key}")
        self.collection = collection
        self.key = key


class Collection:
    """A named set of XML documents keyed by resource id."""

    def __init__(
        self,
        name: str,
        network: Network,
        backend: Backend | None = None,
    ) -> None:
        self.name = name
        self.network = network
        self.backend: Backend = backend if backend is not None else MemoryBackend()
        self._guid = itertools.count(1)

    # -- key generation ---------------------------------------------------

    def new_id(self) -> str:
        """Deterministic GUID-style resource ids (paper §3.2: "by default,
        GUID").  Skips ids already present so a collection reopened over a
        persistent backend (file/custom) never re-issues a taken name."""
        while True:
            candidate = f"{self.name}-{next(self._guid):08d}"
            if self.backend.load(candidate) is None:
                return candidate

    # -- CRUD ----------------------------------------------------------------

    def insert(self, document: XmlElement, key: str | None = None) -> str:
        """Store a new document; returns its id.  Inserting over an existing
        id is an error — that is what :meth:`update` is for."""
        key = key if key is not None else self.new_id()
        if self.backend.load(key) is not None:
            raise ValueError(f"document already exists: {self.name}/{key}")
        self._charge(self.network.costs.db_insert)
        self.backend.store(key, serialize(document))
        return key

    def read(self, key: str) -> XmlElement:
        self._charge(self.network.costs.db_read)
        text = self.backend.load(key)
        if text is None:
            raise DocumentNotFound(self.name, key)
        return parse_xml(text)

    def update(self, key: str, document: XmlElement) -> None:
        self._charge(self.network.costs.db_update)
        if self.backend.load(key) is None:
            raise DocumentNotFound(self.name, key)
        self.backend.store(key, serialize(document))

    def upsert(self, key: str, document: XmlElement) -> None:
        """Store whether or not the key exists (out-of-band resource
        creation support — paper §3.2's second implementation issue)."""
        if self.backend.load(key) is None:
            self._charge(self.network.costs.db_insert)
        else:
            self._charge(self.network.costs.db_update)
        self.backend.store(key, serialize(document))

    def delete(self, key: str) -> None:
        self._charge(self.network.costs.db_delete)
        if not self.backend.remove(key):
            raise DocumentNotFound(self.name, key)

    def contains(self, key: str) -> bool:
        return self.backend.load(key) is not None

    def keys(self) -> list[str]:
        return sorted(self.backend.keys())

    def __len__(self) -> int:
        return len(self.keys())

    # -- query -----------------------------------------------------------------

    def documents(self) -> Iterator[tuple[str, XmlElement]]:
        for key in self.keys():
            text = self.backend.load(key)
            if text is not None:
                yield key, parse_xml(text)

    def query(
        self, expression: str, prefixes: dict[str, str] | None = None
    ) -> list[tuple[str, NodeResult]]:
        """Evaluate an XPath across every document; returns (key, hit) pairs."""
        compiled = compile_xpath(expression, prefixes)
        keys = self.keys()
        self._charge(
            self.network.costs.db_query_base
            + self.network.costs.db_query_per_doc * len(keys)
        )
        hits: list[tuple[str, NodeResult]] = []
        for key in keys:
            text = self.backend.load(key)
            if text is None:
                continue
            for node in compiled.select(parse_xml(text)):
                hits.append((key, node))
        return hits

    def query_keys(self, expression: str, prefixes: dict[str, str] | None = None) -> list[str]:
        """Ids of documents with at least one hit for the expression."""
        seen: list[str] = []
        for key, _ in self.query(expression, prefixes):
            if key not in seen:
                seen.append(key)
        return seen

    # -- internals ---------------------------------------------------------------

    def _charge(self, ms: float) -> None:
        self.network.charge(ms, "db")
        self.network.metrics.db_op()
