"""Xindice-like XML document database.

Both of the paper's implementations persist resources in the same XML
database (Apache Xindice), and "both counter implementations' performance is
dominated by Xindice".  This package provides that substrate: named
collections of XML documents keyed by id, XPath queries, pluggable backends
(in-memory, file, custom — WSRF.NET's "interface to allow custom backends"),
and the write-through resource cache behind WSRF.NET's faster Set.
"""

from repro.xmldb.backends import Backend, FileBackend, MemoryBackend, backend_items
from repro.xmldb.collection import Collection, DocumentNotFound
from repro.xmldb.database import XmlDatabase
from repro.xmldb.cache import WriteThroughCache
from repro.xmldb.index import IndexDefinitionError, QueryPlan, XPathIndex, plan_query

__all__ = [
    "Backend",
    "FileBackend",
    "MemoryBackend",
    "backend_items",
    "Collection",
    "DocumentNotFound",
    "XmlDatabase",
    "WriteThroughCache",
    "IndexDefinitionError",
    "QueryPlan",
    "XPathIndex",
    "plan_query",
]
