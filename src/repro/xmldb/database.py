"""The database: a namespace of collections."""

from __future__ import annotations

from typing import Callable

from repro.sim.network import Network
from repro.xmldb.backends import Backend, MemoryBackend
from repro.xmldb.collection import Collection


class XmlDatabase:
    """Named collections sharing one cost/metrics context.

    ``backend_factory`` lets a deployment choose storage per collection
    (memory by default; a file backend for durability tests; or any custom
    :class:`~repro.xmldb.backends.Backend`).
    """

    def __init__(
        self,
        network: Network,
        backend_factory: Callable[[str], Backend] | None = None,
    ) -> None:
        self.network = network
        self._backend_factory = backend_factory or (lambda _name: MemoryBackend())
        self._collections: dict[str, Collection] = {}

    def collection(self, name: str) -> Collection:
        """Get or create a collection."""
        existing = self._collections.get(name)
        if existing is None:
            existing = Collection(name, self.network, self._backend_factory(name))
            self._collections[name] = existing
        return existing

    def drop(self, name: str) -> None:
        """Drop a collection, deleting every document *through* it.

        Routing each removal through :meth:`Collection.delete` keeps the
        paper's "deletes are charged" discipline: dropping N documents
        costs N × ``db_delete`` and records N ``db_op``s, instead of
        silently wiping the backend for free.
        """
        collection = self._collections.pop(name, None)
        if collection is None:
            raise KeyError(f"no such collection: {name}")
        for key in collection.keys():
            collection.delete(key)

    def names(self) -> list[str]:
        return sorted(self._collections)
