"""repro — Alternative Software Stacks for OGSA-based Grids (SC'05), rebuilt.

A complete Python reproduction of Humphrey et al.'s comparison of the
WSRF/WS-Notification and WS-Transfer/WS-Eventing software stacks: both
stacks implemented from scratch, the substrates they stand on (XML infoset
+ c14n + XPath, pure-Python WS-Security, an Xindice-like XML database, a
calibrated virtual-time network), the paper's two evaluation applications
(the counter "hello world" and Grid-in-a-Box), and a benchmark harness that
regenerates every figure.  Start with README.md; ``python -m repro``
regenerates the figures at the terminal.

Subpackage map (details in DESIGN.md):

================  ===========================================================
``repro.xmllib``     XML infoset, canonicalization, XPath-lite, schemas
``repro.crypto``     RSA / X.509-style certs / XML-DSig
``repro.sim``        virtual clock, cost model, simulated network, metrics
``repro.soap``       envelopes, faults, wire messages
``repro.addressing`` WS-Addressing EPRs + headers
``repro.xmldb``      the Xindice-like XML database
``repro.container``  the paper's Figure 1 resource-aware container
``repro.wsrf``       Stack A: WSRF port types + WSRF.NET programming model
``repro.wsn``        Stack A: WS-Notification (+ topics, broker)
``repro.transfer``   Stack B: WS-Transfer (+ an independent second impl)
``repro.eventing``   Stack B: WS-Eventing
``repro.metadata``   WS-MetadataExchange (extension)
``repro.wsdl``       WSDL generation / inspection / proxy generation
``repro.bridge``     stack-switching facades (extension)
``repro.apps``       the counter and Grid-in-a-Box applications
``repro.bench``      figure generators, workload generator, reporting
================  ===========================================================
"""

__version__ = "1.0.0"
