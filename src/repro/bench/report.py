"""Rendering figure data as tables, CSV and ASCII bar charts."""

from __future__ import annotations

import os
import re


def slugify(title: str) -> str:
    """A filesystem-safe slug for figure titles and cell ids.

    Lowercases and collapses every non-alphanumeric run to a single
    underscore, so ``Figure 2: Hello World, no security`` becomes
    ``figure_2_hello_world_no_security`` — no commas, parens or section
    marks in generated filenames.
    """
    return re.sub(r"[^a-z0-9]+", "_", title.lower()).strip("_")


def write_figure_csv(results_dir: str, title: str, figure: dict[str, dict[str, float]]) -> str:
    """Write one figure's CSV under ``results_dir``; returns the path.

    The single writer both the benchmark conftest and the experiment
    engine go through, so the bytes cannot disagree.
    """
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, f"{slugify(title)}.csv")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(figure_to_csv(figure))
    return path


def format_figure_table(
    title: str, figure: dict[str, dict[str, float]], unit: str = "ms"
) -> str:
    """Render series → {op → value} as an aligned text table."""
    ops: list[str] = []
    for series in figure.values():
        for op in series:
            if op not in ops:
                ops.append(op)
    label_width = max(len(label) for label in figure) if figure else 10
    col_width = max(12, max((len(op) for op in ops), default=8) + 2)
    lines = [title, "=" * len(title)]
    header = " " * label_width + "".join(op.rjust(col_width) for op in ops)
    lines.append(header)
    for label, series in figure.items():
        row = label.ljust(label_width)
        for op in ops:
            value = series.get(op)
            cell = "-" if value is None else f"{value:.1f}"
            row += cell.rjust(col_width)
        lines.append(row)
    lines.append(f"(all values in virtual {unit}, single request)")
    return "\n".join(lines)


def figure_to_csv(figure: dict[str, dict[str, float]]) -> str:
    ops: list[str] = []
    for series in figure.values():
        for op in series:
            if op not in ops:
                ops.append(op)
    lines = ["series," + ",".join(ops)]
    for label, series in figure.items():
        cells = [label] + [
            "" if series.get(op) is None else f"{series[op]:.3f}" for op in ops
        ]
        lines.append(",".join(cells))
    return "\n".join(lines) + "\n"


def figure_to_markdown(
    figure: dict[str, dict[str, float]], row_header: str = "series"
) -> str:
    """Render a figure as a GitHub-flavored markdown table (for the
    generated EXPERIMENTS.md)."""
    ops: list[str] = []
    for series in figure.values():
        for op in series:
            if op not in ops:
                ops.append(op)
    lines = [
        "| " + " | ".join([row_header] + ops) + " |",
        "|" + "---|" * (len(ops) + 1),
    ]
    for label, series in figure.items():
        cells = [label]
        for op in ops:
            value = series.get(op)
            if value is None:
                cells.append("-")
            else:
                cells.append(f"{value:.3f}".rstrip("0").rstrip(".") or "0")
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def format_span_tree(root, unit: str = "ms") -> str:
    """Render one :class:`~repro.sim.metrics.Span` tree as an outline."""
    lines = []
    for depth, span in root.walk():
        label = f"{'  ' * depth}{span.name}"
        detail = f"  [{span.detail}]" if span.detail else ""
        lines.append(f"{label.ljust(32)} {span.elapsed_ms:8.2f} {unit}{detail}")
    return "\n".join(lines)


def spans_to_csv(roots: dict[str, "object"]) -> str:
    """Flatten labelled span trees to CSV rows (one row per span)."""
    lines = ["series,depth,span,started_at,ended_at,elapsed_ms,detail"]
    for label, root in roots.items():
        for depth, span in root.walk():
            lines.append(
                f"{label},{depth},{span.name},{span.started_at:.3f},"
                f"{span.ended_at:.3f},{span.elapsed_ms:.3f},{span.detail}"
            )
    return "\n".join(lines) + "\n"


def format_bar_chart(
    title: str, values: dict[str, float], width: int = 50, unit: str = "ms"
) -> str:
    """Horizontal ASCII bars, one per label."""
    peak = max(values.values(), default=1.0) or 1.0
    label_width = max((len(k) for k in values), default=4)
    lines = [title]
    for label, value in values.items():
        bar = "#" * max(0, round(width * value / peak))
        lines.append(f"{label.ljust(label_width)} |{bar} {value:.1f} {unit}")
    return "\n".join(lines)
