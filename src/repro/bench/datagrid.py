"""The datagrid replica-staging sweep (extension; no figure in the paper).

Runs a fixed replica-management workload — seed registrations, two
replications, two stage-ins, then the catalog queries — through the
*declared* ReplicaCatalog/DataTransfer services on both stacks across the
paper's six security×placement cells.  Three invariants make this the
layered framework's benchmark-shaped proof:

* the chosen source hosts (the nearest-replica decision) are identical in
  every cell on both stacks — the logic layer is shared, so they must be;
* the charged ``link`` time is identical everywhere — link costs are a
  pure function of host names, untouched by security or placement;
* only the *wire* cost differs per stack/cell, exactly like the paper's
  counter and GiaB measurements.

Everything derives from the virtual clock, so
``results/BENCH_datagrid.json`` is byte-reproducible and
``scripts/check.sh`` diffs a fresh regeneration against the committed
file.  Run via ``python -m repro datagrid`` (``--smoke`` is the CI
determinism gate) or the pytest module ``benchmarks/bench_datagrid.py``.
"""

from __future__ import annotations

import argparse
import json

from repro.apps.datagrid import DatagridScenario, build_datagrid
from repro.bench.report import format_figure_table

STACKS = ("wsrf", "transfer")

#: The staging workload's expected source decisions, shared by every cell
#: (documented here because they *are* the benchmark's correctness claim).
EXPECTED_SOURCES = {
    "replicate lfn:events to se2.cern": "se1.cern",   # LAN beats WAN
    "replicate lfn:calib to se1.fnal": "se1.cern",    # only source
    "stage-in lfn:events to se2.fnal": "se1.fnal",    # same-site replica
    "stage-in lfn:calib to se1.cern": "se1.cern",     # already local: free
}


def run_staging(stack: str, scenario: DatagridScenario) -> dict:
    """One cell: the fixed workload on a fresh rig; returns the row dict."""
    rig = build_datagrid(stack, scenario)
    clock = rig.deployment.network.clock
    metrics = rig.deployment.network.metrics
    started = clock.now

    rig.catalog.register_replica("lfn:calib", "se1.cern")
    rig.catalog.register_replica("lfn:events", "se1.cern")
    rig.catalog.register_replica("lfn:events", "se1.fnal")

    sources = {
        "replicate lfn:events to se2.cern":
            rig.transfer.replicate("lfn:events", "se2.cern"),
        "replicate lfn:calib to se1.fnal":
            rig.transfer.replicate("lfn:calib", "se1.fnal"),
        "stage-in lfn:events to se2.fnal":
            rig.transfer.stage_in("lfn:events", "se2.fnal"),
        "stage-in lfn:calib to se1.cern":
            rig.transfer.stage_in("lfn:calib", "se1.cern"),
    }

    events_at = rig.catalog.locate_replicas("lfn:events")
    cern_files = rig.catalog.files_on("se1.cern")

    return {
        "virtual_ms": round(clock.now - started, 6),
        "link_ms": metrics.time_by_category["link"],
        "messages": metrics.total_messages,
        "sources": sources,
        "events_replicas": events_at,
        "se1.cern_files": cern_files,
    }


def sweep() -> dict:
    """Both stacks across all six cells; the BENCH_datagrid.json payload."""
    cells: dict[str, dict] = {}
    for scenario in DatagridScenario.all_six():
        cells[scenario.label] = {
            stack: run_staging(stack, scenario) for stack in STACKS
        }
    return {
        "config": {
            "workload": "replica staging",
            "registrations": 3,
            "replications": 2,
            "stage_ins": 2,
            "expected_sources": EXPECTED_SOURCES,
        },
        "cells": cells,
    }


def format_sweep(report: dict) -> str:
    table = {
        f"{cell}/{stack}": {
            "virtual ms": row["virtual_ms"],
            "link ms": row["link_ms"],
            "messages": float(row["messages"]),
        }
        for cell, stacks in report["cells"].items()
        for stack, row in stacks.items()
    }
    return format_figure_table("Datagrid replica staging (per cell/stack)", table)


def smoke() -> int:
    """CI gate: one cell twice per stack — deterministic, and the shared
    logic layer must make both stacks pick identical sources."""
    scenario = DatagridScenario()
    failures = 0
    rows = {}
    for stack in STACKS:
        first = run_staging(stack, scenario)
        second = run_staging(stack, scenario)
        if first != second:
            print(f"FAIL: {stack} staging run is not deterministic")
            failures += 1
        if first["sources"] != EXPECTED_SOURCES:
            print(f"FAIL: {stack} source choices {first['sources']}")
            failures += 1
        rows[stack] = first
    observable = {
        stack: (row["sources"], row["events_replicas"], row["se1.cern_files"])
        for stack, row in rows.items()
    }
    if observable["wsrf"] != observable["transfer"]:
        print("FAIL: stacks disagree on observable staging outcomes")
        failures += 1
    if not failures:
        print(
            "datagrid smoke: 4 runs, identical sources on both stacks, "
            f"wsrf {rows['wsrf']['virtual_ms']:.1f} ms / "
            f"transfer {rows['transfer']['virtual_ms']:.1f} ms virtual"
        )
    return 1 if failures else 0


def datagrid_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro datagrid",
        description="Replica-staging sweep over the declared datagrid services",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="fixed-workload determinism check (CI gate)")
    parser.add_argument("--json", metavar="PATH",
                        help="also write the sweep report as JSON")
    args = parser.parse_args(argv)

    if args.smoke:
        return smoke()

    report = sweep()
    print(format_sweep(report))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0
