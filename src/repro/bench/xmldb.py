"""XML database scaling: indexed queries vs full-collection scans.

The paper observes that "both counter implementations' performance is
dominated by Xindice"; the scan path of :meth:`Collection.query` makes that
concrete — its cost is ``db_query_base + db_query_per_doc × N``.  This
bench sweeps the registry size and contrasts three query shapes:

* a host lookup against the scan path (linear in N);
* the same lookup through a declared secondary index (O(hits));
* an expression no index can cover (``contains``), run against the indexed
  collection — it must reproduce the scan curve bit-identically, because
  the planner falls back to the scan path.
"""

from __future__ import annotations

from repro.apps.giab.common import host_info
from repro.sim import CostModel, Network
from repro.xmldb.collection import Collection
from repro.xmllib import ns

#: Registry sizes swept (registered hosts / documents in the collection).
SIZES = (10, 100, 1000, 5000)

PREFIXES = {"g": ns.GIAB}
HOST_INDEX_PATH = "//g:Host"
APPLICATION_INDEX_PATH = "//g:Application"

#: The applications round-robined over the corpus; queries for one of them
#: match 1/len(APPLICATIONS) of the documents.
APPLICATIONS = ("blast", "sort", "render", "align")


def build_corpus(n: int, *, indexed: bool) -> Collection:
    """A registry of ``n`` HostInfo documents on a fresh Network.

    ``indexed`` declares the host and application indexes *before* the
    inserts, so the build cost is pure incremental maintenance.
    """
    network = Network(CostModel())
    collection = Collection("hosts", network)
    if indexed:
        collection.declare_index(HOST_INDEX_PATH, PREFIXES)
        collection.declare_index(APPLICATION_INDEX_PATH, PREFIXES)
    for i in range(n):
        name = f"node{i:05d}"
        collection.insert(
            host_info(
                name,
                f"soap://{name}/Node/Exec",
                f"soap://{name}/Node/Data",
                [APPLICATIONS[i % len(APPLICATIONS)]],
            ),
            key=name,
        )
    return collection


def query_cost(collection: Collection, expression: str) -> tuple[float, int]:
    """(virtual ms, matching keys) for one ``query_keys`` call."""
    network = collection.network
    start = network.clock.now
    keys = collection.query_keys(expression, PREFIXES)
    return network.clock.now - start, len(keys)


def host_lookup(n: int) -> str:
    """A selectivity-one equality lookup present in every corpus size."""
    return f"{HOST_INDEX_PATH}[. = 'node{n // 2:05d}']"


UNINDEXABLE = "//g:Host[contains(., 'node00001')]"


def scan_cost_model(n: int, costs: CostModel | None = None) -> float:
    """What the scan path must charge for a query over ``n`` documents."""
    costs = costs if costs is not None else CostModel()
    return costs.db_query_base + costs.db_query_per_doc * n


def xmldb_scaling_figure(sizes: tuple[int, ...] = SIZES) -> dict[str, dict[str, float]]:
    """Series → {N → virtual ms} for the three query shapes."""
    scan: dict[str, float] = {}
    indexed: dict[str, float] = {}
    fallback: dict[str, float] = {}
    speedup: dict[str, float] = {}
    for n in sizes:
        plain = build_corpus(n, indexed=False)
        fast = build_corpus(n, indexed=True)
        scan[str(n)], scan_hits = query_cost(plain, host_lookup(n))
        indexed[str(n)], indexed_hits = query_cost(fast, host_lookup(n))
        assert scan_hits == indexed_hits == 1
        fallback[str(n)], _ = query_cost(fast, UNINDEXABLE)
        speedup[str(n)] = scan[str(n)] / indexed[str(n)]
    return {
        "scan host lookup": scan,
        "indexed host lookup": indexed,
        "unindexable (falls back to scan)": fallback,
        "scan / indexed speedup ×": speedup,
    }
