"""MSG-BROKER substrate — §3.1's demand-based publishing scenario.

Builds the six-service brokered-notification rig (publisher + its
subscription manager, broker + its manager + registration manager, and a
consumer sink) and drives the two measured interactions: a plain
point-to-point Subscribe and the full demand-based publisher scenario
(register → subscribe → emit → destroy).  The MSG-BROKER bench and the
``brokered_messages`` experiment spec both measure through here.
"""

from __future__ import annotations

from repro.addressing import EndpointReference
from repro.container import (
    Deployment,
    MessageContext,
    SecurityMode,
    SecurityPolicy,
    SoapClient,
    web_method,
)
from repro.crypto import CertificateAuthority
from repro.sim import CostModel
from repro.wsn import (
    NotificationBrokerService,
    NotificationConsumer,
    SubscriptionManagerService,
)
from repro.wsn.base import NotificationProducerMixin, actions as wsnt_actions
from repro.wsn.broker import PublisherRegistrationManagerService, actions as wsbr_actions
from repro.wsn.topics import TopicDialect
from repro.wsrf import ResourceHome, WsResourceService
from repro.wsrf.lifetime import actions as rl_actions
from repro.xmllib import element, ns, text_of

SENSOR_NS = "urn:test:sensor"
EMIT = f"{SENSOR_NS}/Emit"


class SensorService(NotificationProducerMixin, WsResourceService):
    """Emits a reading on a topic when poked (service-level producer)."""

    service_name = "Sensor"
    resource_ns = SENSOR_NS

    @web_method(EMIT)
    def emit(self, context: MessageContext):
        topic = text_of(context.body.find_local("Topic"), "readings")
        value = text_of(context.body.find_local("Value"), "0")
        delivered = self.notify(topic, element(f"{{{SENSOR_NS}}}Reading", value))
        return element(f"{{{SENSOR_NS}}}EmitResponse", str(delivered))


def _container(deployment: Deployment, host: str, name: str):
    creds = deployment.issue_credentials(
        f"container-{host}-{name}", seed=hash((host, name)) % 10_000 + 100
    )
    return deployment.add_container(host, name, creds)


def build_brokered_rig():
    """The §3.1 deployment: publisher host, broker host, one client."""
    ca = CertificateAuthority.create(seed=7)
    deployment = Deployment(SecurityPolicy(SecurityMode.NONE), CostModel(), ca)
    pub_container = _container(deployment, "pubhost", "Pub")
    pub_manager = SubscriptionManagerService(ResourceHome("pub-subs", deployment.network))
    pub_container.add_service(pub_manager)
    publisher = SensorService(ResourceHome("pub-sensor", deployment.network))
    publisher.subscription_manager = pub_manager
    pub_container.add_service(publisher)

    broker_container = _container(deployment, "brokerhost", "Broker")
    broker_manager = SubscriptionManagerService(ResourceHome("broker-subs", deployment.network))
    broker_container.add_service(broker_manager)
    registrations = PublisherRegistrationManagerService(
        ResourceHome("registrations", deployment.network)
    )
    broker_container.add_service(registrations)
    broker = NotificationBrokerService(
        ResourceHome("broker", deployment.network), broker_manager, registrations
    )
    broker_container.add_service(broker)

    client = SoapClient(deployment, "client", deployment.issue_credentials("alice", seed=77))
    consumer = NotificationConsumer(deployment, "client")
    return deployment, publisher, broker, client, consumer


def run_demand_scenario(deployment, publisher, broker, client, consumer):
    """Register a demand-based publisher, subscribe, publish, unsubscribe."""
    register = element(
        f"{{{ns.WSBR}}}RegisterPublisher",
        EndpointReference.create(publisher.address).to_xml(f"{{{ns.WSBR}}}PublisherReference"),
        element(f"{{{ns.WSBR}}}Topic", "readings"),
        element(f"{{{ns.WSBR}}}Demand", "true"),
    )
    client.invoke(broker.epr(), wsbr_actions.REGISTER_PUBLISHER, register)
    subscribe = element(
        f"{{{ns.WSNT}}}Subscribe",
        consumer.epr.to_xml(f"{{{ns.WSNT}}}ConsumerReference"),
        element(f"{{{ns.WSNT}}}TopicExpression", "readings",
                attrs={"Dialect": TopicDialect.CONCRETE.value}),
    )
    response = client.invoke(broker.epr(), wsnt_actions.SUBSCRIBE, subscribe)
    subscription = EndpointReference.from_xml(next(response.element_children()))
    client.invoke(
        publisher.epr(), EMIT,
        element(f"{{{SENSOR_NS}}}Emit",
                element(f"{{{SENSOR_NS}}}Topic", "readings"),
                element(f"{{{SENSOR_NS}}}Value", "1")),
    )
    client.invoke(subscription, rl_actions.DESTROY, element(f"{{{ns.WSRF_RL}}}Destroy"))


def run_plain_subscribe(deployment, publisher, client, consumer):
    body = element(
        f"{{{ns.WSNT}}}Subscribe",
        consumer.epr.to_xml(f"{{{ns.WSNT}}}ConsumerReference"),
        element(f"{{{ns.WSNT}}}TopicExpression", "readings",
                attrs={"Dialect": TopicDialect.CONCRETE.value}),
    )
    client.invoke(publisher.epr(), wsnt_actions.SUBSCRIBE, body)


def measure_brokered() -> dict[str, dict[str, float]]:
    """Both measured interactions on one shared deployment.

    The plain Subscribe runs first and the demand scenario second on the
    *same* rig — the demand numbers reflect warm connection caches, the
    regime every other bench measures in.
    """
    from repro.bench.runner import measure_virtual

    deployment, publisher, broker, client, consumer = build_brokered_rig()
    plain = measure_virtual(
        deployment, "plain subscribe",
        lambda: run_plain_subscribe(deployment, publisher, client, consumer),
    )
    demand = measure_virtual(
        deployment, "demand scenario",
        lambda: run_demand_scenario(deployment, publisher, broker, client, consumer),
    )
    return {
        "plain": {
            "messages": float(plain.messages),
            "services": float(len(plain.services_touched)),
            "virtual_ms": plain.elapsed_ms,
        },
        "demand": {
            "messages": float(demand.messages),
            "services": float(len(demand.services_touched)),
            "virtual_ms": demand.elapsed_ms,
        },
    }
