"""Synthetic Grid workload generation and execution.

The paper measures single operations; a real VO sees streams of users
submitting jobs.  :class:`GridWorkload` generates a deterministic job mix
(seeded RNG: applications, input sizes, run times), and the runners execute
the same workload end-to-end on either stack, producing totals a bench can
compare — the workload-level view of Figure 6's per-operation story.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.apps.giab.jobs import JobSpec
from repro.apps.giab.vo import TransferVo, WsrfVo, build_transfer_vo, build_wsrf_vo
from repro.container.security import SecurityMode
from repro.sim.costs import CostModel


@dataclass(frozen=True)
class WorkItem:
    """One user job: which application, how much input, how long it runs."""

    application: str
    input_kb: int
    run_time_ms: float
    produces_output: bool


@dataclass
class GridWorkload:
    """A deterministic stream of work items."""

    seed: int = 42
    n_jobs: int = 10
    applications: tuple[str, ...] = ("sort", "blast", "render")
    items: list[WorkItem] = field(default_factory=list)

    def __post_init__(self) -> None:
        rng = random.Random(self.seed)
        for _ in range(self.n_jobs):
            self.items.append(
                WorkItem(
                    application=rng.choice(self.applications),
                    input_kb=rng.choice((4, 16, 64)),
                    run_time_ms=float(rng.randint(50, 400)),
                    produces_output=rng.random() < 0.5,
                )
            )


@dataclass
class WorkloadResult:
    """Outcome of running a workload on one stack."""

    completed: int = 0
    skipped_no_resource: int = 0
    virtual_ms: float = 0.0
    messages: int = 0
    signatures: int = 0

    @property
    def ms_per_job(self) -> float:
        return self.virtual_ms / self.completed if self.completed else float("inf")


def run_workload_wsrf(
    workload: GridWorkload,
    mode: SecurityMode = SecurityMode.X509,
    costs: CostModel | None = None,
) -> WorkloadResult:
    """Execute every work item on the WSRF VO, sequentially (one user)."""
    vo = build_wsrf_vo(mode=mode, costs=costs)
    return _run(workload, vo, _submit_wsrf)


def run_workload_transfer(
    workload: GridWorkload,
    mode: SecurityMode = SecurityMode.X509,
    costs: CostModel | None = None,
) -> WorkloadResult:
    vo = build_transfer_vo(mode=mode, costs=costs)
    return _run(workload, vo, _submit_transfer)


def _run(workload: GridWorkload, vo, submit) -> WorkloadResult:
    network = vo.deployment.network
    result = WorkloadResult()
    start = network.clock.now
    messages0 = network.metrics.total_messages
    for item in workload.items:
        if submit(vo, item):
            result.completed += 1
        else:
            result.skipped_no_resource += 1
    result.virtual_ms = network.clock.now - start
    result.messages = network.metrics.total_messages - messages0
    return result


def _spec(item: WorkItem) -> JobSpec:
    return JobSpec(
        item.application,
        ("input.dat",),
        item.run_time_ms,
        0,
        ("output.dat",) if item.produces_output else (),
    )


def _submit_wsrf(vo: WsrfVo, item: WorkItem) -> bool:
    sites = vo.client.get_available_resources(item.application)
    if not sites:
        return False
    site = sites[0]
    reservation = vo.client.make_reservation(site["host"])
    directory = vo.client.create_data_directory(site["data_address"])
    vo.client.upload_file(directory, "input.dat", "x" * (item.input_kb * 1024))
    vo.client.start_job(site["exec_address"], reservation, directory, _spec(item))
    # Let the job finish; the reservation auto-releases on exit.
    vo.deployment.network.clock.charge(item.run_time_ms + 10)
    vo.client.destroy(directory)
    return True


def _submit_transfer(vo: TransferVo, item: WorkItem) -> bool:
    sites = vo.client.get_available_resources(item.application)
    if not sites:
        return False
    site = sites[0]
    vo.client.make_reservation(site["host"])
    vo.client.upload_file(site["data_address"], "input.dat", "x" * (item.input_kb * 1024))
    vo.client.start_job(site["exec_address"], _spec(item))
    vo.deployment.network.clock.charge(item.run_time_ms + 10)
    vo.client.delete_file(site["data_address"], "input.dat")
    if item.produces_output:
        vo.client.delete_file(site["data_address"], "output.dat")
    # Manual lifetime management: forget this and the site stays blocked.
    vo.client.unreserve(site["host"])
    return True
