"""RELIAB — reliability sweep substrate (extension, DESIGN §9).

The paper measured both stacks on a perfect LAN; this runner makes the
wire lossy (:class:`~repro.sim.faults.FaultSpec`) and drives each stack's
counter-notification and Grid-in-a-Box job paths through the WS-RM layer
(:mod:`repro.reliable`), producing per-cell totals the RELIAB bench
tables and asserts: delivered / retransmitted / duplicate-suppressed /
dead-lettered counts and the latency overhead reliability costs.

The accounting invariant every cell must satisfy is
:attr:`ReliabilityResult.ledger_closed`: every assigned message number
ends delivered or dead-lettered — nothing is silently lost.  Cells are
deterministic: same stack + loss rate ⇒ identical
:attr:`ReliabilityResult.fingerprint` (seeded RNG, fixed draw count,
fixed-width ids; see DESIGN §9).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.counter.deploy import (
    CounterScenario,
    build_transfer_rig,
    build_wsrf_rig,
)
from repro.apps.giab.jobs import JobSpec
from repro.apps.giab.vo import build_transfer_vo, build_wsrf_vo
from repro.container.security import SecurityMode
from repro.reliable import RetryExhausted, RetryPolicy
from repro.sim.faults import FaultSpec
from repro.soap import SoapFault

#: The sweep the RELIAB bench runs on both stacks.
LOSS_RATES = (0.0, 0.01, 0.05, 0.10)

#: One extra attempt over the default: at 10% loss the four-attempt
#: default still dead-letters the odd message, which is exactly what the
#: dead-letter columns are there to show — but the job flows should
#: mostly survive, so the bench policy retries a little harder.
BENCH_POLICY = RetryPolicy(max_attempts=5, base_backoff_ms=20.0, jitter_ms=4.0)


@dataclass(frozen=True)
class ReliabilityResult:
    """Totals for one (stack, loss-rate) sweep cell."""

    stack: str
    loss_rate: float
    operations: int
    completed: int
    virtual_ms: float
    #: Notification path (ReliableNotifier + consumer-side deduper).
    notifications_delivered: int
    notification_retransmissions: int
    notifications_dead_lettered: int
    notifications_assigned: int
    duplicates_suppressed: int
    #: Request path (the user proxy's ReliableChannel).
    requests_delivered: int
    request_retransmissions: int
    #: Whole-deployment dead-letter log (requests + notifications).
    dead_letters_total: int
    #: What the fault injector actually did.
    messages_lost: int
    messages_duplicated: int
    connections_reset: int

    @property
    def ledger_closed(self) -> bool:
        """Every assigned notification ended delivered or dead-lettered."""
        return (
            self.notifications_delivered + self.notifications_dead_lettered
            == self.notifications_assigned
        )

    @property
    def fingerprint(self) -> tuple:
        """Everything a same-seed rerun must reproduce exactly."""
        return (
            self.virtual_ms,
            self.completed,
            self.notifications_delivered,
            self.notification_retransmissions,
            self.notifications_dead_lettered,
            self.duplicates_suppressed,
            self.requests_delivered,
            self.request_retransmissions,
            self.dead_letters_total,
            self.messages_lost,
            self.messages_duplicated,
            self.connections_reset,
        )


def _collect(
    stack: str,
    loss_rate: float,
    deployment,
    notifiers,
    consumer,
    channel,
    operations: int,
    completed: int,
    virtual_ms: float,
) -> ReliabilityResult:
    faults = deployment.network.faults
    return ReliabilityResult(
        stack=stack,
        loss_rate=loss_rate,
        operations=operations,
        completed=completed,
        virtual_ms=virtual_ms,
        notifications_delivered=sum(n.delivered for n in notifiers),
        notification_retransmissions=sum(n.retransmissions for n in notifiers),
        notifications_dead_lettered=sum(n.dead_lettered for n in notifiers),
        notifications_assigned=sum(n.assigned for n in notifiers),
        duplicates_suppressed=consumer.duplicates,
        requests_delivered=channel.delivered,
        request_retransmissions=channel.retransmissions,
        dead_letters_total=len(deployment.dead_letters),
        messages_lost=faults.messages_lost,
        messages_duplicated=faults.messages_duplicated,
        connections_reset=faults.connections_reset,
    )


# -- counter notifications ---------------------------------------------------


def run_counter_reliability(
    stack: str,
    loss_rate: float,
    n_sets: int = 20,
    policy: RetryPolicy = BENCH_POLICY,
) -> ReliabilityResult:
    """``n_sets`` counter Sets (each firing a notification) over a wire
    with ``FaultSpec.lossy(loss_rate)`` faults.  Setup (create/subscribe)
    runs on a clean wire so every cell measures the same work."""
    scenario = CounterScenario(
        mode=SecurityMode.NONE, colocated=False, reliability=policy
    )
    if stack == "wsrf":
        rig = build_wsrf_rig(scenario)
        notifier = rig.service.reliable_deliverer
    elif stack == "transfer":
        rig = build_transfer_rig(scenario)
        notifier = rig.service.notifications.deliverer
    else:
        raise ValueError(f"unknown stack {stack!r}")

    clock = rig.deployment.network.clock
    counter = rig.client.create(initial=0)
    rig.client.subscribe(counter, rig.consumer)
    rig.deployment.network.faults.set_default(FaultSpec.lossy(loss_rate))

    completed = 0
    start = clock.now
    for value in range(n_sets):
        try:
            rig.client.set(counter, value)
        except (RetryExhausted, SoapFault):
            continue  # dead-lettered (and recorded); the sweep goes on
        completed += 1
    return _collect(
        stack,
        loss_rate,
        rig.deployment,
        [notifier],
        rig.consumer,
        rig.client.soap,
        operations=n_sets,
        completed=completed,
        virtual_ms=clock.now - start,
    )


# -- Grid-in-a-Box jobs ------------------------------------------------------

_JOB = JobSpec("sort", ("input.dat",), 500.0)


def _run_job_wsrf(vo) -> bool:
    sites = vo.client.get_available_resources(_JOB.command)
    if not sites:
        return False
    site = sites[0]
    reservation = vo.client.make_reservation(site["host"])
    directory = vo.client.create_data_directory(site["data_address"])
    vo.client.upload_file(directory, "input.dat", "x" * 2048)
    job = vo.client.start_job(site["exec_address"], reservation, directory, _JOB)
    vo.client.subscribe_job_exit(job, vo.consumer)
    # Job run time passes; the exit notification fires from the timer.
    vo.deployment.network.clock.charge(_JOB.run_time_ms + 500)  # repro-lint: disable=RPO05
    vo.client.destroy(directory)
    return True


def _run_job_transfer(vo) -> bool:
    sites = vo.client.get_available_resources(_JOB.command)
    if not sites:
        return False
    site = sites[0]
    vo.client.make_reservation(site["host"])
    vo.client.upload_file(site["data_address"], "input.dat", "x" * 2048)
    job = vo.client.start_job(site["exec_address"], _JOB)
    vo.client.subscribe_job_exit(site["exec_address"], job, vo.consumer)
    vo.deployment.network.clock.charge(_JOB.run_time_ms + 500)  # repro-lint: disable=RPO05
    vo.client.delete_file(site["data_address"], "input.dat")
    vo.client.unreserve(site["host"])
    return True


def run_giab_reliability(
    stack: str,
    loss_rate: float,
    n_jobs: int = 3,
    policy: RetryPolicy = BENCH_POLICY,
) -> ReliabilityResult:
    """``n_jobs`` full job flows (reserve → upload → run → exit
    notification → cleanup) over a ``FaultSpec.lossy(loss_rate)`` wire.
    VO setup and admin registration run on a clean wire.  X.509-signed
    like Figure 6 — the GiaB flows key per-user state off the
    authenticated sender DN, so there is no unsigned variant."""
    if stack == "wsrf":
        vo = build_wsrf_vo(reliability=policy)
        run_job = _run_job_wsrf
        notifiers = [
            pair.exec_service.reliable_deliverer for pair in vo.nodes.values()
        ]
    elif stack == "transfer":
        vo = build_transfer_vo(reliability=policy)
        run_job = _run_job_transfer
        notifiers = [
            pair.exec_service.notifications.deliverer for pair in vo.nodes.values()
        ]
    else:
        raise ValueError(f"unknown stack {stack!r}")

    clock = vo.deployment.network.clock
    vo.deployment.network.faults.set_default(FaultSpec.lossy(loss_rate))

    completed = 0
    start = clock.now
    for _ in range(n_jobs):
        try:
            if run_job(vo):
                completed += 1
        except (RetryExhausted, SoapFault):
            continue  # a leg died after retries; dead-letters tell the story
    return _collect(
        stack,
        loss_rate,
        vo.deployment,
        notifiers,
        vo.consumer,
        vo.client.soap,
        operations=n_jobs,
        completed=completed,
        virtual_ms=clock.now - start,
    )
