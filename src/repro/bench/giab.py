"""The Grid-in-a-Box figure generator (Figure 6).

Six end-to-end client operations per stack, X.509-signed (the paper's
analysis is in terms of "web service outcalls (and message signings)"):
Get Available Resource, Make Reservation, Upload File, Instantiate Job,
Delete File, Unreserve Resource.  Un-reserving "happens automatically in
the WSRF version (so no time is reported)" — encoded as 0.0.
"""

from __future__ import annotations

from repro.apps.giab.jobs import JobSpec
from repro.apps.giab.vo import build_transfer_vo, build_wsrf_vo
from repro.bench.runner import measure_virtual
from repro.container.security import SecurityMode
from repro.sim.costs import CostModel
from repro.sim.metrics import OperationTrace

GIAB_OPS = (
    "Get Available Resource",
    "Make Reservation",
    "Upload File",
    "Instantiate Job",
    "Delete File",
    "Unreserve Resource",
)

#: A representative stage-in payload (the paper gives no size; 64 KiB keeps
#: file costs visible without dominating the signing costs).
FILE_CONTENT = "x" * (64 * 1024)
JOB = JobSpec("sort", ("input.dat",), run_time_ms=250.0, exit_code=0)


def measure_giab(
    stack: str,
    mode: SecurityMode = SecurityMode.X509,
    costs: CostModel | None = None,
    with_traces: bool = False,
) -> dict[str, float] | tuple[dict[str, float], dict[str, OperationTrace]]:
    """Run the six measured operations on a freshly deployed VO."""
    if stack == "wsrf":
        results, traces = _measure_wsrf(mode, costs)
    elif stack == "transfer":
        results, traces = _measure_transfer(mode, costs)
    else:
        raise ValueError(f"unknown stack: {stack}")
    if with_traces:
        return results, traces
    return results


def _measure_wsrf(mode: SecurityMode, costs: CostModel | None):
    vo = build_wsrf_vo(mode=mode, costs=costs)
    deployment = vo.deployment
    results: dict[str, float] = {}
    traces: dict[str, OperationTrace] = {}

    def run(name, fn):
        trace = measure_virtual(deployment, name, fn)
        results[name] = trace.elapsed_ms
        traces[name] = trace
        return trace

    sites = {}
    run("Get Available Resource", lambda: sites.update(all=vo.client.get_available_resources("sort")))
    site = sites["all"][0]
    reservation = {}
    run("Make Reservation", lambda: reservation.update(epr=vo.client.make_reservation(site["host"])))
    directory = vo.client.create_data_directory(site["data_address"])  # un-measured setup
    run("Upload File", lambda: vo.client.upload_file(directory, "input.dat", FILE_CONTENT))
    job = {}
    run(
        "Instantiate Job",
        lambda: job.update(
            epr=vo.client.start_job(site["exec_address"], reservation["epr"], directory, JOB)
        ),
    )
    run("Delete File", lambda: vo.client.delete_file(directory, "input.dat"))
    # "Un-reserving a resource also happens automatically in the WSRF
    # version (so no time is reported)."  Let the job finish to show it.
    deployment.network.clock.charge(JOB.run_time_ms + 10)
    available_again = {s["host"] for s in vo.client.get_available_resources("sort")}
    if site["host"] not in available_again:
        raise RuntimeError("WSRF reservation was not automatically released")
    results["Unreserve Resource"] = 0.0
    return results, traces


def _measure_transfer(mode: SecurityMode, costs: CostModel | None):
    vo = build_transfer_vo(mode=mode, costs=costs)
    deployment = vo.deployment
    results: dict[str, float] = {}
    traces: dict[str, OperationTrace] = {}

    def run(name, fn):
        trace = measure_virtual(deployment, name, fn)
        results[name] = trace.elapsed_ms
        traces[name] = trace
        return trace

    sites = {}
    run("Get Available Resource", lambda: sites.update(all=vo.client.get_available_resources("sort")))
    site = sites["all"][0]
    run("Make Reservation", lambda: vo.client.make_reservation(site["host"]))
    # Warm the user directory so Upload File measures the steady-state pair
    # of calls, not the one-time mkdir.
    vo.client.upload_file(site["data_address"], "warmup.dat", "x")
    run("Upload File", lambda: vo.client.upload_file(site["data_address"], "input.dat", FILE_CONTENT))
    run("Instantiate Job", lambda: vo.client.start_job(site["exec_address"], JOB))
    run("Delete File", lambda: vo.client.delete_file(site["data_address"], "input.dat"))
    deployment.network.clock.charge(JOB.run_time_ms + 10)
    run("Unreserve Resource", lambda: vo.client.unreserve(site["host"]))
    return results, traces
