"""The "hello world" figure generator (Figures 2-4).

For one security mode it produces the paper's four bar groups —
{co-located, distributed} × {WS-Transfer/WS-Eventing, WSRF.NET} — over the
five operations Get / Set / Create / Destroy / Notify, in virtual ms per
single request.
"""

from __future__ import annotations

from repro.apps.counter.deploy import (
    CounterScenario,
    build_transfer_rig,
    build_wsrf_rig,
)
from repro.bench.runner import measure_virtual
from repro.container.security import SecurityMode
from repro.sim.costs import CostModel

HELLO_OPS = ("Get", "Set", "Create", "Destroy", "Notify")

#: Series labels in the paper's legend order.
HELLO_SERIES = (
    ("Co-located WS-Transfer / WS-Eventing", "transfer", True),
    ("Co-located WSRF.NET", "wsrf", True),
    ("Distributed WS-Transfer / WS-Eventing", "transfer", False),
    ("Distributed WSRF.NET", "wsrf", False),
)


def measure_hello_world(
    stack: str,
    mode: SecurityMode,
    colocated: bool,
    costs: CostModel | None = None,
) -> dict[str, float]:
    """Measure the five counter operations for one configuration.

    A full warm-up cycle runs first so connection caches (HTTP keep-alive,
    TLS sessions) are in their steady state — the regime the paper's
    "socket caching" observation describes.
    """
    scenario = CounterScenario(mode, colocated, costs or CostModel())
    if stack == "wsrf":
        rig = build_wsrf_rig(scenario)
        create, get, set_, destroy, subscribe = (
            rig.client.create, rig.client.get, rig.client.set,
            rig.client.destroy, rig.client.subscribe,
        )
    elif stack == "transfer":
        rig = build_transfer_rig(scenario)
        create, get, set_, destroy, subscribe = (
            rig.client.create, rig.client.get, rig.client.set,
            rig.client.delete, rig.client.subscribe,
        )
    else:
        raise ValueError(f"unknown stack: {stack}")
    deployment = rig.deployment

    # Warm-up cycle (not measured).
    warm = create(0)
    get(warm)
    set_(warm, 1)
    destroy(warm)

    results: dict[str, float] = {}
    counter = create(0)
    results["Get"] = measure_virtual(deployment, "Get", lambda: get(counter)).elapsed_ms
    results["Set"] = measure_virtual(deployment, "Set", lambda: set_(counter, 7)).elapsed_ms
    created = {}
    results["Create"] = measure_virtual(
        deployment, "Create", lambda: created.update(epr=create(0))
    ).elapsed_ms
    results["Destroy"] = measure_virtual(
        deployment, "Destroy", lambda: destroy(created["epr"])
    ).elapsed_ms
    # Notify: "first set the value of the counter and then receive a message
    # indicating that the counter value has changed" — subscription set up
    # beforehand, un-measured.
    subscribe(counter, rig.consumer)
    before = len(rig.consumer.received)
    results["Notify"] = measure_virtual(
        deployment, "Notify", lambda: set_(counter, 8)
    ).elapsed_ms
    if len(rig.consumer.received) != before + 1:
        raise RuntimeError("Notify measurement did not deliver a notification")
    return results


def hello_world_figure(
    mode: SecurityMode, costs: CostModel | None = None
) -> dict[str, dict[str, float]]:
    """One full figure: series label → {op → virtual ms}."""
    return {
        label: measure_hello_world(stack, mode, colocated, costs)
        for label, stack, colocated in HELLO_SERIES
    }
