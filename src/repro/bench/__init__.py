"""Benchmark harness: regenerates every figure in the paper's evaluation.

Numbers come off the virtual clock (DESIGN.md §2): each measured operation
is bracketed with the metrics recorder and reported in virtual milliseconds,
the same unit as the paper's y-axes.  The pytest-benchmark targets in
``benchmarks/`` additionally measure real wall time of the same operations.
"""

from repro.bench.runner import measure_virtual
from repro.bench.hello import HELLO_OPS, measure_hello_world, hello_world_figure
from repro.bench.giab import GIAB_OPS, measure_giab
from repro.bench.report import (
    figure_to_csv,
    format_bar_chart,
    format_figure_table,
    format_span_tree,
    spans_to_csv,
)
from repro.bench.xmldb import (
    build_corpus,
    query_cost,
    scan_cost_model,
    xmldb_scaling_figure,
)
from repro.bench.trace import (
    TRACE_SERIES,
    span_figure,
    span_trees,
    stage_breakdown,
    trace_round_trip,
)

__all__ = [
    "measure_virtual",
    "HELLO_OPS",
    "measure_hello_world",
    "hello_world_figure",
    "GIAB_OPS",
    "measure_giab",
    "figure_to_csv",
    "format_figure_table",
    "format_bar_chart",
    "format_span_tree",
    "spans_to_csv",
    "build_corpus",
    "query_cost",
    "scan_cost_model",
    "xmldb_scaling_figure",
    "TRACE_SERIES",
    "span_figure",
    "span_trees",
    "stage_breakdown",
    "trace_round_trip",
]
