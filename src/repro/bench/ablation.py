"""Calibration-robustness substrate — are the headline orderings
calibration artifacts?

Perturbs each load-bearing cost-model entry by ±50% and re-checks the
paper's headline orderings.  The deliberate scope note: Create-vs-Set is
*not* checked here because it is genuinely calibration-sensitive —
WS-Transfer's Set pays read+update, so "Create is slowest" requires
insert ≳ read+update, which held for Xindice but flips if insert cost is
halved.  That sensitivity is pinned by its own bench test.
"""

from __future__ import annotations

from repro.bench.hello import measure_hello_world
from repro.container.security import SecurityMode
from repro.sim.costs import CostModel

#: The entries the headline results lean on.
PERTURBED_ENTRIES = (
    "db_read",
    "db_update",
    "db_insert",
    "db_delete",
    "cache_hit",
    "notify_http_overhead",
    "notify_tcp_overhead",
    "rsa_sign",
    "soap_dispatch",
    "lan_latency",
    "xml_parse_per_kb",
)

#: The perturbation factors swept per entry.
PERTURBATION_FACTORS = (0.5, 1.5)


def orderings_hold(costs: CostModel) -> list[str]:
    """Return the list of violated headline orderings under ``costs``."""
    wsrf = measure_hello_world("wsrf", SecurityMode.NONE, True, costs=costs)
    transfer = measure_hello_world("transfer", SecurityMode.NONE, True, costs=costs)
    violations = []
    for series, label in ((wsrf, "wsrf"), (transfer, "transfer")):
        for op in ("Get", "Destroy"):
            if series["Create"] <= series[op]:
                violations.append(f"{label}: Create <= {op}")
    if wsrf["Set"] >= transfer["Set"]:
        violations.append("cache advantage lost")
    if transfer["Notify"] >= wsrf["Notify"]:
        violations.append("notify advantage lost")
    return violations


def perturbation_row(entry: str) -> dict[str, float]:
    """Violation counts for one perturbed cost entry at each factor."""
    base = CostModel()
    row: dict[str, float] = {}
    for factor in PERTURBATION_FACTORS:
        perturbed = base.replace(**{entry: getattr(base, entry) * factor})
        row[f"x{factor}"] = float(len(orderings_hold(perturbed)))
    return row
