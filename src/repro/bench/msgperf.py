"""Wall-clock message-path throughput: memoized vs uncached (ROADMAP item 2).

Every figure in this repo reports *virtual* milliseconds; this bench is the
one place that measures the harness's own wall-clock speed.  It soaks the
paper's hardest counter configuration — X.509 signing, distributed
placement, WSRF stack — through full signed round trips and contrasts the
memoized message path (content-keyed c14n/DSig caches, interned QNames,
fragment reuse; DESIGN.md §16) against the uncached baseline obtained by
running the identical pipeline under
:func:`repro.xmllib.memo.caching_disabled`.  A second scenario measures
docs/sec over the 5k-document xmldb registry build plus a host-lookup scan.

The hard invariant — caching changes wall-clock time only — is asserted on
every run: the virtual ms per operation must be *identical* in the cached
and uncached soaks (both numbers are recorded, and ``--check`` re-verifies
them against the committed trajectory bit-for-bit, since they are pure
functions of the seeded program).  Wall-clock numbers are machine-dependent,
so the CI gate is a shape check, not a byte diff: structure must match,
cached must stay faster than uncached (no ordering flip), and throughput may
drift only within tolerance — or improve.
"""

from __future__ import annotations

import argparse
import json
import time
from contextlib import nullcontext

from repro.xmllib.memo import cache_stats, caching_disabled, clear_caches, reset_cache_stats

TITLE = "Message-path wall-clock throughput: memoized vs uncached"

#: Messages in the full cached soak / the (10x slower) uncached baseline.
SOAK_MESSAGES = 400
SOAK_BASELINE_MESSAGES = 40
#: Documents in the xmldb registry sweep.
XMLDB_DOCS = 5000
#: Acceptance floor for the recorded soak speedup (ISSUE 9 / ROADMAP 2).
MIN_SOAK_SPEEDUP = 10.0
#: ``--check`` tolerance: fresh throughput may not fall below this fraction
#: of the committed number (it may always exceed it).
CHECK_THROUGHPUT_RATIO = 0.35
#: ``--check`` floor for the freshly measured soak speedup.
CHECK_MIN_SPEEDUP = 5.0


def _wall_clock() -> float:
    """The repo's one deliberate wall-clock read (baselined RPO10).

    Every other number in the repo derives from the virtual clock; this
    bench exists to measure the harness's own speed, so host entropy
    affects only the wall figures it reports.
    """
    return time.perf_counter()


def _build_rig():
    from repro.apps.counter.deploy import CounterScenario, build_wsrf_rig
    from repro.container.security import SecurityMode
    from repro.sim.costs import CostModel

    scenario = CounterScenario(
        mode=SecurityMode.X509, colocated=False, costs=CostModel()
    )
    return build_wsrf_rig(scenario)


def run_soak(messages: int, *, uncached: bool = False) -> dict:
    """Signed distributed Get round trips; wall-clock messages/sec.

    Returns wall numbers plus the virtual cost per operation, which must be
    independent of caching (``run_msgperf`` asserts it).
    """
    guard = caching_disabled() if uncached else nullcontext()
    with guard:
        if not uncached:
            clear_caches()
        rig = _build_rig()
        counter = rig.client.create()
        rig.client.get(counter)
        rig.client.get(counter)
        clock = rig.deployment.network.clock
        virtual_start = clock.now
        wall_start = _wall_clock()
        for _ in range(messages):
            rig.client.get(counter)
        wall_seconds = _wall_clock() - wall_start
        virtual_ms = clock.now - virtual_start
    return {
        "messages": messages,
        "wall_seconds": round(wall_seconds, 4),
        "messages_per_sec": round(messages / wall_seconds, 1),
        "virtual_ms_per_op": round(virtual_ms / messages, 6),
    }


def run_xmldb(docs: int, *, uncached: bool = False) -> dict:
    """Build the n-doc indexed registry and run one host-lookup query."""
    from repro.bench.xmldb import HOST_INDEX_PATH, PREFIXES, build_corpus, host_lookup

    guard = caching_disabled() if uncached else nullcontext()
    with guard:
        wall_start = _wall_clock()
        collection = build_corpus(docs, indexed=True)
        matches = collection.query_keys(host_lookup(docs), PREFIXES)
        wall_seconds = _wall_clock() - wall_start
    return {
        "docs": docs,
        "wall_seconds": round(wall_seconds, 4),
        "docs_per_sec": round(docs / wall_seconds, 1),
        "lookup_matches": len(matches),
    }


def run_msgperf(
    *,
    messages: int = SOAK_MESSAGES,
    baseline_messages: int = SOAK_BASELINE_MESSAGES,
    docs: int = XMLDB_DOCS,
) -> dict:
    """The full report: cached and uncached soak + xmldb, cache stats."""
    reset_cache_stats()
    soak_cached = run_soak(messages)
    stats = cache_stats()
    soak_uncached = run_soak(baseline_messages, uncached=True)
    if soak_cached["virtual_ms_per_op"] != soak_uncached["virtual_ms_per_op"]:
        raise AssertionError(
            "caching changed virtual costs: "
            f"{soak_cached['virtual_ms_per_op']} (cached) != "
            f"{soak_uncached['virtual_ms_per_op']} (uncached)"
        )
    xmldb_cached = run_xmldb(docs)
    xmldb_uncached = run_xmldb(docs, uncached=True)
    return {
        "title": TITLE,
        "soak": {
            "scenario": "counter Get round trip: WSRF stack, X.509 signing, distributed",
            "cached": soak_cached,
            "uncached": soak_uncached,
            "speedup": round(
                soak_cached["messages_per_sec"] / soak_uncached["messages_per_sec"], 1
            ),
            "min_speedup": MIN_SOAK_SPEEDUP,
        },
        "xmldb": {
            "scenario": "indexed 5k-doc registry build + host-lookup query",
            "cached": xmldb_cached,
            "uncached": xmldb_uncached,
            "speedup": round(
                xmldb_cached["docs_per_sec"] / xmldb_uncached["docs_per_sec"], 2
            ),
        },
        "cache_stats": stats,
    }


def format_report(report: dict) -> str:
    soak = report["soak"]
    xmldb = report["xmldb"]
    lines = [
        report["title"],
        f"  soak   : {soak['cached']['messages_per_sec']:8.1f} msg/s cached  "
        f"{soak['uncached']['messages_per_sec']:7.1f} msg/s uncached  "
        f"({soak['speedup']:.1f}x, floor {soak['min_speedup']:.0f}x)",
        f"  virtual: {soak['cached']['virtual_ms_per_op']:.3f} ms/op in both modes",
        f"  xmldb  : {xmldb['cached']['docs_per_sec']:8.1f} doc/s cached  "
        f"{xmldb['uncached']['docs_per_sec']:7.1f} doc/s uncached  "
        f"({xmldb['speedup']:.2f}x)",
        "  caches :",
    ]
    for name, stats in report["cache_stats"].items():
        lines.append(f"    {name:22s} hits={stats['hits']:6d} misses={stats['misses']:5d}")
    return "\n".join(lines)


def _same_shape(committed, fresh, path="") -> list[str]:
    problems = []
    if isinstance(committed, dict):
        if not isinstance(fresh, dict) or sorted(committed) != sorted(fresh):
            problems.append(f"{path or '<root>'}: key set changed")
        else:
            for key in committed:
                problems.extend(_same_shape(committed[key], fresh[key], f"{path}.{key}"))
    elif type(committed) is not type(fresh) and not (
        isinstance(committed, (int, float)) and isinstance(fresh, (int, float))
    ):
        problems.append(f"{path}: type changed")
    return problems


def check(path: str) -> int:
    """The CI shape gate for ``results/BENCH_msgperf.json``.

    Re-measures a reduced soak and verifies against the committed file:
    identical structure, identical (deterministic) virtual costs, no
    cached/uncached ordering flip, speedup above floor, and wall-clock
    throughput within tolerance of the committed trajectory (regressions
    beyond tolerance fail; improvements never do).
    """
    with open(path, encoding="utf-8") as fh:
        committed = json.load(fh)
    fresh = run_msgperf(
        messages=SOAK_MESSAGES // 2,
        baseline_messages=SOAK_BASELINE_MESSAGES // 2,
        docs=XMLDB_DOCS // 5,
    )
    failures = _same_shape(committed, fresh)

    def fail(msg):
        failures.append(msg)

    soak_c, fresh_c = committed["soak"], fresh["soak"]
    if soak_c["speedup"] < soak_c["min_speedup"]:
        fail(f"committed soak speedup {soak_c['speedup']} below floor {soak_c['min_speedup']}")
    if fresh_c["cached"]["messages_per_sec"] <= fresh_c["uncached"]["messages_per_sec"]:
        fail("ordering flip: cached soak no faster than uncached")
    if fresh_c["speedup"] < CHECK_MIN_SPEEDUP:
        fail(f"fresh soak speedup {fresh_c['speedup']} below check floor {CHECK_MIN_SPEEDUP}")
    floor = CHECK_THROUGHPUT_RATIO * soak_c["cached"]["messages_per_sec"]
    if fresh_c["cached"]["messages_per_sec"] < floor:
        fail(
            f"cached throughput regressed beyond tolerance: "
            f"{fresh_c['cached']['messages_per_sec']} < {floor:.1f} "
            f"({CHECK_THROUGHPUT_RATIO:.0%} of committed)"
        )
    for mode in ("cached", "uncached"):
        if fresh_c[mode]["virtual_ms_per_op"] != soak_c[mode]["virtual_ms_per_op"]:
            fail(
                f"virtual cost drifted ({mode}): committed "
                f"{soak_c[mode]['virtual_ms_per_op']}, fresh {fresh_c[mode]['virtual_ms_per_op']}"
            )
    if fresh["xmldb"]["cached"]["docs_per_sec"] <= 0:
        fail("xmldb cached throughput not positive")
    if failures:
        for problem in failures:
            print(f"msgperf check: {problem}")
        return 1
    print(
        f"msgperf check OK: fresh {fresh_c['speedup']:.1f}x "
        f"(committed {soak_c['speedup']:.1f}x, floor {soak_c['min_speedup']:.0f}x)"
    )
    return 0


def smoke() -> int:
    """Fast CI gate: cache layer delivers a speedup and leaves costs alone."""
    report = run_msgperf(messages=60, baseline_messages=10, docs=300)
    failures = []
    if report["soak"]["speedup"] < 2.0:
        failures.append(f"soak speedup {report['soak']['speedup']} < 2.0")
    if report["soak"]["cached"]["messages_per_sec"] <= report["soak"]["uncached"]["messages_per_sec"]:
        failures.append("ordering flip: cached no faster than uncached")
    hits = sum(stats["hits"] for stats in report["cache_stats"].values())
    if hits <= 0:
        failures.append("no cache hits observed in the cached soak")
    print(format_report(report))
    for problem in failures:
        print(f"msgperf smoke: {problem}")
    return 1 if failures else 0


def msgperf_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro msgperf",
        description="Wall-clock message-path throughput, memoized vs uncached",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="fast cached-vs-uncached sanity gate (CI)")
    parser.add_argument("--check", metavar="PATH",
                        help="shape-check a committed BENCH_msgperf.json (CI)")
    parser.add_argument("--messages", type=int, default=SOAK_MESSAGES)
    parser.add_argument("--baseline-messages", type=int, default=SOAK_BASELINE_MESSAGES)
    parser.add_argument("--docs", type=int, default=XMLDB_DOCS)
    parser.add_argument("--json", metavar="PATH",
                        help="also write the report as JSON")
    args = parser.parse_args(argv)

    if args.smoke:
        return smoke()
    if args.check:
        return check(args.check)

    report = run_msgperf(
        messages=args.messages,
        baseline_messages=args.baseline_messages,
        docs=args.docs,
    )
    print(format_report(report))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0
