"""Measurement primitives."""

from __future__ import annotations

from typing import Callable

from repro.container.deployment import Deployment
from repro.sim.metrics import OperationTrace


def measure_virtual(deployment: Deployment, name: str, operation: Callable[[], object]) -> OperationTrace:
    """Run ``operation`` bracketed by the metrics recorder.

    Returns the full trace: virtual elapsed ms, message/byte counts,
    signatures, db ops and per-category time — everything the analysis
    sections of the paper reason about.
    """
    network = deployment.network
    network.metrics.begin(name, network.clock.now)
    operation()
    return network.metrics.end(network.clock.now)
