"""Open-loop load generation against the counter rigs (+ the CLI).

Binds the generic engine in :mod:`repro.sim.loadgen` to the paper's two
stacks: a seeded request mix drawn from the testkit op-DSL
(:class:`~repro.testkit.ops.GetCounter` / ``SetCounter``) is marshalled
into real SOAP requests and spawned on the deployment's kernel at
pre-scheduled Poisson/uniform arrival instants.  Overlapping requests
interleave on the shared virtual clock; the server host's worker pool
queues what it cannot serve, and the report shows what the paper's
single-request bars cannot: p95 latency growth and queue depth as
offered load approaches the stack's service rate.

``python -m repro loadgen`` prints a sweep; ``--smoke`` runs a fixed-seed
configuration twice on both stacks and fails unless the percentile
output is identical — the CI determinism gate for the whole kernel.
"""

from __future__ import annotations

import argparse
import json
import random
from typing import Sequence

from repro.apps.counter.deploy import (
    SERVER_HOST,
    CounterScenario,
    build_transfer_rig,
    build_wsrf_rig,
)
from repro.apps.counter.transfer_service import counter_representation
from repro.container.security import SecurityMode
from repro.sim.errors import SimError
from repro.sim.loadgen import LoadResult, arrival_times, run_open_loop
from repro.testkit.ops import GetCounter, Op, SetCounter
from repro.transfer.service import actions as wxf_actions
from repro.wsrf.properties import actions as rp_actions
from repro.xmllib import element, ns

STACKS = ("wsrf", "transfer")
STACK_LABELS = {"wsrf": "WSRF.NET", "transfer": "WS-Transfer"}

#: Offered loads swept by the BENCH trajectory (requests per virtual
#: second).  The high end saturates a single worker in X.509 mode, so the
#: trajectory shows the knee, not just the flat region.
BENCH_RATES = (10.0, 20.0, 40.0)
BENCH_REQUESTS = 60
BENCH_SEED = 1405


def draw_ops(
    n: int, seed: int, read_fraction: float = 0.8, name: str = "c0"
) -> list[Op]:
    """A seeded get/set mix over one counter, as op-DSL values."""
    if not 0.0 <= read_fraction <= 1.0:
        raise SimError(f"read fraction must be in [0, 1]: {read_fraction}")
    rng = random.Random(seed)
    ops: list[Op] = []
    for _ in range(n):
        if rng.random() < read_fraction:
            ops.append(GetCounter(name))
        else:
            ops.append(SetCounter(name, rng.randrange(1000)))
    return ops


def op_request(stack: str, op: Op, counter_epr):
    """Marshal one abstract op into ``(epr, action, body)`` for ``stack``.

    Mirrors the counter client proxies (§4.1.3): the WSRF stack speaks
    WS-ResourceProperties documents, the Transfer stack raw Get/Put
    representations.
    """
    if isinstance(op, GetCounter):
        if stack == "wsrf":
            return (
                counter_epr,
                rp_actions.GET,
                element(f"{{{ns.WSRF_RP}}}GetResourceProperty", "Value"),
            )
        return counter_epr, wxf_actions.GET, element(f"{{{ns.WXF}}}Get")
    if isinstance(op, SetCounter):
        if stack == "wsrf":
            return (
                counter_epr,
                rp_actions.SET,
                element(
                    f"{{{ns.WSRF_RP}}}SetResourceProperties",
                    element(
                        f"{{{ns.WSRF_RP}}}Update",
                        element(f"{{{ns.COUNTER}}}Value", op.value),
                    ),
                ),
            )
        return (
            counter_epr,
            wxf_actions.PUT,
            element(f"{{{ns.WXF}}}Put", counter_representation(op.value)),
        )
    raise SimError(f"loadgen cannot marshal op kind {op.kind!r}")


def run_load(
    stack: str,
    *,
    rate_per_sec: float,
    requests: int = BENCH_REQUESTS,
    process: str = "poisson",
    seed: int = BENCH_SEED,
    mode: SecurityMode = SecurityMode.X509,
    colocated: bool = False,
    workers: int = 1,
    queue_limit: int = 64,
    read_fraction: float = 0.8,
) -> LoadResult:
    """One open-loop run: a fresh rig, one counter, ``requests`` arrivals."""
    if stack not in STACKS:
        raise SimError(f"unknown stack {stack!r}; expected one of {STACKS}")
    scenario = CounterScenario(mode, colocated)
    rig = build_wsrf_rig(scenario) if stack == "wsrf" else build_transfer_rig(scenario)
    counter = rig.client.create(0)
    kernel = rig.deployment.network.kernel
    kernel.configure_pool(SERVER_HOST, workers, queue_limit)
    soap = rig.client.soap
    ops = draw_ops(requests, seed, read_fraction)
    arrivals = arrival_times(
        requests, rate_per_sec, process, seed, start=kernel.clock.now
    )

    def make_task(i: int):
        epr, action, body = op_request(stack, ops[i], counter)
        return soap.invoke_task(epr, action, body)

    return run_open_loop(
        kernel, arrivals, make_task,
        offered_per_sec=rate_per_sec, name=f"{stack}-req",
    )


def sweep(
    rates: Sequence[float] = BENCH_RATES,
    *,
    requests: int = BENCH_REQUESTS,
    process: str = "poisson",
    seed: int = BENCH_SEED,
    workers: int = 1,
    queue_limit: int = 64,
) -> dict:
    """The BENCH_loadgen trajectory: offered load vs latency, both stacks.

    Everything in the result derives from the virtual clock and the fixed
    seed, so regenerating the file on any machine yields identical bytes
    — which is exactly how ``scripts/check.sh`` diffs it.
    """
    points: dict[str, list[dict]] = {}
    for stack in STACKS:
        points[stack] = []
        for rate in rates:
            result = run_load(
                stack,
                rate_per_sec=rate,
                requests=requests,
                process=process,
                seed=seed,
                workers=workers,
                queue_limit=queue_limit,
            )
            points[stack].append(result.summary())
    return {
        "title": "Open-loop counter load: offered load vs latency (X.509, distributed)",
        "config": {
            "requests_per_point": requests,
            "process": process,
            "seed": seed,
            "workers": workers,
            "queue_limit": queue_limit,
            "mode": "x509",
            "placement": "distributed",
            "unit": "virtual ms",
        },
        "stacks": points,
    }


def format_sweep(report: dict) -> str:
    lines = [report["title"]]
    header = (
        f"{'stack':<14}{'offered/s':>10}{'p50 ms':>10}{'p95 ms':>10}"
        f"{'p99 ms':>10}{'done/s':>10}{'msg/s':>10}{'maxQ':>6}{'rej':>5}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for stack, rows in report["stacks"].items():
        for row in rows:
            latency = row["latency"]
            depth = max(row["max_queue_depth"].values(), default=0)
            lines.append(
                f"{STACK_LABELS[stack]:<14}"
                f"{row['offered_per_sec']:>10.1f}"
                f"{latency['p50_ms']:>10.2f}"
                f"{latency['p95_ms']:>10.2f}"
                f"{latency['p99_ms']:>10.2f}"
                f"{row['throughput_per_sec']:>10.2f}"
                f"{row['messages_per_sec']:>10.2f}"
                f"{depth:>6d}"
                f"{row['rejected']:>5d}"
            )
    return "\n".join(lines)


def smoke(seed: int = BENCH_SEED) -> int:
    """The CI determinism gate: same seed twice must be byte-identical."""
    config = dict(rate_per_sec=30.0, requests=40, seed=seed)
    failures = 0
    for stack in STACKS:
        first = run_load(stack, **config).summary()
        second = run_load(stack, **config).summary()
        if first != second:
            print(f"loadgen smoke FAILED: {stack} runs diverged with seed {seed}")
            print(f"  first:  {json.dumps(first, sort_keys=True)}")
            print(f"  second: {json.dumps(second, sort_keys=True)}")
            failures += 1
            continue
        queued = first["queueing"].get("max_ms", 0.0)
        print(
            f"loadgen smoke: {STACK_LABELS[stack]} deterministic "
            f"(p95 {first['latency']['p95_ms']:.2f} ms, "
            f"max queueing {queued:.2f} ms, "
            f"{first['completed']} completed)"
        )
    return 1 if failures else 0


def loadgen_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro loadgen",
        description="Open-loop load generation over the sim kernel",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="fixed-seed determinism check (CI gate)")
    parser.add_argument("--stack", choices=(*STACKS, "both"), default="both")
    parser.add_argument("--rate", type=float, action="append",
                        help="offered load in requests per virtual second "
                             "(repeatable; default the BENCH sweep rates)")
    parser.add_argument("--requests", type=int, default=BENCH_REQUESTS)
    parser.add_argument("--process", choices=("poisson", "uniform"),
                        default="poisson")
    parser.add_argument("--seed", type=int, default=BENCH_SEED)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--queue-limit", type=int, default=64)
    parser.add_argument("--json", metavar="PATH",
                        help="also write the sweep report as JSON")
    args = parser.parse_args(argv)

    if args.smoke:
        return smoke(args.seed)

    rates = tuple(args.rate) if args.rate else BENCH_RATES
    report = sweep(
        rates,
        requests=args.requests,
        process=args.process,
        seed=args.seed,
        workers=args.workers,
        queue_limit=args.queue_limit,
    )
    if args.stack != "both":
        report["stacks"] = {args.stack: report["stacks"][args.stack]}
    print(format_sweep(report))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0
