"""Trace-span collection for benchmarks and the CLI.

Every message already produces a span tree (the pipeline's
``TracingFilter`` runs in all chains); this module packages the trees
into benchmark-friendly shapes: a per-stage elapsed-time figure and a
full JSON/CSV dump of the trees themselves.
"""

from __future__ import annotations

from repro.apps.counter.deploy import (
    CounterScenario,
    build_transfer_rig,
    build_wsrf_rig,
)
from repro.container.security import SecurityMode
from repro.sim.costs import CostModel
from repro.sim.metrics import Span

#: Series labels for the two stacks, in the paper's legend order.
TRACE_SERIES = (
    ("WS-Transfer / WS-Eventing", "transfer"),
    ("WSRF.NET", "wsrf"),
)


def trace_round_trip(
    stack: str, mode: SecurityMode = SecurityMode.X509, *, colocated: bool = False
) -> dict[str, Span]:
    """Span trees for one Get round-trip and one Notify delivery.

    Returns ``{"Get": <client.invoke tree>, "Notify": <notify.deliver tree>}``
    recorded on a fresh rig (warm caches, like the hello figures).
    """
    scenario = CounterScenario(mode, colocated, CostModel())
    rig = build_wsrf_rig(scenario) if stack == "wsrf" else build_transfer_rig(scenario)
    tracer = rig.deployment.network.metrics.tracer
    counter = rig.client.create(0)
    rig.client.get(counter)  # warm-up (connection caches), not recorded
    trees: dict[str, Span] = {}

    tracer.clear()
    rig.client.get(counter)
    trees["Get"] = tracer.last_root()

    rig.client.subscribe(counter, rig.consumer)
    tracer.clear()
    rig.client.set(counter, 5)
    # Delivery happens server-side, inside the Set's dispatch span — the
    # span tree records the nesting the paper's Figure 1 can only imply.
    for root in tracer.roots:
        notify = root.find("notify.deliver")
        if notify is not None:
            trees["Notify"] = notify
    if "Notify" not in trees:  # pragma: no cover - rig wiring regression
        raise RuntimeError("Set did not produce a notification delivery")
    return trees


def stage_breakdown(root: Span) -> dict[str, float]:
    """Elapsed virtual ms per top-level stage of one round-trip tree."""
    return {child.name: child.elapsed_ms for child in root.children}


def span_figure(mode: SecurityMode = SecurityMode.X509) -> dict[str, dict[str, float]]:
    """Stage breakdown of a signed distributed Get, per stack (a figure)."""
    return {
        label: stage_breakdown(trace_round_trip(stack, mode)["Get"])
        for label, stack in TRACE_SERIES
    }


def span_trees(mode: SecurityMode = SecurityMode.X509) -> dict[str, dict[str, dict]]:
    """Full span trees per stack and operation, JSON-serializable."""
    return {
        label: {op: root.to_dict() for op, root in trace_round_trip(stack, mode).items()}
        for label, stack in TRACE_SERIES
    }
