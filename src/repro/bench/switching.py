"""SWITCH substrate — §5's stack-switching cost, per route.

One facade gateway per direction (``repro.bridge``): an unmodified WSRF
client drives a WS-Transfer service and vice versa.  Each route measures
Get/Set/Create/Destroy on its own independent deployment, so routes can
be built (and cells re-run) in isolation without changing the numbers.
"""

from __future__ import annotations

from repro.apps.counter import (
    CounterScenario,
    TransferCounterClient,
    WsrfCounterClient,
    build_transfer_rig,
    build_wsrf_rig,
)
from repro.bench.runner import measure_virtual
from repro.bridge import COUNTER_MAPPING, TransferFacadeService, WsrfFacadeService

#: Route key → figure series label, in the figure's row order.
ROUTES = (
    ("native_wsrf", "native WSRF client → WSRF service"),
    ("bridged_wsrf", "WSRF client → facade → WS-Transfer service"),
    ("native_transfer", "native WS-Transfer client → WS-Transfer service"),
    ("bridged_transfer", "WS-Transfer client → facade → WSRF service"),
)


def measure_ops(deployment, client, destroy_name: str) -> dict[str, float]:
    """The four CRUD operations on one (deployment, client) pair."""
    results = {}
    counter = client.create(0)
    results["Get"] = measure_virtual(deployment, "Get", lambda: client.get(counter)).elapsed_ms
    results["Set"] = measure_virtual(deployment, "Set", lambda: client.set(counter, 7)).elapsed_ms
    created = {}
    results["Create"] = measure_virtual(
        deployment, "Create", lambda: created.update(epr=client.create(0))
    ).elapsed_ms
    destroy = getattr(client, destroy_name)
    results["Destroy"] = measure_virtual(
        deployment, "Destroy", lambda: destroy(created["epr"])
    ).elapsed_ms
    return results


def measure_route(route: str) -> dict[str, float]:
    """Build the rig for one route and measure its operation costs."""
    if route == "native_wsrf":
        rig = build_wsrf_rig(CounterScenario())
        return measure_ops(rig.deployment, rig.client, "destroy")
    if route == "native_transfer":
        rig = build_transfer_rig(CounterScenario())
        return measure_ops(rig.deployment, rig.client, "delete")
    if route == "bridged_wsrf":
        wxf_rig = build_transfer_rig(CounterScenario())
        gateway = wxf_rig.deployment.add_container(
            "gateway-host", "Gateway", wxf_rig.deployment.issue_credentials("gw", seed=601)
        )
        facade = WsrfFacadeService(wxf_rig.service.address, COUNTER_MAPPING)
        gateway.add_service(facade)
        client = WsrfCounterClient(wxf_rig.client.soap, facade.address)
        return measure_ops(wxf_rig.deployment, client, "destroy")
    if route == "bridged_transfer":
        wsrf_rig = build_wsrf_rig(CounterScenario())
        gateway = wsrf_rig.deployment.add_container(
            "gateway-host", "Gateway", wsrf_rig.deployment.issue_credentials("gw", seed=602)
        )
        facade = TransferFacadeService(wsrf_rig.service.address, COUNTER_MAPPING)
        gateway.add_service(facade)
        client = TransferCounterClient(wsrf_rig.client.soap, facade.address)
        return measure_ops(wsrf_rig.deployment, client, "delete")
    raise ValueError(f"unknown route {route!r}")


def switching_figure() -> dict[str, dict[str, float]]:
    """The full native-vs-bridged figure, one row per route."""
    return {label: measure_route(route) for route, label in ROUTES}
