"""Client-side WSDL inspection: the commercial-tooling proxy story.

§5: "since both stacks are WS-I+ compliant, it should be possible to build
client proxies with commercial tools right now."  A parsed
:class:`WsdlDescription` is what such a tool would work from: the action
set (to refuse unsupported invocations before the wire) and the element
schemas (to validate request bodies — only possible when the service
published real types, i.e. not for a bare WS-Transfer contract).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.wsdl.generate import WSDL_NS
from repro.wsdl.xsd import xsd_to_elementspec
from repro.xmllib import QName, ns
from repro.xmllib.element import XmlElement
from repro.xmllib.schema import ElementSpec, SchemaError


@dataclass
class WsdlDescription:
    service_name: str
    address: str
    #: operation name → WS-Addressing action URI
    operations: dict[str, str] = field(default_factory=dict)
    schemas: list[ElementSpec] = field(default_factory=list)
    #: True when the types section is just <xsd:any> (the WS-Transfer hole).
    untyped: bool = False

    def action_supported(self, action: str) -> bool:
        return action in self.operations.values()

    def schema_for(self, tag: str | QName) -> ElementSpec | None:
        wanted = QName.parse(tag)
        for spec in self.schemas:
            if spec.tag == wanted:
                return spec
        return None

    def validate_body(self, body: XmlElement, *, strict: bool = False) -> None:
        """Validate a request/representation against the published types.

        Contracts are usually partial — services publish their
        application-specific types while spec-defined message shapes
        (GetResourceProperty, wxf:Get, ...) are known from the
        specifications — so undeclared roots pass unless ``strict``.  An
        untyped contract accepts anything (and catches nothing) — the
        client is back to hard-coded agreements.
        """
        if self.untyped:
            return
        spec = self.schema_for(body.tag)
        if spec is None:
            if strict:
                raise SchemaError(
                    f"contract of {self.service_name} declares no element {body.tag.clark()}"
                )
            return
        spec.validate(body)


def parse_wsdl(definitions: XmlElement) -> WsdlDescription:
    if definitions.tag != QName(WSDL_NS, "definitions"):
        raise ValueError(f"not a WSDL definitions element: {definitions.tag.clark()}")
    description = WsdlDescription(
        service_name=definitions.get("name", ""), address=""
    )
    types = definitions.find(f"{{{WSDL_NS}}}types")
    if types is not None:
        schema = types.find(f"{{{ns.XSD}}}schema")
        if schema is not None:
            for child in schema.element_children():
                if child.tag == QName(ns.XSD, "any"):
                    description.untyped = True
                elif child.tag == QName(ns.XSD, "element"):
                    description.schemas.append(xsd_to_elementspec(child))
    port_type = definitions.find(f"{{{WSDL_NS}}}portType")
    if port_type is not None:
        for operation in port_type.find_all(f"{{{WSDL_NS}}}operation"):
            name = operation.get("name", "")
            action = operation.get(f"{{{ns.WSA}}}Action", "")
            if name and action:
                description.operations[name] = action
    service = definitions.find(f"{{{WSDL_NS}}}service")
    if service is not None:
        port = service.find(f"{{{WSDL_NS}}}port")
        address = port.find(f"{{{WSDL_NS}}}address") if port is not None else None
        if address is not None:
            description.address = address.get("location", "")
    return description
