"""WSDL generation and inspection (extension beyond the paper's prototype).

§2.3's typing contrast, made concrete: "every client must know the 'type'
of objects that the service understands; in WSRF, this is contained in the
WSDL.  In WS-Transfer, only an <XSD:any> tag exists."

:func:`generate_wsdl` renders a deployed service's contract — operations
keyed by WS-Addressing action, plus the element schemas it advertises.  For
a WSRF service the types section carries real element declarations; for a
WS-Transfer service with no advertised schemas it degenerates to
``xsd:any``, exactly the interoperability hole the paper complains about.
:func:`parse_wsdl` reconstructs the contract client-side so proxies can
check actions and validate bodies before sending.
"""

from repro.wsdl.generate import generate_wsdl
from repro.wsdl.describe import WsdlDescription, parse_wsdl
from repro.wsdl.proxygen import GeneratedProxy, generate_proxy
from repro.wsdl.xsd import elementspec_to_xsd, xsd_to_elementspec

__all__ = [
    "generate_wsdl",
    "WsdlDescription",
    "parse_wsdl",
    "GeneratedProxy",
    "generate_proxy",
    "elementspec_to_xsd",
    "xsd_to_elementspec",
]
