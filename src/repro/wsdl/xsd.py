"""Rendering ElementSpec trees to an XSD subset and back.

A pragmatic dialect of XML Schema: each ``xsd:element`` carries a
``name`` plus a ``targetNamespace`` attribute (XSD proper scopes namespaces
at the schema level; keeping it per-element lets one WSDL types section mix
namespaces without imports, which is all this reproduction needs — the
divergence is deliberate and contained here).
"""

from __future__ import annotations

from repro.xmllib import QName, element, ns
from repro.xmllib.element import XmlElement
from repro.xmllib.schema import ElementSpec

_XSD_TYPES = {
    "string": "xsd:string",
    "int": "xsd:int",
    "float": "xsd:double",
    "boolean": "xsd:boolean",
    "anyURI": "xsd:anyURI",
}
_TYPES_BACK = {v: k for k, v in _XSD_TYPES.items()}


def elementspec_to_xsd(spec: ElementSpec) -> XmlElement:
    node = element(
        f"{{{ns.XSD}}}element",
        attrs={"name": spec.tag.local, "targetNamespace": spec.tag.namespace},
    )
    simple_type = _XSD_TYPES.get(spec.text_type or "")
    if simple_type and not spec.children and not spec.open_content:
        node.set("type", simple_type)
        return node
    complex_type = element(f"{{{ns.XSD}}}complexType")
    sequence = element(f"{{{ns.XSD}}}sequence")
    for tag, (child_spec, min_occurs, max_occurs) in spec.children.items():
        if child_spec is not None:
            child_el = elementspec_to_xsd(child_spec)
        else:
            child_el = element(
                f"{{{ns.XSD}}}element",
                attrs={"name": tag.local, "targetNamespace": tag.namespace},
            )
        child_el.set("minOccurs", str(min_occurs))
        child_el.set("maxOccurs", "unbounded" if max_occurs is None else str(max_occurs))
        sequence.append(child_el)
    if spec.open_content:
        sequence.append(element(f"{{{ns.XSD}}}any", attrs={"processContents": "lax"}))
    complex_type.append(sequence)
    for attr in spec.required_attributes:
        complex_type.append(
            element(
                f"{{{ns.XSD}}}attribute",
                attrs={
                    "name": attr.local,
                    "targetNamespace": attr.namespace,
                    "use": "required",
                },
            )
        )
    node.append(complex_type)
    return node


def xsd_to_elementspec(node: XmlElement) -> ElementSpec:
    if node.tag != QName(ns.XSD, "element"):
        raise ValueError(f"not an xsd:element: {node.tag.clark()}")
    tag = QName(node.get("targetNamespace", ""), node.get("name", ""))
    declared = node.get("type", "")
    spec = ElementSpec(tag=tag, text_type=_TYPES_BACK.get(declared))
    complex_type = node.find(f"{{{ns.XSD}}}complexType")
    if complex_type is None:
        return spec
    sequence = complex_type.find(f"{{{ns.XSD}}}sequence")
    if sequence is not None:
        for child in sequence.element_children():
            if child.tag == QName(ns.XSD, "any"):
                spec.open_content = True
                continue
            child_spec = xsd_to_elementspec(child)
            max_text = child.get("maxOccurs", "1")
            spec.children[child_spec.tag] = (
                child_spec if (child.find(f"{{{ns.XSD}}}complexType") or child.get("type")) else None,
                int(child.get("minOccurs", "1")),
                None if max_text == "unbounded" else int(max_text),
            )
    for attr in complex_type.find_all(f"{{{ns.XSD}}}attribute"):
        if attr.get("use") == "required":
            spec.required_attributes = spec.required_attributes + (
                QName(attr.get("targetNamespace", ""), attr.get("name", "")),
            )
    return spec
