"""Proxy generation from WSDL: the "commercial tooling" of §5.

"From a client perspective ... it should be possible to build client
proxies with commercial tools right now."  :func:`generate_proxy` plays
that tool: given a parsed :class:`~repro.wsdl.describe.WsdlDescription`, it
builds a proxy class with one Python method per WSDL operation.  Each
method marshals its body, validates it against the published types when
the contract is typed (so a WSRF proxy catches mistakes before the wire —
an untyped WS-Transfer proxy cannot), and invokes the service.
"""

from __future__ import annotations

import keyword
import re

from repro.addressing.epr import EndpointReference
from repro.container.client import SoapClient
from repro.wsdl.describe import WsdlDescription
from repro.xmllib.element import XmlElement


def _method_name(operation: str) -> str:
    snake = re.sub(r"(?<=[a-z0-9])(?=[A-Z])", "_", operation).lower()
    snake = re.sub(r"[^a-z0-9_]", "_", snake)
    if not snake or snake[0].isdigit() or keyword.iskeyword(snake):
        snake = f"op_{snake}"
    return snake


class GeneratedProxy:
    """Base class of generated proxies."""

    def __init__(self, soap: SoapClient, description: WsdlDescription):
        self._soap = soap
        self._description = description

    def _invoke(
        self,
        action: str,
        body: XmlElement,
        resource: EndpointReference | None = None,
    ) -> XmlElement | None:
        self._description.validate_body(body)
        target = resource if resource is not None else EndpointReference.create(
            self._description.address
        )
        return self._soap.invoke(target, action, body)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ops = ", ".join(sorted(self._description.operations))
        return f"<proxy for {self._description.service_name}: {ops}>"


def generate_proxy(description: WsdlDescription) -> type:
    """Build a proxy class with one method per WSDL operation.

    Each generated method has the signature
    ``method(body, resource=None) -> XmlElement | None``: the EPR defaults
    to the service address; pass a resource EPR for WSRF-style addressed
    invocations.
    """
    namespace: dict = {}
    for operation, action in description.operations.items():
        name = _method_name(operation)

        def method(self, body, resource=None, _action=action):
            return self._invoke(_action, body, resource)

        method.__name__ = name
        method.__doc__ = f"Invoke {operation} (action {action})."
        namespace[name] = method
    class_name = f"{description.service_name or 'Service'}Proxy"
    return type(class_name, (GeneratedProxy,), namespace)
