"""WSDL 1.1-style contract generation for deployed services."""

from __future__ import annotations

from repro.container.service import ServiceSkeleton
from repro.wsdl.xsd import elementspec_to_xsd
from repro.xmllib import element, ns
from repro.xmllib.element import XmlElement
from repro.xmllib.schema import ElementSpec

WSDL_NS = ns.WSDL


def _operation_name(action: str) -> str:
    tail = action.rstrip("/").rsplit("/", 1)[-1]
    return tail or "Operation"


def generate_wsdl(
    service: ServiceSkeleton,
    type_schemas: list[ElementSpec] | None = None,
) -> XmlElement:
    """Render the service's contract.

    ``type_schemas`` defaults to the service's ``advertised_schemas`` (the
    MetadataExchange mixin's registry) when present.  With no schemas at
    all, the types section is a single ``xsd:any`` — a faithfully poor
    WS-Transfer contract.
    """
    if type_schemas is None:
        type_schemas = list(getattr(service, "advertised_schemas", []) or [])

    types = element(f"{{{WSDL_NS}}}types")
    schema = element(f"{{{ns.XSD}}}schema")
    if type_schemas:
        for spec in type_schemas:
            schema.append(elementspec_to_xsd(spec))
    else:
        schema.append(element(f"{{{ns.XSD}}}any", attrs={"processContents": "lax"}))
    types.append(schema)

    port_type = element(
        f"{{{WSDL_NS}}}portType", attrs={"name": f"{service.service_name}PortType"}
    )
    for action in sorted(service.operations()):
        operation = element(
            f"{{{WSDL_NS}}}operation",
            element(f"{{{WSDL_NS}}}input", attrs={"message": f"tns:{_operation_name(action)}Request"}),
            element(f"{{{WSDL_NS}}}output", attrs={"message": f"tns:{_operation_name(action)}Response"}),
            attrs={"name": _operation_name(action), "{%s}Action" % ns.WSA: action},
        )
        port_type.append(operation)

    port = element(
        f"{{{WSDL_NS}}}port",
        element(f"{{{WSDL_NS}}}address", attrs={"location": service.address}),
        attrs={"name": f"{service.service_name}Port"},
    )
    return element(
        f"{{{WSDL_NS}}}definitions",
        types,
        port_type,
        element(f"{{{WSDL_NS}}}service", port, attrs={"name": service.service_name}),
        attrs={"name": service.service_name},
    )
