"""World adapters: run one scenario program against one concrete stack.

A world owns a freshly-built deployment (counter rig or Grid-in-a-Box VO)
and translates each abstract :mod:`~repro.testkit.ops` operation into that
stack's wire idiom — the WSRF world renews a subscription with
SetTerminationTime on the subscription WS-Resource, the WS-Transfer world
with a WS-Eventing Renew, and so on.  What comes back is a *normalized
observation* per op (values, "ok", or a fault family) plus the run's
notification stream and per-op virtual cost, which is everything the
comparators in :mod:`~repro.testkit.comparators` look at.

Known, deliberate cross-stack asymmetries (documented in DESIGN.md §12)
are resolved here, not papered over in the comparators:

* WS-Transfer Put *resurrects* a deleted resource (the paper §3.2's
  out-of-band-creation issue) where WSRF Set faults — the generator never
  emits Set-after-Destroy, and the explicit divergence test pins the
  difference.
* Releasing a Grid-in-a-Box host is automatic in WSRF (reservation
  destroyed when the job exits) but an explicit Put in WS-Transfer — the
  ``giab_available`` op performs the transfer-side unreserve as part of
  the observation, mirroring Figure 6's "Unreserve Resource" bar.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.addressing.epr import EndpointReference
from repro.apps.counter.deploy import (
    CounterScenario,
    build_transfer_rig,
    build_wsrf_rig,
)
from repro.apps.giab.jobs import JobSpec
from repro.apps.giab.vo import build_transfer_vo, build_wsrf_vo
from repro.container.security import SecurityMode
from repro.sim.faults import DeliveryFault, FaultSpec, NO_FAULTS
from repro.soap.envelope import SoapFault
from repro.testkit import ops as op
from repro.testkit.comparators import fault_family
from repro.transfer.service import TRANSFER_RESOURCE_ID
from repro.wsrf.resource import RESOURCE_ID
from repro.xmllib import ns, text_of


@dataclass
class RunResult:
    """Everything observable about one program run on one stack."""

    stack: str
    steps: list = field(default_factory=list)  # one normalized entry per op
    events: list = field(default_factory=list)  # (counter_name, old, new)
    elapsed_by_op: list = field(default_factory=list)  # virtual ms per op
    total_elapsed_ms: float = 0.0

    def to_dict(self) -> dict:
        return {
            "stack": self.stack,
            "steps": self.steps,
            "events": self.events,
            "elapsed_by_op": self.elapsed_by_op,
            "total_elapsed_ms": self.total_elapsed_ms,
        }


def _status_class(text: str) -> str:
    """Absolute expiry instants differ across stacks (their clocks sit at
    different values after the same prefix) — only the *class* compares."""
    return "infinity" if text.strip() == "infinity" else "finite"


class _WorldBase:
    """Op loop shared by both program kinds."""

    def __init__(self, stack: str):
        if stack not in ("wsrf", "transfer"):
            raise ValueError(f"unknown stack: {stack!r}")
        self.stack = stack

    # Subclasses set self.deployment after building their rig/VO.

    @property
    def clock(self):
        return self.deployment.network.clock

    @property
    def kernel(self):
        return self.deployment.network.kernel

    def run(self, program: op.Program) -> RunResult:
        result = RunResult(self.stack)
        for operation in program:
            before = self.clock.now
            try:
                observed = self.apply(operation)
            except SoapFault as fault:
                observed = ["fault", fault_family(fault)]
            except DeliveryFault as fault:
                # Only reachable on a deliberately-degraded wire (the harness's
                # perturb fixture): a conformance program's delay-only faults
                # never lose messages.
                observed = ["delivery-fault", type(fault).__name__]
            result.steps.append([operation.kind, observed])
            result.elapsed_by_op.append(self.clock.now - before)
        result.events = self.collect_events()
        result.total_elapsed_ms = self.clock.now
        return result

    # -- shared ops ----------------------------------------------------------

    def _apply_shared(self, operation: op.Op):
        if isinstance(operation, op.AdvanceClock):
            self.kernel.run(until=self.clock.now + operation.ms)
            return "ok"
        if isinstance(operation, op.FaultToggle):
            if operation.delay_mean_ms <= 0:
                self.deployment.network.faults.set_default(NO_FAULTS)
            else:
                self.deployment.network.faults.set_default(
                    FaultSpec(
                        delay_mean_ms=operation.delay_mean_ms,
                        delay_jitter_ms=operation.delay_jitter_ms,
                    )
                )
            return "ok"
        raise NotImplementedError(f"world cannot apply {operation.kind}")

    def collect_events(self) -> list:
        return []


class CounterWorld(_WorldBase):
    """The counter service under one of the paper's six scenarios."""

    def __init__(
        self,
        stack: str,
        mode: SecurityMode = SecurityMode.NONE,
        colocated: bool = True,
    ):
        super().__init__(stack)
        scenario = CounterScenario(mode=mode, colocated=colocated)
        if stack == "wsrf":
            self.rig = build_wsrf_rig(scenario)
            self._resource_id = RESOURCE_ID
        else:
            self.rig = build_transfer_rig(scenario)
            self._resource_id = TRANSFER_RESOURCE_ID
        self.deployment = self.rig.deployment
        self.client = self.rig.client
        self.consumer = self.rig.consumer
        self.counters: dict[str, EndpointReference] = {}
        self.subscriptions: dict[str, EndpointReference] = {}

    # -- handle resolution ---------------------------------------------------

    def _counter_epr(self, name: str) -> EndpointReference:
        """A live counter's EPR, or a well-formed EPR naming a resource
        that does not exist (so unknown-name ops fault, same as on the
        other stack, rather than erroring in the adapter)."""
        epr = self.counters.get(name)
        if epr is not None:
            return epr
        return EndpointReference.create(self.rig.service.address).with_property(
            self._resource_id, f"missing-{name}"
        )

    def _subscription_epr(self, handle: str) -> EndpointReference:
        epr = self.subscriptions.get(handle)
        if epr is not None:
            return epr
        key = self._resource_id if self.stack == "wsrf" else self._wse_identifier()
        return EndpointReference.create(
            self.rig.subscription_manager.address
        ).with_property(key, f"missing-{handle}")

    @staticmethod
    def _wse_identifier():
        from repro.eventing.source import SUBSCRIPTION_ID

        return SUBSCRIPTION_ID

    # -- op execution --------------------------------------------------------

    def apply(self, operation: op.Op):
        if isinstance(operation, op.CreateCounter):
            self.counters[operation.name] = self.client.create(operation.initial)
            return "created"
        if isinstance(operation, op.GetCounter):
            return self.client.get(self._counter_epr(operation.name))
        if isinstance(operation, op.SetCounter):
            if operation.name not in self.counters:
                # Set on a missing resource is a *documented* asymmetry (WXF
                # Put resurrects, WSRF Set faults) — refuse to express it so
                # shrinker candidates cannot escape into it.
                raise RuntimeError(f"program sets counter {operation.name!r} while not live")
            self.client.set(self.counters[operation.name], operation.value)
            return "ok"
        if isinstance(operation, op.DestroyCounter):
            epr = self._counter_epr(operation.name)
            if self.stack == "wsrf":
                self.client.destroy(epr)
            else:
                self.client.delete(epr)
            if self.counters.pop(operation.name, None) is not None:
                self._retire(operation.name, epr)
            return "ok"
        if isinstance(operation, op.Subscribe):
            if operation.name not in self.counters:
                # Also documented: WS-Eventing subscribes to the *service*
                # with a filter, so it cannot notice the counter is gone
                # where WSNT's per-resource Subscribe faults.
                raise RuntimeError(
                    f"program subscribes to counter {operation.name!r} while not live"
                )
            deadline = (
                None
                if operation.expires_in_ms is None
                else self.clock.now + operation.expires_in_ms
            )
            epr = self.counters[operation.name]
            if self.stack == "wsrf":
                sub = self.client.subscribe(epr, self.consumer, termination_time=deadline)
            else:
                sub = self.client.subscribe(epr, self.consumer, expires=deadline)
            self.subscriptions[operation.handle] = sub
            return "subscribed"
        if isinstance(operation, op.Renew):
            deadline = (
                None
                if operation.expires_in_ms is None
                else self.clock.now + operation.expires_in_ms
            )
            self.client.renew_subscription(self._subscription_epr(operation.handle), deadline)
            return "ok"
        if isinstance(operation, op.GetStatus):
            return _status_class(
                self.client.subscription_status(self._subscription_epr(operation.handle))
            )
        if isinstance(operation, op.Unsubscribe):
            self.client.unsubscribe(self._subscription_epr(operation.handle))
            self.subscriptions.pop(operation.handle, None)
            return "ok"
        return self._apply_shared(operation)

    # -- notification stream -------------------------------------------------

    def collect_events(self) -> list:
        """Normalize received value-change events to (name, old, new).

        Wire resource keys are stack-specific (GUIDs vs home keys), so the
        counter attribute is mapped back to the program-local name."""
        key_to_name = {
            epr.property(self._resource_id): name
            for name, epr in self.counters.items()
        }
        key_to_name.update(self._retired_keys)
        events = []
        payloads = (
            [payload for _topic, payload in self.consumer.received]
            if self.stack == "wsrf"
            else list(self.consumer.received)
        )
        for payload in payloads:
            if payload.tag.local != "CounterValueChanged":
                continue
            key = payload.get("counter", "")
            events.append(
                [
                    key_to_name.get(key, key),
                    int(text_of(payload.find(f"{{{ns.COUNTER}}}OldValue"), "0")),
                    int(text_of(payload.find(f"{{{ns.COUNTER}}}NewValue"), "0")),
                ]
            )
        return events

    @property
    def _retired_keys(self) -> dict:
        """Keys of destroyed counters, so late events still map to names."""
        return self.__dict__.setdefault("_retired", {})

    def _retire(self, name: str, epr: EndpointReference) -> None:
        self._retired_keys[epr.property(self._resource_id)] = name


class GiabWorld(_WorldBase):
    """A Grid-in-a-Box VO running the Figure-5 flow on one stack."""

    def __init__(self, stack: str, mode: SecurityMode = SecurityMode.X509):
        super().__init__(stack)
        if stack == "wsrf":
            self.vo = build_wsrf_vo(mode=mode)
        else:
            self.vo = build_transfer_vo(mode=mode)
        self.deployment = self.vo.deployment
        self.client = self.vo.client
        self.consumer = self.vo.consumer
        self.sites: list[dict] = []
        self.site: dict | None = None
        self.reservation: EndpointReference | None = None  # wsrf only
        self.directory: EndpointReference | None = None  # wsrf only
        self.job: EndpointReference | None = None
        self.job_spec: JobSpec | None = None

    def _require_site(self) -> dict:
        if self.site is None:
            raise RuntimeError("program reserves before discovering")
        return self.site

    def _wsrf_directory(self, site: dict) -> EndpointReference:
        """The WSRF stack's explicit data-directory resource, created
        lazily so a reordered program probing files before its first
        upload faults like the transfer stack does, instead of crashing
        the adapter."""
        if self.directory is None:
            self.directory = self.client.create_data_directory(site["data_address"])
        return self.directory

    def apply(self, operation: op.Op):
        if isinstance(operation, op.GiabDiscover):
            self.sites = self.client.get_available_resources(operation.application)
            return sorted(site["host"] for site in self.sites)
        if isinstance(operation, op.GiabReserve):
            if not self.sites:
                raise RuntimeError("program reserves before discovering")
            self.site = self.sites[operation.site_index % len(self.sites)]
            if self.stack == "wsrf":
                self.reservation = self.client.make_reservation(self.site["host"])
            else:
                self.client.make_reservation(self.site["host"])
            return "reserved"
        if isinstance(operation, op.GiabUpload):
            site = self._require_site()
            if self.stack == "wsrf":
                self.client.upload_file(
                    self._wsrf_directory(site), operation.name, operation.content
                )
            else:
                self.client.upload_file(
                    site["data_address"], operation.name, operation.content
                )
            return "uploaded"
        if isinstance(operation, op.GiabDownload):
            site = self._require_site()
            if self.stack == "wsrf":
                return self.client.download_file(
                    self._wsrf_directory(site), operation.name
                )
            return self.client.download_file(site["data_address"], operation.name)
        if isinstance(operation, op.GiabListFiles):
            site = self._require_site()
            if self.stack == "wsrf":
                return sorted(self.client.list_files(self._wsrf_directory(site)))
            return sorted(self.client.list_files(site["data_address"]))
        if isinstance(operation, op.GiabSubmit):
            site = self._require_site()
            self.job_spec = JobSpec(
                operation.application,
                (operation.input_file,),
                run_time_ms=operation.run_time_ms,
                exit_code=operation.exit_code,
            )
            if self.stack == "wsrf":
                self.job = self.client.start_job(
                    site["exec_address"], self.reservation, self.directory, self.job_spec
                )
                self.client.subscribe_job_exit(self.job, self.consumer)
            else:
                self.job = self.client.start_job(site["exec_address"], self.job_spec)
                self.client.subscribe_job_exit(
                    site["exec_address"], self.job, self.consumer
                )
            return "submitted"
        if isinstance(operation, op.GiabJobStatus):
            if self.job is None:
                raise RuntimeError("program queries status before submitting")
            return self.client.job_status(self.job)
        if isinstance(operation, op.GiabAwaitJob):
            if self.job_spec is None:
                raise RuntimeError("program awaits before submitting")
            self.kernel.run(
                until=self.clock.now + self.job_spec.run_time_ms + operation.grace_ms
            )
            return "ok"
        if isinstance(operation, op.GiabDeleteFile):
            site = self._require_site()
            if self.stack == "wsrf":
                self.client.delete_file(self._wsrf_directory(site), operation.name)
            else:
                self.client.delete_file(site["data_address"], operation.name)
            return "deleted"
        if isinstance(operation, op.GiabCheckAvailable):
            if self.stack == "transfer" and self.site is not None:
                # Figure 6's explicit Unreserve: the transfer stack's way of
                # releasing what WSRF released automatically at job exit.
                self.client.unreserve(self.site["host"])
            return sorted(
                site["host"]
                for site in self.client.get_available_resources(operation.application)
            )
        return self._apply_shared(operation)

    def collect_events(self) -> list:
        """Normalize job-exit notifications to their exit codes."""
        payloads = (
            [payload for _topic, payload in self.consumer.received]
            if self.stack == "wsrf"
            else list(self.consumer.received)
        )
        return [
            ["job-exited", int(text_of(payload.find(f"{{{ns.GIAB}}}ExitCode"), "0"))]
            for payload in payloads
            if payload.tag.local == "JobExited"
        ]


class DatagridWorld(_WorldBase):
    """The declared replica-catalog/data-transfer pair on one stack.

    Both stacks run the *same* logic and db layers (that is the layered
    framework's point), so every op observation — locations, chosen
    source hosts, fault families — must match exactly; the wire idioms
    (app-namespace actions vs CRUD-with-key-prefixes) are all that
    differs."""

    def __init__(
        self,
        stack: str,
        mode: SecurityMode = SecurityMode.NONE,
        colocated: bool = True,
    ):
        super().__init__(stack)
        from repro.apps.datagrid import DatagridScenario, build_datagrid

        self.rig = build_datagrid(stack, DatagridScenario(mode=mode, colocated=colocated))
        self.deployment = self.rig.deployment
        self.catalog = self.rig.catalog
        self.transfer = self.rig.transfer

    def apply(self, operation: op.Op):
        if isinstance(operation, op.DgRegister):
            self.catalog.register_replica(operation.logical_file, operation.host)
            return "registered"
        if isinstance(operation, op.DgUnregister):
            self.catalog.unregister_replica(operation.logical_file, operation.host)
            return "unregistered"
        if isinstance(operation, op.DgLocate):
            return self.catalog.locate_replicas(operation.logical_file)
        if isinstance(operation, op.DgListFiles):
            return self.catalog.list_files()
        if isinstance(operation, op.DgFilesOn):
            return self.catalog.files_on(operation.host)
        if isinstance(operation, op.DgReplicate):
            return self.transfer.replicate(operation.logical_file, operation.to_host)
        if isinstance(operation, op.DgStageIn):
            return self.transfer.stage_in(operation.logical_file, operation.to_host)
        return self._apply_shared(operation)


def build_world(
    program_kind: str,
    stack: str,
    mode: SecurityMode,
    colocated: bool = True,
) -> _WorldBase:
    if program_kind == "counter":
        return CounterWorld(stack, mode=mode, colocated=colocated)
    if program_kind == "giab":
        return GiabWorld(stack, mode=mode)
    if program_kind == "datagrid":
        return DatagridWorld(stack, mode=mode, colocated=colocated)
    raise ValueError(f"unknown program kind: {program_kind!r}")
