"""The differential harness: one program, both stacks, verdict.

``run_differential`` builds a fresh world per stack (same security mode
and placement), executes the program on each, and runs every registered
comparator over the two results.  ``replay`` optionally runs each stack a
second time from scratch and asserts bit-identical behaviour — the
within-stack determinism half of the contract.

A ``perturb_stack`` can be named to degrade one stack's wire with a lossy
:class:`~repro.sim.faults.FaultSpec` *before* the run.  That makes the two
runs genuinely inequivalent on purpose: it is the regression fixture for
the shrinker and for the divergence-reporting path (a harness that can
never fail is not testing anything).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.container.security import SecurityMode
from repro.sim.faults import FaultSpec
from repro.sim.sanitizer import SimSanitizer
from repro.testkit.comparators import COMPARATORS, compare_replay
from repro.testkit.ops import Program
from repro.testkit.worlds import RunResult, build_world

#: The paper's 6-scenario matrix, as (mode, colocated) cells.
ALL_MODES: tuple[tuple[SecurityMode, bool], ...] = tuple(
    (mode, colocated)
    for mode in (SecurityMode.NONE, SecurityMode.X509, SecurityMode.HTTPS)
    for colocated in (True, False)
)


def mode_label(mode: SecurityMode, colocated: bool) -> str:
    return f"{mode.value}/{'co-located' if colocated else 'distributed'}"


@dataclass
class Divergence:
    """One program on which the stacks disagreed, with its replay recipe."""

    comparator: str
    details: list
    program: Program
    mode: SecurityMode
    colocated: bool
    seed: int | None = None

    def to_dict(self) -> dict:
        return {
            "comparator": self.comparator,
            "details": self.details,
            "seed": self.seed,
            "mode": self.mode.value,
            "colocated": self.colocated,
            "program": self.program.to_dict(),
        }


@dataclass
class DifferentialOutcome:
    program: Program
    wsrf: RunResult
    transfer: RunResult
    divergences: list = field(default_factory=list)

    @property
    def equivalent(self) -> bool:
        return not self.divergences


def _run_once(
    program: Program,
    stack: str,
    mode: SecurityMode,
    colocated: bool,
    perturb_stack: str | None,
    sanitize: bool = False,
) -> tuple[RunResult, SimSanitizer | None]:
    world = build_world(program.kind, stack, mode, colocated)
    if perturb_stack == stack:
        # A deliberately unfair wire for this stack only: lost and duplicated
        # messages change what the consumer observes, forcing a divergence.
        world.deployment.network.faults.set_default(FaultSpec.lossy(0.25))
    sanitizer = None
    if sanitize:
        sanitizer = SimSanitizer()
        world.deployment.network.sanitizer = sanitizer
    return world.run(program), sanitizer


def run_differential(
    program: Program,
    mode: SecurityMode = SecurityMode.NONE,
    colocated: bool = True,
    *,
    replay: bool = False,
    perturb_stack: str | None = None,
    seed: int | None = None,
    sanitize: bool = False,
) -> DifferentialOutcome:
    """Run ``program`` on both stacks and compare.  Deterministic: the
    outcome is a pure function of (program, mode, colocated, perturb).

    With ``sanitize`` each run carries a :class:`SimSanitizer`; any
    cross-host mutation without an intervening transmission is reported
    as a ``sanitizer`` divergence — within-run memory discipline checked
    alongside the cross-stack comparison.
    """
    wsrf, wsrf_sanitizer = _run_once(
        program, "wsrf", mode, colocated, perturb_stack, sanitize
    )
    transfer, transfer_sanitizer = _run_once(
        program, "transfer", mode, colocated, perturb_stack, sanitize
    )
    outcome = DifferentialOutcome(program, wsrf, transfer)
    for stack, sanitizer in (("wsrf", wsrf_sanitizer), ("transfer", transfer_sanitizer)):
        if sanitizer is not None and not sanitizer.clean:
            outcome.divergences.append(
                Divergence(
                    "sanitizer",
                    [f"{stack}: {line}" for line in sanitizer.report()],
                    program,
                    mode,
                    colocated,
                    seed,
                )
            )
    for name, comparator in COMPARATORS.items():
        details = comparator(program, wsrf, transfer)
        if details:
            outcome.divergences.append(
                Divergence(name, details, program, mode, colocated, seed)
            )
    if replay:
        for stack, first in (("wsrf", wsrf), ("transfer", transfer)):
            second, _ = _run_once(program, stack, mode, colocated, perturb_stack)
            details = compare_replay(stack, first, second)
            if details:
                outcome.divergences.append(
                    Divergence("replay", details, program, mode, colocated, seed)
                )
    return outcome


def diverges(
    program: Program,
    mode: SecurityMode,
    colocated: bool,
    *,
    perturb_stack: str | None = None,
) -> bool:
    """Predicate form used by the shrinker."""
    try:
        outcome = run_differential(
            program, mode, colocated, perturb_stack=perturb_stack
        )
    except Exception:
        # A program the worlds cannot even execute (e.g. the shrinker removed
        # the Discover a Reserve depended on) is not a divergence.
        return False
    return not outcome.equivalent
