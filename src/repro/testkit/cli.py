"""``python -m repro conformance`` — the differential conformance sweep.

With no options, runs the fixed tier-1 corpus: 54 seeded counter programs
spread round-robin over the paper's six security×placement cells, 6
seeded Grid-in-a-Box programs over the three security modes, and 6 seeded
datagrid programs over all six cells — 66 programs, 132+ stack
executions, each compared op-by-op.  ``--seeds N --seed S`` grows/offsets
the counter corpus for soak runs.

Every divergence is shrunk to a minimal reproducer before reporting, and
the report carries (seed, mode) so ``--seed`` replays it exactly.  Results
land in ``results/conformance_summary.json`` (always) and
``results/conformance_divergences.json`` (only when something diverged —
its absence after a run is the green light).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.container.security import SecurityMode
from repro.testkit.generator import generate_program
from repro.testkit.harness import ALL_MODES, mode_label, run_differential
from repro.testkit.shrinker import shrink

#: Fixed tier-1 corpus sizes (54 + 6 + 6 ≥ the 50 the roadmap asks).
DEFAULT_COUNTER_SEEDS = 54
DEFAULT_GIAB_SEEDS = 6
DEFAULT_DATAGRID_SEEDS = 6
#: GiaB and datagrid seeds live in their own ranges so growing the counter
#: corpus never reshuffles them.
GIAB_SEED_BASE = 100_000
DATAGRID_SEED_BASE = 200_000
#: Every Nth program also replays each stack from scratch and asserts the
#: rerun is bit-identical (the within-stack determinism half of the claim).
REPLAY_EVERY = 10

#: The GiaB VO topology is fixed (central container + one per node), so its
#: cells are the three security modes; placement varies only for counters.
GIAB_MODES = (SecurityMode.NONE, SecurityMode.X509, SecurityMode.HTTPS)


def _plan(
    counter_seeds: int, base_seed: int, giab_seeds: int, datagrid_seeds: int
) -> list[tuple]:
    jobs = []
    for index in range(counter_seeds):
        mode, colocated = ALL_MODES[index % len(ALL_MODES)]
        jobs.append(("counter", base_seed + index, mode, colocated))
    for index in range(giab_seeds):
        mode = GIAB_MODES[index % len(GIAB_MODES)]
        jobs.append(("giab", GIAB_SEED_BASE + base_seed + index, mode, True))
    for index in range(datagrid_seeds):
        # The datagrid container/client split varies like the counter one,
        # so its seeds sweep all six security×placement cells.
        mode, colocated = ALL_MODES[index % len(ALL_MODES)]
        jobs.append(("datagrid", DATAGRID_SEED_BASE + base_seed + index, mode, colocated))
    return jobs


def run_conformance(
    counter_seeds: int = DEFAULT_COUNTER_SEEDS,
    base_seed: int = 0,
    giab_seeds: int = DEFAULT_GIAB_SEEDS,
    out_dir: str = "results",
    verbose: bool = True,
    sanitize: bool = False,
    datagrid_seeds: int = DEFAULT_DATAGRID_SEEDS,
) -> dict:
    """Run the sweep; returns (and writes) the summary dict.

    With ``sanitize`` every stack execution carries the sim-state
    sanitizer (see :mod:`repro.sim.sanitizer`); violations surface as
    ``sanitizer`` divergences in the report.
    """
    jobs = _plan(counter_seeds, base_seed, giab_seeds, datagrid_seeds)
    by_cell: dict[str, int] = {}
    divergences = []
    invalid = 0
    replayed = 0
    ops_executed = 0
    for kind, seed, mode, colocated in jobs:
        program = generate_program(seed, kind)
        cell = mode_label(mode, colocated)
        by_cell[cell] = by_cell.get(cell, 0) + 1
        replay = seed % REPLAY_EVERY == 0
        try:
            outcome = run_differential(
                program, mode, colocated, replay=replay, seed=seed,
                sanitize=sanitize,
            )
        except RuntimeError as exc:
            # The worlds refuse programs that express documented stack
            # asymmetries (see worlds.py); a mutated program can land there.
            # Not a divergence — but count it so a generator regression that
            # floods the corpus with invalid programs is visible.
            invalid += 1
            if verbose:
                print(f"  invalid: {kind} seed={seed} {cell}: {exc}")
            continue
        replayed += 2 if replay else 0
        ops_executed += 2 * len(program)
        for divergence in outcome.divergences:
            small = shrink(
                program, mode, colocated
            ) if divergence.comparator != "replay" else program
            record = divergence.to_dict()
            record["shrunk"] = small.to_dict()
            record["shrunk_length"] = len(small)
            divergences.append(record)
            if verbose:
                print(
                    f"  DIVERGENCE {kind} seed={seed} {cell} "
                    f"[{divergence.comparator}] shrunk to {len(small)} ops"
                )
                for line in divergence.details[:4]:
                    print(f"    {line}")
    summary = {
        "programs": len(jobs),
        "stacks": ["wsrf", "transfer"],
        "counter_seeds": counter_seeds,
        "giab_seeds": giab_seeds,
        "datagrid_seeds": datagrid_seeds,
        "base_seed": base_seed,
        "cells": dict(sorted(by_cell.items())),
        "stack_executions": 2 * (len(jobs) - invalid) + replayed,
        "ops_compared": ops_executed // 2,
        "invalid_programs": invalid,
        "divergences": len(divergences),
        "sanitized": sanitize,
    }
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    (out / "conformance_summary.json").write_text(
        json.dumps(summary, indent=2) + "\n"
    )
    divergence_path = out / "conformance_divergences.json"
    if divergences:
        divergence_path.write_text(json.dumps(divergences, indent=2) + "\n")
    elif divergence_path.exists():
        divergence_path.unlink()
    if verbose:
        print(
            f"conformance: {summary['programs']} programs "
            f"({counter_seeds} counter + {giab_seeds} giab + "
            f"{datagrid_seeds} datagrid), "
            f"{summary['stack_executions']} stack executions, "
            f"{summary['ops_compared']} ops compared, "
            f"{summary['divergences']} divergences, "
            f"{invalid} invalid"
        )
    return summary


def conformance_main(argv: list[str]) -> int:
    """Argument handling for the ``conformance`` subcommand."""
    counter_seeds = DEFAULT_COUNTER_SEEDS
    giab_seeds = DEFAULT_GIAB_SEEDS
    datagrid_seeds = DEFAULT_DATAGRID_SEEDS
    base_seed = 0
    out_dir = "results"
    sanitize = False
    arguments = list(argv)
    while arguments:
        flag = arguments.pop(0)
        if flag == "--seeds" and arguments:
            counter_seeds = int(arguments.pop(0))
        elif flag == "--giab-seeds" and arguments:
            giab_seeds = int(arguments.pop(0))
        elif flag == "--datagrid-seeds" and arguments:
            datagrid_seeds = int(arguments.pop(0))
        elif flag == "--seed" and arguments:
            base_seed = int(arguments.pop(0))
        elif flag == "--out" and arguments:
            out_dir = arguments.pop(0)
        elif flag == "--sanitize":
            sanitize = True
        else:
            print(
                "usage: python -m repro conformance "
                "[--seeds N] [--giab-seeds N] [--datagrid-seeds N] "
                "[--seed S] [--out DIR] [--sanitize]"
            )
            return 2
    summary = run_conformance(
        counter_seeds, base_seed, giab_seeds, out_dir, sanitize=sanitize,
        datagrid_seeds=datagrid_seeds,
    )
    return 1 if summary["divergences"] else 0
