"""repro.testkit — the differential dual-stack conformance harness.

The paper's core claim is architectural equivalence: the same grid
applications run over WSRF/WS-Notification and over the lighter
WS-Transfer/WS-Eventing stack.  This package turns that claim into an
executable property.  Scenario *programs* written in a tiny stack-
agnostic op DSL (:mod:`~repro.testkit.ops`) are executed against both
stacks (:mod:`~repro.testkit.worlds`) across the paper's six
security×placement cells, and pluggable comparators
(:mod:`~repro.testkit.comparators`) assert that observable results,
fault taxonomy, notification streams and per-op virtual costs agree.
A seeded fuzzer (:mod:`~repro.testkit.generator`) manufactures programs
and adversarial mutations; :mod:`~repro.testkit.shrinker` reduces any
divergence to a minimal reproducer; ``python -m repro conformance``
(:mod:`~repro.testkit.cli`) drives the whole sweep.
"""

from repro.testkit.comparators import (
    COMPARATORS,
    COST_TOLERANCES_MS,
    FAULT_FAMILIES,
    fault_family,
    fault_signature,
)
from repro.testkit.generator import (
    HOSTILE_TEXT,
    TIME_QUANTUM_MS,
    generate_program,
    mutate,
    random_xml_element,
)
from repro.testkit.harness import (
    ALL_MODES,
    DifferentialOutcome,
    Divergence,
    diverges,
    mode_label,
    run_differential,
)
from repro.testkit.ops import Op, OP_TYPES, Program, op_from_dict
from repro.testkit.shrinker import shrink
from repro.testkit.worlds import RunResult, build_world

__all__ = [
    "ALL_MODES",
    "COMPARATORS",
    "COST_TOLERANCES_MS",
    "DifferentialOutcome",
    "Divergence",
    "FAULT_FAMILIES",
    "HOSTILE_TEXT",
    "Op",
    "OP_TYPES",
    "Program",
    "RunResult",
    "TIME_QUANTUM_MS",
    "build_world",
    "diverges",
    "fault_family",
    "fault_signature",
    "generate_program",
    "mode_label",
    "mutate",
    "op_from_dict",
    "random_xml_element",
    "run_differential",
    "shrink",
]
