"""Delta-debugging shrinker for divergent programs.

Given a program on which :func:`repro.testkit.harness.diverges` is true,
``shrink`` returns a (usually much) shorter program that still diverges
under the same (mode, colocated, perturb) cell.  Classic ddmin over the
op list, followed by a one-at-a-time sweep to squeeze out stragglers.

Removing an op can leave later ops without their prerequisites (a Get on
a never-created counter, a Reserve with no Discover).  That is fine: the
worlds either fault (both stacks, identically — not a divergence) or the
harness's ``diverges`` catches the crash and reports "no divergence", so
the candidate is simply rejected and the shrink continues elsewhere.
Validity is enforced by *rejection*, not by constraint propagation.
"""

from __future__ import annotations

from repro.testkit.harness import diverges
from repro.testkit.ops import Program


def shrink(
    program: Program,
    mode,
    colocated: bool,
    *,
    perturb_stack: str | None = None,
    max_probes: int = 400,
) -> Program:
    """Smallest found sub-program that still diverges.  Deterministic —
    no randomness, so the shrunk form is reproducible from the original."""

    probes = 0

    def still_diverges(candidate: Program) -> bool:
        nonlocal probes
        if probes >= max_probes:
            return False
        probes += 1
        return diverges(
            candidate, mode, colocated, perturb_stack=perturb_stack
        )

    if not still_diverges(program):
        # Nothing to do — the caller's predicate does not hold to begin with.
        return program

    current = list(program.ops)
    chunk = max(1, len(current) // 2)
    while chunk >= 1:
        index = 0
        removed_any = False
        while index < len(current):
            candidate = current[:index] + current[index + chunk :]
            if candidate and still_diverges(program.replace_ops(tuple(candidate))):
                current = candidate
                removed_any = True
                # Do not advance: the op now at `index` is new.
            else:
                index += chunk
        if chunk == 1 and not removed_any:
            break
        chunk = chunk // 2 if chunk > 1 else (1 if removed_any else 0)
    return program.replace_ops(tuple(current))
