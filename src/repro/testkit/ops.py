"""The stack-agnostic scenario-program DSL.

A *program* is a finite sequence of abstract operations naming resources
by program-local handles ("c0", "sub1", ...) rather than wire EPRs — the
same program runs unchanged against the WSRF/WS-Notification stack and
the WS-Transfer/WS-Eventing stack, and the conformance harness compares
what each stack *observably* did (DESIGN.md §12).

Three program kinds exist: ``counter`` programs exercise the CRUD +
subscription surface of the paper's counter service, ``giab`` programs
drive the Figure-5 Grid-in-a-Box flow, and ``datagrid`` programs exercise
the declared replica-catalog/data-transfer pair.  Every op (de)serialises
to a plain dict so divergence reports are replayable JSON.

Time is always *relative* here (``expires_in_ms``, ``AdvanceClock.ms``):
the two stacks sit at different absolute virtual instants after the same
prefix (their per-op costs differ), so absolute deadlines would never
line up.  World adapters resolve relative times against their own clock.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import ClassVar, Iterator


@dataclass(frozen=True)
class Op:
    """Base class: one abstract step of a scenario program."""

    kind: ClassVar[str] = "op"

    def to_dict(self) -> dict:
        record = {"op": self.kind}
        for f in fields(self):
            record[f.name] = getattr(self, f.name)
        return record


# -- counter-program ops ----------------------------------------------------------


@dataclass(frozen=True)
class CreateCounter(Op):
    kind: ClassVar[str] = "create"
    name: str = "c0"
    initial: int = 0


@dataclass(frozen=True)
class GetCounter(Op):
    kind: ClassVar[str] = "get"
    name: str = "c0"


@dataclass(frozen=True)
class SetCounter(Op):
    kind: ClassVar[str] = "set"
    name: str = "c0"
    value: int = 0


@dataclass(frozen=True)
class DestroyCounter(Op):
    kind: ClassVar[str] = "destroy"
    name: str = "c0"


@dataclass(frozen=True)
class Subscribe(Op):
    """Subscribe the program's consumer to one counter's value changes.

    ``expires_in_ms`` is relative to the subscribing instant; ``None``
    means no expiry (WSRF "infinity" / WS-Eventing absent Expires).
    """

    kind: ClassVar[str] = "subscribe"
    name: str = "c0"
    handle: str = "sub0"
    expires_in_ms: float | None = None


@dataclass(frozen=True)
class Renew(Op):
    kind: ClassVar[str] = "renew"
    handle: str = "sub0"
    expires_in_ms: float | None = None


@dataclass(frozen=True)
class GetStatus(Op):
    kind: ClassVar[str] = "status"
    handle: str = "sub0"


@dataclass(frozen=True)
class Unsubscribe(Op):
    kind: ClassVar[str] = "unsubscribe"
    handle: str = "sub0"


# -- shared ops -------------------------------------------------------------------


@dataclass(frozen=True)
class AdvanceClock(Op):
    """Let virtual time pass (fires lifetime timers, lapses leases)."""

    kind: ClassVar[str] = "advance"
    ms: float = 0.0


@dataclass(frozen=True)
class FaultToggle(Op):
    """Degrade (or restore) the whole wire.

    Only *delay* faults are allowed in conformance programs: loss,
    duplication and resets consume link-level retries whose RNG draw
    counts differ per stack, which would make the two runs diverge for
    reasons that are simulation artefacts, not protocol semantics.
    """

    kind: ClassVar[str] = "faults"
    delay_mean_ms: float = 0.0
    delay_jitter_ms: float = 0.0


# -- Grid-in-a-Box ops ------------------------------------------------------------


@dataclass(frozen=True)
class GiabDiscover(Op):
    kind: ClassVar[str] = "giab_discover"
    application: str = "sort"


@dataclass(frozen=True)
class GiabReserve(Op):
    """Reserve the ``site_index``-th host of the latest discovery."""

    kind: ClassVar[str] = "giab_reserve"
    site_index: int = 0


@dataclass(frozen=True)
class GiabUpload(Op):
    kind: ClassVar[str] = "giab_upload"
    name: str = "input.dat"
    content: str = "x"


@dataclass(frozen=True)
class GiabDownload(Op):
    kind: ClassVar[str] = "giab_download"
    name: str = "input.dat"


@dataclass(frozen=True)
class GiabListFiles(Op):
    kind: ClassVar[str] = "giab_list"


@dataclass(frozen=True)
class GiabSubmit(Op):
    kind: ClassVar[str] = "giab_submit"
    application: str = "sort"
    input_file: str = "input.dat"
    run_time_ms: float = 250.0
    exit_code: int = 0


@dataclass(frozen=True)
class GiabJobStatus(Op):
    kind: ClassVar[str] = "giab_status"


@dataclass(frozen=True)
class GiabAwaitJob(Op):
    """Advance the clock beyond the submitted job's run time."""

    kind: ClassVar[str] = "giab_await"
    grace_ms: float = 10.0


@dataclass(frozen=True)
class GiabDeleteFile(Op):
    kind: ClassVar[str] = "giab_delete"
    name: str = "input.dat"


@dataclass(frozen=True)
class GiabCheckAvailable(Op):
    """Observable release check: which hosts does discovery offer now?

    After the job exits and the lease lapses, both stacks must offer the
    reserved host again (WSRF releases automatically, WS-Transfer via the
    adapter's explicit unreserve — the paper's §4.2.2 asymmetry)."""

    kind: ClassVar[str] = "giab_available"
    application: str = "sort"


# -- datagrid ops -----------------------------------------------------------------


@dataclass(frozen=True)
class DgRegister(Op):
    kind: ClassVar[str] = "dg_register"
    logical_file: str = "lfn:f0"
    host: str = "se1.cern"


@dataclass(frozen=True)
class DgUnregister(Op):
    kind: ClassVar[str] = "dg_unregister"
    logical_file: str = "lfn:f0"
    host: str = "se1.cern"


@dataclass(frozen=True)
class DgLocate(Op):
    kind: ClassVar[str] = "dg_locate"
    logical_file: str = "lfn:f0"


@dataclass(frozen=True)
class DgListFiles(Op):
    kind: ClassVar[str] = "dg_list"


@dataclass(frozen=True)
class DgFilesOn(Op):
    kind: ClassVar[str] = "dg_files_on"
    host: str = "se1.cern"


@dataclass(frozen=True)
class DgReplicate(Op):
    """Replicate via the DataTransfer service (catalog out-call + link
    charge); the observation is the chosen source host."""

    kind: ClassVar[str] = "dg_replicate"
    logical_file: str = "lfn:f0"
    to_host: str = "se2.cern"


@dataclass(frozen=True)
class DgStageIn(Op):
    kind: ClassVar[str] = "dg_stage_in"
    logical_file: str = "lfn:f0"
    to_host: str = "se2.cern"


OP_TYPES: dict[str, type[Op]] = {
    cls.kind: cls
    for cls in (
        CreateCounter, GetCounter, SetCounter, DestroyCounter,
        Subscribe, Renew, GetStatus, Unsubscribe,
        AdvanceClock, FaultToggle,
        GiabDiscover, GiabReserve, GiabUpload, GiabDownload, GiabListFiles,
        GiabSubmit, GiabJobStatus, GiabAwaitJob, GiabDeleteFile,
        GiabCheckAvailable,
        DgRegister, DgUnregister, DgLocate, DgListFiles, DgFilesOn,
        DgReplicate, DgStageIn,
    )
}

COUNTER_KINDS = frozenset(
    k for k in OP_TYPES if not k.startswith(("giab_", "dg_"))
)
GIAB_KINDS = frozenset(
    k for k in OP_TYPES if k.startswith("giab_") or k in ("advance", "faults")
)
DATAGRID_KINDS = frozenset(
    k for k in OP_TYPES if k.startswith("dg_") or k in ("advance", "faults")
)


def op_from_dict(record: dict) -> Op:
    record = dict(record)
    kind = record.pop("op")
    cls = OP_TYPES.get(kind)
    if cls is None:
        raise ValueError(f"unknown op kind: {kind!r}")
    return cls(**record)


@dataclass(frozen=True)
class Program:
    """One scenario: an op sequence plus the kind of world it runs in."""

    kind: str  # "counter" | "giab" | "datagrid"
    ops: tuple[Op, ...]

    def __post_init__(self) -> None:
        allowed_by_kind = {
            "counter": COUNTER_KINDS,
            "giab": GIAB_KINDS,
            "datagrid": DATAGRID_KINDS,
        }
        if self.kind not in allowed_by_kind:
            raise ValueError(f"unknown program kind: {self.kind!r}")
        allowed = allowed_by_kind[self.kind]
        for op in self.ops:
            if op.kind not in allowed:
                raise ValueError(f"{op.kind} op is not valid in a {self.kind} program")

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[Op]:
        return iter(self.ops)

    def replace_ops(self, ops: tuple[Op, ...]) -> "Program":
        return Program(self.kind, tuple(ops))

    def to_dict(self) -> dict:
        return {"kind": self.kind, "ops": [op.to_dict() for op in self.ops]}

    @classmethod
    def from_dict(cls, record: dict) -> "Program":
        return cls(
            record["kind"], tuple(op_from_dict(op) for op in record["ops"])
        )
