"""Equivalence comparators for differential runs.

Each comparator inspects the same program's two :class:`RunResult`s (one
per stack) and returns a list of human-readable divergence strings —
empty means the stacks agreed on that dimension.  The registry at the
bottom is what the harness runs; plug in more by adding to it.

Fault taxonomy
--------------
Faults are compared by *family*, not by message: both stacks raise
WS-BaseFaults with stable ``ErrorCode``s for the same client mistake
(destroy-after-destroy, renew-after-expiry → ``ResourceUnknownFault``),
but spec vocabulary legitimately differs in places — WSRF says
``UnableToSetTerminationTimeFault`` where WS-Eventing says
``InvalidExpirationTimeFault`` for the same bad lease instant.  The
``FAULT_FAMILIES`` table folds those synonyms together; everything else
compares by its literal error code (so a genuinely new divergence shows
up instead of vanishing into a bucket).

Costs
-----
Per-op virtual cost is compared cross-stack against *declared per-op-kind
tolerances* — the paper's claim is "comparable", not "identical", and
e.g. WSRF's StartJob legitimately pays several more signed out-calls than
WS-Transfer's (Figure 6).  Within one stack, a replayed run must match
*exactly* (bit-identical floats), the same standard today's golden cost
ledgers enforce.
"""

from __future__ import annotations

from repro.soap.envelope import SoapFault
from repro.wsrf.basefaults import is_base_fault
from repro.xmllib import ns, text_of

#: Spec-synonym folding: error codes that mean the same client mistake.
FAULT_FAMILIES: dict[str, str] = {
    "ResourceUnknownFault": "unknown-resource",
    "UnableToSetTerminationTimeFault": "invalid-lease-time",
    "InvalidExpirationTimeFault": "invalid-lease-time",
    "InvalidTopicExpressionFault": "invalid-topic",
    "InvalidResourcePropertyQNameFault": "unknown-property",
}


def fault_signature(fault: SoapFault) -> tuple[str, str]:
    """(SOAP code, WS-BaseFaults ErrorCode) — stable across runs."""
    error_code = ""
    if is_base_fault(fault):
        error_code = text_of(fault.detail.find(f"{{{ns.WSRF_BF}}}ErrorCode"))
    return fault.code, error_code


def fault_family(fault: SoapFault) -> str:
    """The normalized taxonomy bucket a fault compares under."""
    code, error_code = fault_signature(fault)
    if error_code:
        return FAULT_FAMILIES.get(error_code, error_code)
    return f"soap:{code}"


# -- comparators ------------------------------------------------------------------


def compare_results(program, wsrf, transfer) -> list:
    """Op-by-op observable outcomes (values, acks, fault families)."""
    divergences = []
    for index, (a, b) in enumerate(zip(wsrf.steps, transfer.steps)):
        if a != b:
            divergences.append(
                f"op[{index}] ({program.ops[index].kind}): wsrf observed {a[1]!r}, "
                f"transfer observed {b[1]!r}"
            )
    return divergences


def compare_events(program, wsrf, transfer) -> list:
    """The notification streams, normalized by the worlds."""
    if wsrf.events == transfer.events:
        return []
    return [
        f"notification streams differ: wsrf delivered {wsrf.events!r}, "
        f"transfer delivered {transfer.events!r}"
    ]


#: Cross-stack per-op cost tolerance in virtual ms, by op kind.  Generous by
#: design: the stacks are *comparable*, not identical, and WSRF pays extra
#: out-calls on several paths.  Tightening one of these is how a future perf
#: claim gets enforced.
COST_TOLERANCES_MS: dict[str, float] = {
    "create": 60.0,
    "get": 40.0,
    "set": 60.0,
    "destroy": 40.0,
    "subscribe": 60.0,
    "renew": 60.0,
    "status": 40.0,
    "unsubscribe": 60.0,
    "advance": 150.0,
    "faults": 1.0,
    "giab_discover": 250.0,
    "giab_reserve": 80.0,
    "giab_upload": 300.0,
    "giab_download": 120.0,
    "giab_list": 80.0,
    "giab_submit": 500.0,
    "giab_status": 250.0,
    "giab_await": 250.0,
    "giab_delete": 80.0,
    "giab_available": 250.0,
}

_DEFAULT_TOLERANCE_MS = 100.0


def compare_costs(program, wsrf, transfer) -> list:
    """Per-op virtual cost within the declared cross-stack envelope."""
    divergences = []
    for index, (a, b) in enumerate(zip(wsrf.elapsed_by_op, transfer.elapsed_by_op)):
        kind = program.ops[index].kind
        tolerance = COST_TOLERANCES_MS.get(kind, _DEFAULT_TOLERANCE_MS)
        if abs(a - b) > tolerance:
            divergences.append(
                f"op[{index}] ({kind}): cost delta {abs(a - b):.3f}ms exceeds "
                f"declared tolerance {tolerance}ms (wsrf {a:.3f}, transfer {b:.3f})"
            )
    return divergences


def compare_replay(stack: str, first, second) -> list:
    """Within-stack determinism: a replayed run must match *exactly* —
    the same bit-identical standard as tests/pipeline's golden ledgers."""
    divergences = []
    if first.steps != second.steps:
        divergences.append(f"{stack}: replay produced different observations")
    if first.events != second.events:
        divergences.append(f"{stack}: replay produced a different event stream")
    if first.elapsed_by_op != second.elapsed_by_op:
        divergences.append(f"{stack}: replay cost ledger is not bit-identical")
    return divergences


#: The pluggable registry the harness runs, in order.
COMPARATORS = {
    "results": compare_results,
    "events": compare_events,
    "costs": compare_costs,
}
