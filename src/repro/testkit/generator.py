"""The deterministic seeded fuzzer: programs, mutations, XML generators.

Everything here draws from one explicit ``random.Random(seed)`` — no
wall-clock, no global RNG — so a program is a pure function of its seed
and any divergence report replays from ``(seed, mode)`` alone.

Programs are *valid by construction*: handles are created before use,
expiries are relative and quantized coarsely enough that per-op cost
differences between the stacks (tens of virtual ms) can never land the
two runs on opposite sides of a lease boundary (quantum 60 s ≫ drift).
The mutation pass then deliberately bends programs toward historical
divergence territory — duplicated destroys, lapsed leases, delayed wires,
reordered neighbours — all of which the stacks must *still* agree on
(typically by faulting identically).

Generation rules that encode *documented* stack asymmetries (DESIGN.md
§12) rather than bugs:

* never Set a destroyed counter — WS-Transfer Put resurrects
  out-of-band resources (§3.2) where WSRF faults;
* never Subscribe to a destroyed counter — WS-Eventing subscribes to the
  *service* with a filter, so it cannot tell the counter is gone;
* lease instants are always in the future — WSRF accepts a past
  InitialTerminationTime (the timer fires immediately) where WS-Eventing
  refuses it at Subscribe time.
"""

from __future__ import annotations

import random

from repro.testkit import ops as op
from repro.testkit.ops import Program

#: Lease/advance quantum (virtual ms).  Cross-stack per-op cost drift over a
#: whole program is bounded well under this, so a lease can never be live on
#: one stack and lapsed on the other at the same program point.
TIME_QUANTUM_MS = 60_000.0

#: XML-hostile text fragments the GiaB upload mutation splices in: every
#: escaping hazard must round-trip identically through both stacks' wires.
HOSTILE_TEXT = (
    "plain",
    "a<b&c>d",
    "quotes '\" here",
    "]]> cdata-breaker",
    "white  space\n\tand tabs",
    "unicode é☃中文",
    "&amp; pre-escaped &lt;looking&gt;",
)


class _CounterState:
    """Symbolic state the generator tracks to stay valid-by-construction."""

    def __init__(self) -> None:
        self.live: list[str] = []
        self.destroyed: list[str] = []
        self.subs: list[str] = []  # handles, live or lapsed — both are fair game
        self.next_counter = 0
        self.next_sub = 0

    def new_counter(self) -> str:
        name = f"c{self.next_counter}"
        self.next_counter += 1
        self.live.append(name)
        return name

    def new_sub(self) -> str:
        handle = f"sub{self.next_sub}"
        self.next_sub += 1
        self.subs.append(handle)
        return handle


def generate_counter_program(rng: random.Random, length: int | None = None) -> Program:
    """A valid counter scenario of ``length`` ops (default 8-16)."""
    length = length if length is not None else rng.randint(8, 16)
    state = _CounterState()
    body: list[op.Op] = [op.CreateCounter(state.new_counter(), rng.randint(0, 9))]
    while len(body) < length:
        body.append(_next_counter_op(rng, state))
    return Program("counter", tuple(body))


def _next_counter_op(rng: random.Random, state: _CounterState) -> op.Op:
    choices = ["create", "advance"]
    if state.live:
        choices += ["get", "get", "set", "set", "subscribe", "destroy"]
    if state.subs:
        choices += ["renew", "status", "unsubscribe"]
    if state.destroyed:
        # Use-after-destroy probes: both stacks must fault identically.
        choices += ["get_dead", "destroy_dead"]
    kind = rng.choice(choices)
    if kind == "create":
        return op.CreateCounter(state.new_counter(), rng.randint(0, 9))
    if kind == "get":
        return op.GetCounter(rng.choice(state.live))
    if kind == "set":
        return op.SetCounter(rng.choice(state.live), rng.randint(0, 99))
    if kind == "subscribe":
        expires = (
            None
            if rng.random() < 0.5
            else TIME_QUANTUM_MS * rng.randint(1, 3)
        )
        return op.Subscribe(rng.choice(state.live), state.new_sub(), expires)
    if kind == "destroy":
        name = rng.choice(state.live)
        state.live.remove(name)
        state.destroyed.append(name)
        return op.DestroyCounter(name)
    if kind == "renew":
        expires = (
            None if rng.random() < 0.3 else TIME_QUANTUM_MS * rng.randint(1, 3)
        )
        return op.Renew(rng.choice(state.subs), expires)
    if kind == "status":
        return op.GetStatus(rng.choice(state.subs))
    if kind == "unsubscribe":
        handle = rng.choice(state.subs)
        state.subs.remove(handle)
        return op.Unsubscribe(handle)
    if kind == "get_dead":
        return op.GetCounter(rng.choice(state.destroyed))
    if kind == "destroy_dead":
        return op.DestroyCounter(rng.choice(state.destroyed))
    return op.AdvanceClock(TIME_QUANTUM_MS * rng.randint(1, 2))


def generate_giab_program(rng: random.Random) -> Program:
    """A Figure-5 flow with seeded variation in payloads and probing."""
    content = rng.choice(HOSTILE_TEXT) * rng.randint(1, 3)
    exit_code = rng.choice((0, 0, 0, 3))
    body: list[op.Op] = [
        op.GiabDiscover("sort"),
        op.GiabReserve(rng.randrange(4)),
        op.GiabUpload("input.dat", content),
    ]
    if rng.random() < 0.5:
        body.append(op.GiabListFiles())
    if rng.random() < 0.5:
        body.append(op.GiabDownload("input.dat"))
    body.append(
        op.GiabSubmit("sort", "input.dat", run_time_ms=250.0, exit_code=exit_code)
    )
    if rng.random() < 0.5:
        body.append(op.GiabJobStatus())
    body.append(op.GiabAwaitJob())
    body.append(op.GiabJobStatus())
    if rng.random() < 0.5:
        body.append(op.GiabDeleteFile("input.dat"))
    body.append(op.GiabCheckAvailable("sort"))
    return Program("giab", tuple(body))


#: The datagrid scenario's storage-element vocabulary (two CERN hosts on a
#: LAN, one FNAL host across the WAN) plus hosts with no container anywhere
#: near them — replicas live in the catalog, not on deployed services.
DATAGRID_HOSTS = ("se1.cern", "se2.cern", "se1.fnal", "se2.fnal", "se1.ral")


def generate_datagrid_program(rng: random.Random, length: int | None = None) -> Program:
    """A replica-catalog/transfer scenario of ``length`` ops (default 8-16).

    Unlike the counter generator there are *no* validity hazards to dodge:
    both stacks run the same logic layer, so probes of unknown files,
    double registrations and replicate-to-holder all fault identically —
    the generator emits them freely."""
    length = length if length is not None else rng.randint(8, 16)
    files: list[str] = []
    next_file = 0
    body: list[op.Op] = []
    while len(body) < length:
        choices = ["register", "list"]
        if files:
            choices += [
                "register_dup", "locate", "locate", "files_on",
                "replicate", "replicate", "stage_in", "stage_in", "unregister",
            ]
        else:
            choices += ["locate_unknown"]
        kind = rng.choice(choices)
        if kind == "register":
            name = f"lfn:f{next_file}"
            next_file += 1
            files.append(name)
            body.append(op.DgRegister(name, rng.choice(DATAGRID_HOSTS)))
        elif kind == "register_dup":
            # May or may not collide with the existing replica set — either
            # way both stacks must agree (ok or "already holds" fault).
            body.append(op.DgRegister(rng.choice(files), rng.choice(DATAGRID_HOSTS)))
        elif kind == "locate":
            body.append(op.DgLocate(rng.choice(files)))
        elif kind == "locate_unknown":
            body.append(op.DgLocate("lfn:never-registered"))
        elif kind == "files_on":
            body.append(op.DgFilesOn(rng.choice(DATAGRID_HOSTS)))
        elif kind == "replicate":
            body.append(op.DgReplicate(rng.choice(files), rng.choice(DATAGRID_HOSTS)))
        elif kind == "stage_in":
            body.append(op.DgStageIn(rng.choice(files), rng.choice(DATAGRID_HOSTS)))
        elif kind == "unregister":
            body.append(op.DgUnregister(rng.choice(files), rng.choice(DATAGRID_HOSTS)))
        else:
            body.append(op.DgListFiles())
    return Program("datagrid", tuple(body))


# -- mutations --------------------------------------------------------------------


def _mutate_duplicate(rng: random.Random, program: Program) -> Program:
    """Replay one op verbatim (destroy-after-destroy, double unsubscribe)."""
    index = rng.randrange(len(program.ops))
    body = list(program.ops)
    body.insert(index + 1, body[index])
    return program.replace_ops(tuple(body))


#: GiaB ops whose relative order is structural (Figure 5's flow): swapping
#: them produces programs the world refuses (reserve-before-discover) or
#: that probe *placement of authorization checks* rather than protocol
#: equivalence (upload-before-reserve).
_GIAB_STRUCTURAL = (
    op.GiabDiscover,
    op.GiabReserve,
    op.GiabUpload,
    op.GiabSubmit,
    op.GiabAwaitJob,
)


def _swap_hazard(a: op.Op, b: op.Op) -> bool:
    """Would swapping adjacent (a, b) put a Set/Subscribe outside its
    counter's lifetime, or scramble the GiaB flow?  Those programs express
    the *documented* stack asymmetries (Put resurrection, service-scoped
    Subscribe) that the worlds refuse to run — see CounterWorld.apply."""
    if isinstance(a, _GIAB_STRUCTURAL) and isinstance(b, _GIAB_STRUCTURAL):
        return True
    for first, second in ((a, b), (b, a)):
        if isinstance(first, (op.CreateCounter, op.DestroyCounter)) and isinstance(
            second, (op.SetCounter, op.Subscribe)
        ):
            if first.name == second.name:
                return True
    return False


def _mutate_reorder(rng: random.Random, program: Program) -> Program:
    """Swap two adjacent ops (messages arriving 'late')."""
    if len(program.ops) < 2:
        return program
    candidates = [
        i
        for i in range(len(program.ops) - 1)
        if not _swap_hazard(program.ops[i], program.ops[i + 1])
    ]
    if not candidates:
        return program
    index = rng.choice(candidates)
    body = list(program.ops)
    body[index], body[index + 1] = body[index + 1], body[index]
    return program.replace_ops(tuple(body))


def _mutate_lapse_lease(rng: random.Random, program: Program) -> Program:
    """Shorten one subscription's lease and let it expire before first use:
    every later Renew/GetStatus/Unsubscribe probes renew-after-expiry."""
    subs = [
        i for i, o in enumerate(program.ops) if isinstance(o, op.Subscribe)
    ]
    if not subs:
        return program
    index = rng.choice(subs)
    body = list(program.ops)
    subscribed = body[index]
    body[index] = op.Subscribe(subscribed.name, subscribed.handle, TIME_QUANTUM_MS)
    body.insert(index + 1, op.AdvanceClock(TIME_QUANTUM_MS * 2))
    return program.replace_ops(tuple(body))


def _mutate_delay_wire(rng: random.Random, program: Program) -> Program:
    """Bracket a slice of the program with a degraded (delay-only) wire."""
    if program.kind != "counter" or len(program.ops) < 2:
        return program
    start = rng.randrange(len(program.ops))
    body = list(program.ops)
    body.insert(start, op.FaultToggle(delay_mean_ms=2.0, delay_jitter_ms=1.0))
    body.append(op.FaultToggle())
    return program.replace_ops(tuple(body))


def _mutate_hostile_payload(rng: random.Random, program: Program) -> Program:
    """Swap a GiaB upload's content for an XML-escaping hazard."""
    uploads = [
        i for i, o in enumerate(program.ops) if isinstance(o, op.GiabUpload)
    ]
    if not uploads:
        return program
    index = rng.choice(uploads)
    body = list(program.ops)
    body[index] = op.GiabUpload(body[index].name, rng.choice(HOSTILE_TEXT))
    return program.replace_ops(tuple(body))


MUTATIONS = (
    _mutate_duplicate,
    _mutate_reorder,
    _mutate_lapse_lease,
    _mutate_delay_wire,
    _mutate_hostile_payload,
)


def mutate(rng: random.Random, program: Program, rounds: int = 1) -> Program:
    for _ in range(rounds):
        program = rng.choice(MUTATIONS)(rng, program)
    return program


def generate_program(seed: int, kind: str = "counter") -> Program:
    """The fuzzer's front door: seed → program, deterministically."""
    rng = random.Random(seed)
    if kind == "counter":
        program = generate_counter_program(rng)
    elif kind == "giab":
        program = generate_giab_program(rng)
    elif kind == "datagrid":
        program = generate_datagrid_program(rng)
    else:
        raise ValueError(f"unknown program kind: {kind!r}")
    if rng.random() < 0.6:
        program = mutate(rng, program, rounds=rng.randint(1, 2))
    return program


# -- seeded XML generators (shared with the xmllib round-trip tests) --------------

_NAME_ALPHABET = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
_NAME_TAIL = _NAME_ALPHABET + "0123456789-._"
_NAMESPACES = (
    "",
    "urn:testkit:alpha",
    "urn:testkit:beta",
    "urn:testkit:names/with/slashes",
)


def random_name(rng: random.Random) -> str:
    head = rng.choice(_NAME_ALPHABET)
    tail = "".join(rng.choice(_NAME_TAIL) for _ in range(rng.randint(0, 8)))
    return head + tail


def random_text(rng: random.Random) -> str:
    return rng.choice(HOSTILE_TEXT)


def random_xml_element(rng: random.Random, depth: int = 0):
    """A random well-formed tree exercising namespaces, attributes and
    every text-escaping hazard in :data:`HOSTILE_TEXT`."""
    from repro.xmllib import element

    namespace = rng.choice(_NAMESPACES)
    tag = f"{{{namespace}}}{random_name(rng)}" if namespace else random_name(rng)
    node = element(tag)
    for _ in range(rng.randint(0, 2)):
        node.set(random_name(rng), random_text(rng))
    for _ in range(rng.randint(0, 3 if depth < 3 else 0)):
        if rng.random() < 0.5:
            node.append(random_text(rng))
        else:
            node.append(random_xml_element(rng, depth + 1))
    if not node.children and rng.random() < 0.5:
        node.append(random_text(rng))
    return node
