"""Baseline files: known, justified findings that do not fail the build.

A baseline is a JSON document::

    {
      "version": 1,
      "entries": [
        {
          "rule": "RPO05",
          "path": "src/repro/bench/giab.py",
          "symbol": "_measure_wsrf",
          "message": "...exact finding message...",
          "justification": "why this one is intentional"
        }
      ]
    }

Matching is by the same (rule, path, symbol, message) tuple that forms a
finding's fingerprint, so entries survive line-number drift but are
invalidated the moment the underlying code (and hence the message or
symbol) changes — a stale suppression fails the run instead of rotting.
Every entry must carry a non-empty ``justification``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.analysis.findings import Finding

BASELINE_VERSION = 1

#: The file the CLI auto-loads from the working directory when --baseline
#: is not given (kept at the repository root).
DEFAULT_BASELINE_NAME = "lint-baseline.json"


class BaselineError(ValueError):
    """Raised for malformed baseline documents."""


@dataclass
class Baseline:
    """A set of accepted findings keyed by fingerprint."""

    entries: dict[str, dict] = field(default_factory=dict)
    path: str = ""

    def covers(self, finding: Finding) -> bool:
        return finding.fingerprint in self.entries

    def justification_for(self, finding: Finding) -> str:
        entry = self.entries.get(finding.fingerprint)
        return entry.get("justification", "") if entry else ""

    def __len__(self) -> int:
        return len(self.entries)

    # -- serialization -------------------------------------------------------

    @classmethod
    def from_findings(cls, findings: list[Finding], justification: str) -> "Baseline":
        baseline = cls()
        for finding in findings:
            baseline.entries[finding.fingerprint] = {
                "rule": finding.rule,
                "path": finding.path,
                "symbol": finding.symbol,
                "message": finding.message,
                "justification": justification,
            }
        return baseline

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        if not isinstance(document, dict) or document.get("version") != BASELINE_VERSION:
            raise BaselineError(f"{path}: not a version-{BASELINE_VERSION} baseline")
        baseline = cls(path=path)
        for index, entry in enumerate(document.get("entries", [])):
            missing = {"rule", "path", "symbol", "message"} - set(entry)
            if missing:
                raise BaselineError(f"{path}: entry {index} lacks {sorted(missing)}")
            if not entry.get("justification", "").strip():
                raise BaselineError(
                    f"{path}: entry {index} ({entry['rule']} in {entry['path']}) "
                    "has no justification"
                )
            shadow = Finding(
                rule=entry["rule"],
                path=entry["path"],
                line=0,
                col=0,
                symbol=entry["symbol"],
                message=entry["message"],
            )
            baseline.entries[shadow.fingerprint] = dict(entry)
        return baseline

    def save(self, path: str) -> None:
        document = {
            "version": BASELINE_VERSION,
            "entries": [
                self.entries[fingerprint]
                for fingerprint in sorted(
                    self.entries,
                    key=lambda fp: (
                        self.entries[fp]["path"],
                        self.entries[fp]["rule"],
                        self.entries[fp]["symbol"],
                    ),
                )
            ],
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=False)
            handle.write("\n")
        self.path = path
