"""Baseline files: known, justified findings that do not fail the build.

A version-2 baseline is a JSON document::

    {
      "version": 2,
      "entries": [
        {
          "rule": "RPO05",
          "path": "src/repro/bench/giab.py",
          "symbol": "_measure_wsrf",
          "message": "...finding message...",
          "justification": "why this one is intentional"
        }
      ]
    }

Matching is by the *normalized* (rule, path, symbol, message) tuple —
whitespace collapsed, digit runs replaced by ``#`` — so entries survive
line-number drift, message reflows, and count changes ("after 3
attempts" vs "after 5 attempts"), but are invalidated the moment the
code changes what the finding actually says.  A stale suppression fails
the run instead of rotting.  Every entry must carry a non-empty
``justification``.

Version-1 documents (exact-message matching) still load: their entries
are re-keyed by the normalized fingerprint on the fly, and saving any
baseline writes version 2 — so ``--write-baseline`` over an old file is
the migration.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.analysis.findings import Finding

BASELINE_VERSION = 2

#: Document versions ``load`` accepts; anything else is an error.
SUPPORTED_VERSIONS = (1, 2)

#: The file the CLI auto-loads from the working directory when --baseline
#: is not given (kept at the repository root).
DEFAULT_BASELINE_NAME = "lint-baseline.json"


class BaselineError(ValueError):
    """Raised for malformed baseline documents."""


@dataclass
class Baseline:
    """A set of accepted findings keyed by normalized fingerprint."""

    entries: dict[str, dict] = field(default_factory=dict)
    path: str = ""
    #: Version of the document this baseline was loaded from (or the
    #: current version for fresh baselines); saving always writes the
    #: current version.
    loaded_version: int = BASELINE_VERSION

    def covers(self, finding: Finding) -> bool:
        return finding.normalized_fingerprint in self.entries

    def justification_for(self, finding: Finding) -> str:
        entry = self.entries.get(finding.normalized_fingerprint)
        return entry.get("justification", "") if entry else ""

    def __len__(self) -> int:
        return len(self.entries)

    # -- serialization -------------------------------------------------------

    @classmethod
    def from_findings(cls, findings: list[Finding], justification: str) -> "Baseline":
        baseline = cls()
        for finding in findings:
            baseline.entries[finding.normalized_fingerprint] = {
                "rule": finding.rule,
                "path": finding.path,
                "symbol": finding.symbol,
                "message": finding.message,
                "justification": justification,
            }
        return baseline

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        if not isinstance(document, dict) or document.get("version") not in SUPPORTED_VERSIONS:
            raise BaselineError(
                f"{path}: not a version-{'/'.join(map(str, SUPPORTED_VERSIONS))} baseline"
            )
        baseline = cls(path=path, loaded_version=document["version"])
        for index, entry in enumerate(document.get("entries", [])):
            missing = {"rule", "path", "symbol", "message"} - set(entry)
            if missing:
                raise BaselineError(f"{path}: entry {index} lacks {sorted(missing)}")
            if not entry.get("justification", "").strip():
                raise BaselineError(
                    f"{path}: entry {index} ({entry['rule']} in {entry['path']}) "
                    "has no justification"
                )
            shadow = Finding(
                rule=entry["rule"],
                path=entry["path"],
                line=0,
                col=0,
                symbol=entry["symbol"],
                message=entry["message"],
            )
            # v1 entries carried exact messages; the normalized key makes
            # them match the same findings they always did, plus reflows.
            baseline.entries[shadow.normalized_fingerprint] = dict(entry)
        return baseline

    def save(self, path: str) -> None:
        document = {
            "version": BASELINE_VERSION,
            "entries": [
                self.entries[fingerprint]
                for fingerprint in sorted(
                    self.entries,
                    key=lambda fp: (
                        self.entries[fp]["path"],
                        self.entries[fp]["rule"],
                        self.entries[fp]["symbol"],
                    ),
                )
            ],
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=False)
            handle.write("\n")
        self.path = path
        self.loaded_version = BASELINE_VERSION
