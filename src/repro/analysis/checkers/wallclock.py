"""RPO07 — no wall-clock waits: backoff and retransmission sleep virtually.

The reliability layer retries with exponential backoff; on a real stack
that is ``time.sleep``.  Here every wait must be *virtual* — charged via
``clock.charge`` / ``Network.charge`` — or the simulation stalls for
real seconds, the charged-time ledger misses the wait entirely, and
runs stop being deterministic.  Any ``time.sleep(...)`` (or bare
``sleep(...)`` imported from ``time``/``asyncio``) in simulation code is
therefore an error, not a style nit.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import register

_SLEEP_MODULES = frozenset({"time", "asyncio"})


@register
class WallClockChecker:
    rule_id = "RPO07"
    description = (
        "retransmission/backoff waits use clock.charge / Network.charge, "
        "never time.sleep"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        sleep_aliases = _sleep_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not _is_wall_clock_sleep(node, sleep_aliases):
                continue
            yield Finding(
                rule=self.rule_id,
                path=module.path,
                line=node.lineno,
                col=node.col_offset,
                symbol=_enclosing_symbol(module.tree, node),
                message=(
                    "wall-clock sleep stalls the simulation and escapes the "
                    "charged-time ledger; wait virtually via clock.charge / "
                    "Network.charge instead"
                ),
                severity="error",
            )


def _sleep_aliases(tree: ast.AST) -> frozenset[str]:
    """Local names that ``from time import sleep [as x]`` bound to sleep."""
    aliases = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module in _SLEEP_MODULES:
            for alias in node.names:
                if alias.name == "sleep":
                    aliases.add(alias.asname or alias.name)
    return frozenset(aliases)


def _is_wall_clock_sleep(call: ast.Call, aliases: frozenset[str]) -> bool:
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr == "sleep":
        base = func.value
        return isinstance(base, ast.Name) and base.id in _SLEEP_MODULES
    if isinstance(func, ast.Name):
        return func.id in aliases
    return False


def _enclosing_symbol(tree: ast.AST, target: ast.Call) -> str:
    """Dotted name of the innermost class/function containing ``target``."""

    def find(node: ast.AST, trail: list[str]) -> str | None:
        if node is target:
            return ".".join(trail) or "<module>"
        if isinstance(node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
            trail = trail + [node.name]
        for child in ast.iter_child_nodes(node):
            found = find(child, trail)
            if found is not None:
                return found
        return None

    return find(tree, []) or "<module>"
