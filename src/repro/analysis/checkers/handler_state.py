"""RPO06 — ``@web_method`` handlers keep their hands off module state.

Both containers dispatch a handler per message; the WSRF stack
additionally multiplexes many resources through one service instance
(§3.1).  A handler that mutates module-level state couples unrelated
messages together: state leaks across resources, across services
deployed in the same container, and across bench runs that reuse the
process.  Service state belongs on ``self`` (per service/resource), not
in module globals.

Flagged inside ``@web_method`` bodies:

* ``global NAME`` statements;
* assignment / augmented assignment to a subscript of a module-level
  name (``REGISTRY[key] = ...``);
* mutator-method calls on a module-level name
  (``SUBSCRIBERS.append(...)``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import register

_MUTATORS = frozenset(
    {
        "append",
        "add",
        "update",
        "pop",
        "remove",
        "clear",
        "extend",
        "insert",
        "setdefault",
        "discard",
    }
)


@register
class HandlerStateChecker:
    rule_id = "RPO06"
    description = "@web_method handlers must not mutate module-level state"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if not module.module_level_names:
            return
        for handler in module.web_methods:
            yield from self._check_handler(module, handler)

    def _check_handler(self, module, handler) -> Iterator[Finding]:
        module_names = module.module_level_names
        for node in ast.walk(handler.func):
            if isinstance(node, ast.Global):
                yield Finding(
                    rule=self.rule_id,
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    symbol=handler.symbol,
                    message=(
                        f"handler declares global {', '.join(node.names)}; "
                        "service state belongs on self, not in module globals"
                    ),
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    name = _subscripted_module_name(target, module_names)
                    if name is not None:
                        yield Finding(
                            rule=self.rule_id,
                            path=module.path,
                            line=node.lineno,
                            col=node.col_offset,
                            symbol=handler.symbol,
                            message=(
                                f"handler writes into module-level {name!r}; "
                                "mutating shared module state couples "
                                "unrelated messages"
                            ),
                        )
            elif isinstance(node, ast.Call):
                name = _mutated_module_name(node, module_names)
                if name is not None:
                    yield Finding(
                        rule=self.rule_id,
                        path=module.path,
                        line=node.lineno,
                        col=node.col_offset,
                        symbol=handler.symbol,
                        message=(
                            f"handler mutates module-level {name!r} via "
                            f".{node.func.attr}(...); move this state onto "
                            "the service or resource instance"
                        ),
                    )


def _subscripted_module_name(target: ast.expr, module_names: set[str]) -> str | None:
    if (
        isinstance(target, ast.Subscript)
        and isinstance(target.value, ast.Name)
        and target.value.id in module_names
    ):
        return target.value.id
    return None


def _mutated_module_name(call: ast.Call, module_names: set[str]) -> str | None:
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr in _MUTATORS
        and isinstance(func.value, ast.Name)
        and func.value.id in module_names
    ):
        return func.value.id
    return None
