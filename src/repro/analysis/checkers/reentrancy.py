"""RPO12 — re-entrancy: settle state before fan-out, not after.

A notification fan-out (``deliver``/``notify``/observer ``on_*``
callbacks) hands control to arbitrary code — in the concurrent kernel,
to code that may re-enter the very object that is mid-mutation.  The
WS-Eventing/WSN stacks are full of the shape

    for subscriber in ...:
        self.deliverer.deliver(...)     # re-entrant boundary
    self.records.remove(...)            # state settles AFTER fan-out

where a subscriber's handler can observe (or mutate) the half-updated
record list.  The fix is almost always mechanical: finish mutating
``self``/``PipelineContext``/store state, *then* fan out.

This rule flags, per function, the first mutation of ``self``/``ctx``
state (attribute assignment, container mutator, store write) that occurs
after a fan-out call or a ``yield``.  ``@contextmanager`` generators are
exempt — mutate-after-yield is their contract — and so is the sim
substrate, whose Network/Clock internals are the mediation layer itself.
Yields of kernel *effects* (``yield Work(...)``, ``yield Acquire(...)``,
…) are scheduler suspension points, not observer fan-outs: the kernel
resumes the task with a result, and the task's own state is exactly what
it is supposed to update with it — those yields are skipped.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import register

#: Call names that hand control to other hosts/handlers mid-function.
_FANOUT_NAMES = frozenset(
    {"deliver", "deliver_notification", "notify", "publish", "broadcast", "emit", "fire"}
)

#: Receivers whose state the rule protects.
_GUARDED_ROOTS = frozenset({"self", "cls", "ctx", "context"})

#: Kernel effect constructors (repro.sim.kernel): ``yield Work(...)`` is a
#: cooperative suspension awaiting the scheduler, not a fan-out.
_EFFECT_NAMES = frozenset({"Delay", "Work", "Send", "Recv", "Acquire", "Release"})

_MUTATORS = frozenset(
    {
        "append", "add", "update", "pop", "popitem", "remove", "clear",
        "extend", "insert", "setdefault", "discard",
        # store/home write surface
        "store", "delete", "upsert", "put",
    }
)


def _exempt(path: str) -> bool:
    return "repro/analysis/" in path or "repro/sim/" in path


@register
class ReentrancyChecker:
    rule_id = "RPO12"
    description = (
        "filter/handler code settles PipelineContext/store state before "
        "notification fan-out or yield, never after"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if _exempt(module.path):
            return
        for func, symbol in _functions(module.tree):
            if _is_contextmanager(func):
                continue
            finding_site = _mutation_after_fanout(func)
            if finding_site is None:
                continue
            mutation, fanout_name = finding_site
            yield Finding(
                rule=self.rule_id,
                path=module.path,
                line=mutation.lineno,
                col=mutation.col_offset,
                symbol=symbol,
                message=(
                    f"mutates shared state after the '{fanout_name}' fan-out; "
                    "a re-entrant handler can observe the half-updated object "
                    "— settle state first, then fan out"
                ),
                severity="warning",
            )


def _functions(tree: ast.AST) -> Iterator[tuple[ast.FunctionDef, str]]:
    def walk(scope: ast.AST, owner: str | None) -> Iterator[tuple[ast.FunctionDef, str]]:
        for node in ast.iter_child_nodes(scope):
            if isinstance(node, ast.ClassDef):
                yield from walk(node, node.name)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node, f"{owner}.{node.name}" if owner else node.name
                yield from walk(node, owner)

    yield from walk(tree, None)


def _is_contextmanager(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for decorator in func.decorator_list:
        name = decorator
        if isinstance(name, ast.Call):
            name = name.func
        if isinstance(name, ast.Attribute):
            name = ast.Name(id=name.attr)
        if isinstance(name, ast.Name) and name.id in (
            "contextmanager",
            "asynccontextmanager",
        ):
            return True
    return False


def _mutation_after_fanout(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> tuple[ast.AST, str] | None:
    """(mutation node, fan-out name) for the first guarded-state mutation
    positioned after the first fan-out point, in source order."""
    events: list[tuple[int, int, str, ast.AST, str]] = []
    frontier: list[ast.AST] = list(ast.iter_child_nodes(func))
    while frontier:
        node = frontier.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue  # nested defs are analyzed on their own
        frontier.extend(ast.iter_child_nodes(node))
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if not _is_effect_yield(node):
                events.append((node.lineno, node.col_offset, "fanout", node, "yield"))
        elif isinstance(node, ast.Call):
            fanout = _fanout_name(node)
            if fanout is not None:
                events.append((node.lineno, node.col_offset, "fanout", node, fanout))
            elif _is_guarded_mutator_call(node):
                events.append((node.lineno, node.col_offset, "mutation", node, ""))
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            if any(_is_guarded_target(t) for t in targets):
                events.append((node.lineno, node.col_offset, "mutation", node, ""))

    events.sort(key=lambda item: (item[0], item[1]))
    fanout_name: str | None = None
    for _, _, kind, node, name in events:
        if kind == "fanout" and fanout_name is None:
            fanout_name = name
        elif kind == "mutation" and fanout_name is not None:
            return node, fanout_name
    return None


def _is_effect_yield(node: ast.Yield | ast.YieldFrom) -> bool:
    """True for ``yield Work(...)`` / ``yield kernel.Acquire(...)`` etc."""
    value = getattr(node, "value", None)
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if isinstance(func, ast.Attribute):
        return func.attr in _EFFECT_NAMES
    return isinstance(func, ast.Name) and func.id in _EFFECT_NAMES


def _fanout_name(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Attribute):
        if func.attr in _FANOUT_NAMES:
            return func.attr
        # Observer/hook callbacks: self.on_delivery_failure(...), hook.on_terminate(...)
        if func.attr.startswith("on_"):
            return func.attr
    elif isinstance(func, ast.Name) and func.id.startswith("on_"):
        return func.id
    return None


def _root_name(node: ast.expr) -> str | None:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_guarded_mutator_call(call: ast.Call) -> bool:
    func = call.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr in _MUTATORS
        and isinstance(func.value, (ast.Attribute, ast.Subscript, ast.Name))
        and _root_name(func.value) in _GUARDED_ROOTS
        and not isinstance(func.value, ast.Name)  # x.append on a local is fine
    )


def _is_guarded_target(target: ast.expr) -> bool:
    if isinstance(target, (ast.Attribute, ast.Subscript)):
        root = _root_name(target)
        return root in _GUARDED_ROOTS
    return False
