"""RPO11 — interprocedural sim-cost escape: no laundered ``clock.charge``.

RPO05 flags a *direct* ``<x>.clock.charge(...)`` because it bypasses
``Network.charge``'s metrics attribution.  Its blind spot is one level of
indirection: a helper that takes the clock as a parameter —

    def bump(clock, ms):
        clock.charge(ms)          # RPO05 cannot see this is the sim clock

    def handler(...):
        bump(self.network.clock, cost)   # charged time vanishes from the
                                         # per-category breakdown

RPO05's pattern needs the ``.clock`` attribute in the call expression;
the wrapper's bare-name receiver defeats it, and every caller of the
wrapper inherits the escape.  This rule closes the hole with the project
call graph:

w1. the wrapper itself — a function (outside the sim/SOAP substrate)
    that calls ``charge``/``advance`` on a bare-name receiver bound to a
    clock (parameter or local named ``clock``/``*_clock``);
w2. every function that can transitively reach a wrapper — the laundered
    charge escapes attribution at each of those call chains.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import register
from repro.analysis.project import ProjectContext

_CLOCK_METHODS = frozenset({"charge", "advance"})


def _exempt(path: str) -> bool:
    # The substrate owns the clock; the analyzer only describes it.
    return "repro/sim/" in path or "repro/soap/" in path or "repro/analysis/" in path


def _is_clock_name(name: str) -> bool:
    return name == "clock" or name.endswith("_clock")


@register
class CostEscapeChecker:
    rule_id = "RPO11"
    description = (
        "clock.charge laundered through wrapper functions still bypasses "
        "Network.charge attribution (interprocedural)"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if _exempt(module.path):
            return
        project = module.project
        if not isinstance(project, ProjectContext):
            project = ProjectContext.single(module)
        wrappers = _wrapper_functions(project)

        # w1 — wrappers defined in this module.
        for info in wrappers.values():
            if info.module.path != module.path:
                continue
            call = _bare_clock_charge(info.node)
            yield Finding(
                rule=self.rule_id,
                path=module.path,
                line=call.lineno,
                col=call.col_offset,
                symbol=info.symbol,
                message=(
                    "charges the clock through a bare-name receiver, hiding "
                    "the charge from RPO05 and from Network.charge metrics "
                    "attribution; charge through Network.charge(ms, category)"
                ),
                severity="warning",
            )

        if not wrappers:
            return

        # w2 — callers in this module that reach a wrapper.
        wrapper_names = frozenset(wrappers)
        for info in project.functions.values():
            if info.module.path != module.path or info.qualname in wrapper_names:
                continue
            reached = sorted(project.callees_closure(info.qualname) & wrapper_names)
            if not reached:
                continue
            leaf = wrappers[reached[0]]
            yield Finding(
                rule=self.rule_id,
                path=module.path,
                line=info.node.lineno,
                col=info.node.col_offset,
                symbol=info.symbol,
                message=(
                    f"reaches '{leaf.symbol}', which charges the clock "
                    "outside Network.charge; the laundered time is missing "
                    "from the per-category breakdown"
                ),
                severity="warning",
            )


def _wrapper_functions(project: ProjectContext):
    """qualname -> FunctionInfo for every launder wrapper in the project.

    Computed once per project (memoized): every module's check consults
    the same table, and the body scan is the expensive part.
    """
    cached = project.memo.get("rpo11.wrappers")
    if cached is not None:
        return cached
    wrappers = {}
    for qualname, info in project.functions.items():
        if _exempt(info.module.path):
            continue
        if _bare_clock_charge(info.node) is not None:
            wrappers[qualname] = info
    project.memo["rpo11.wrappers"] = wrappers
    return wrappers


def _bare_clock_charge(func: ast.FunctionDef | ast.AsyncFunctionDef) -> ast.Call | None:
    """The first ``clock.charge(...)`` / ``clock.advance(...)`` call whose
    receiver is a bare name bound to a clock, if any."""
    frontier: list[ast.AST] = list(ast.iter_child_nodes(func))
    while frontier:
        node = frontier.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue  # a nested def is its own FunctionInfo (and wrapper)
        frontier.extend(ast.iter_child_nodes(node))
        if not isinstance(node, ast.Call):
            continue
        target = node.func
        if (
            isinstance(target, ast.Attribute)
            and target.attr in _CLOCK_METHODS
            and isinstance(target.value, ast.Name)
            and _is_clock_name(target.value.id)
        ):
            return node
    return None
