"""RPO04 — one namespace table.

Both stacks speak in XML namespace URIs: Clark-notation element names,
``QName`` values, ``wsa:Action`` URIs, filter and topic dialects.  The
paper's interop argument rests on both stacks agreeing on these strings
byte-for-byte, so the repo keeps them all in ``repro/xmllib/ns.py``.  A
``http://...`` literal anywhere else is drift waiting to happen: two
copies of the same URI can diverge silently and break cross-stack
dispatch.

Three patterns are flagged:

1. a URI literal passed to ``QName(...)`` / ``element(...)`` and friends;
2. a Clark-notation string literal (``"{http://...}Tag"``), including
   constant fragments of f-strings;
3. a URI literal bound to a module- or class-level constant
   (``_NS = "http://..."``) — the tables where drift accumulates.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext, call_name, is_http_literal
from repro.analysis.findings import Finding
from repro.analysis.registry import register

# Call sites where a namespace URI argument is expected.
_NS_CALLS = frozenset({"QName", "element", "subelement", "Element", "SubElement"})


def _exempt(path: str) -> bool:
    return path.endswith("xmllib/ns.py")


@register
class NamespaceHygieneChecker:
    rule_id = "RPO04"
    description = (
        "no hard-coded http:// namespace URIs outside repro/xmllib/ns.py; "
        "use the ns constants"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if _exempt(module.path):
            return
        yield from _walk(module, module.tree, symbol_stack=[], in_function=False, flagged=set())


def _walk(
    module: ModuleContext,
    node: ast.AST,
    *,
    symbol_stack: list[str],
    in_function: bool,
    flagged: set[int],
) -> Iterator[Finding]:
    symbol = ".".join(symbol_stack) if symbol_stack else "<module>"

    if isinstance(node, ast.Call) and call_name(node) in _NS_CALLS:
        for arg in node.args:
            if is_http_literal(arg) and id(arg) not in flagged:
                yield _finding(module, arg, symbol, f"passed to {call_name(node)}(...)", flagged)

    if (
        isinstance(node, ast.Constant)
        and isinstance(node.value, str)
        and node.value.lstrip().startswith("{http")  # repro-lint: disable=RPO04
        and id(node) not in flagged
    ):
        yield _finding(module, node, symbol, "in Clark notation", flagged)

    if (
        isinstance(node, (ast.Assign, ast.AnnAssign))
        and node.value is not None
        and not in_function
    ):
        for sub in ast.walk(node.value):
            if is_http_literal(sub) and id(sub) not in flagged:
                yield _finding(
                    module, sub, symbol, "bound to a module/class constant", flagged
                )

    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            symbol_stack.append(child.name)
            yield from _walk(
                module, child, symbol_stack=symbol_stack, in_function=True, flagged=flagged
            )
            symbol_stack.pop()
        elif isinstance(child, ast.ClassDef):
            symbol_stack.append(child.name)
            yield from _walk(
                module,
                child,
                symbol_stack=symbol_stack,
                in_function=in_function,
                flagged=flagged,
            )
            symbol_stack.pop()
        else:
            yield from _walk(
                module,
                child,
                symbol_stack=symbol_stack,
                in_function=in_function,
                flagged=flagged,
            )


def _finding(
    module: ModuleContext,
    node: ast.Constant,
    symbol: str,
    why: str,
    flagged: set[int],
) -> Finding:
    flagged.add(id(node))
    uri = node.value if len(node.value) <= 60 else node.value[:57] + "..."
    return Finding(
        rule="RPO04",
        path=module.path,
        line=node.lineno,
        col=node.col_offset,
        symbol=symbol,
        message=(
            f"hard-coded namespace URI {uri!r} {why}; "
            "move it to repro.xmllib.ns and reference the constant"
        ),
    )
