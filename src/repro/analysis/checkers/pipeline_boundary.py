"""RPO08 — pipeline boundary: handlers stay inside ``repro.pipeline``.

The filter pipeline (DESIGN.md §10) owns the message-processing
machinery: ``SecurityHandler`` is an implementation detail of
``SecurityFilter`` and ``InboundRequestLog`` of
``ReliableMessagingFilter``.  Code that imports or instantiates either
class directly re-creates the pre-pipeline world — per-call-site handler
wiring with its duplicated construction and drifting processing order —
so any use outside ``repro.pipeline`` (and the defining modules
themselves) is an error.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import register

_FORBIDDEN = frozenset({"SecurityHandler", "InboundRequestLog"})

#: Paths allowed to name the handler classes: the pipeline package (the
#: owner), the modules that define them, and the reliable package root
#: (a plain re-export for backward compatibility).
_ALLOWED_SUFFIXES = (
    "container/security.py",
    "reliable/sequence.py",
    "reliable/__init__.py",
    "analysis/checkers/pipeline_boundary.py",
)


def _exempt(path: str) -> bool:
    normalized = path.replace("\\", "/")
    if "/pipeline/" in normalized or normalized.endswith("/pipeline"):
        return True
    return normalized.endswith(_ALLOWED_SUFFIXES)


@register
class PipelineBoundaryChecker:
    rule_id = "RPO08"
    description = (
        "SecurityHandler / InboundRequestLog are used only inside "
        "repro.pipeline — everything else drives a FilterChain"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if _exempt(module.path):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name in _FORBIDDEN:
                        yield self._finding(
                            module, node,
                            f"imports {alias.name} directly; message processing "
                            f"belongs to a repro.pipeline filter chain",
                        )
            elif isinstance(node, ast.Attribute) and node.attr in _FORBIDDEN:
                yield self._finding(
                    module, node,
                    f"references {node.attr} directly; message processing "
                    f"belongs to a repro.pipeline filter chain",
                )

    def _finding(self, module: ModuleContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.rule_id,
            path=module.path,
            line=node.lineno,
            col=node.col_offset,
            symbol=module.module_name,
            message=message,
            severity="error",
        )
