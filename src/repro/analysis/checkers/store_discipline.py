"""RPO13 — store discipline: Collection owns its cache and posting lists.

The XML database keeps derived state — the ``WriteThroughCache``'s LRU
map and each index's posting lists — consistent with the backend only
because every write funnels through the Collection API
(``insert``/``update``/``upsert``/``delete``), which charges the cost
model and refreshes the derived structures in one place.  Code outside
``repro.xmldb`` that pokes those internals directly (``x._cache[k] = v``,
``index._postings[v].add(k)``, ``collection.indexes[...] = ...``,
``backend.store(...)``) silently desynchronizes cache, index, and
backend — the "lock-free invariant drift" that only shows up once the
concurrent kernel interleaves readers with the drifted writer.

Flagged outside ``repro/xmldb/``:

w1. subscript/del/mutator writes on ``_cache``/``_postings``/``postings``
    attributes of any object;
w2. direct ``backend.store``/``backend.remove`` calls — the backend is
    Collection's private persistence leg;
w3. assignment into a collection's ``indexes`` mapping — indexes are
    attached via ``Collection.attach_index`` so they are backfilled.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import register

#: Private derived-state attributes owned by the xmldb layer.
_OWNED_ATTRS = frozenset({"_cache", "_postings", "postings"})

_MUTATORS = frozenset(
    {"append", "add", "update", "pop", "popitem", "remove", "clear",
     "extend", "insert", "setdefault", "discard"}
)

_BACKEND_NAMES = frozenset({"backend", "_backend"})
_BACKEND_WRITES = frozenset({"store", "remove"})


def _exempt(path: str) -> bool:
    # The owner may touch its own internals; the analyzer only names them.
    return "repro/xmldb/" in path or "repro/analysis/" in path


@register
class StoreDisciplineChecker:
    rule_id = "RPO13"
    description = (
        "WriteThroughCache/index internals are written only through the "
        "owning Collection API, never poked from outside repro.xmldb"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if _exempt(module.path):
            return
        for node in ast.walk(module.tree):
            hit = _violation(node)
            if hit is None:
                continue
            detail, site = hit
            yield Finding(
                rule=self.rule_id,
                path=module.path,
                line=site.lineno,
                col=site.col_offset,
                symbol=_enclosing_symbol(module.tree, site),
                message=(
                    f"{detail} outside repro.xmldb desynchronizes cache, "
                    "index, and backend; write through the Collection API "
                    "(insert/update/upsert/delete/attach_index)"
                ),
                severity="warning",
            )


def _violation(node: ast.AST) -> tuple[str, ast.AST] | None:
    # w1a — mutator method on an owned attribute: x._cache.pop(...),
    # index._postings.setdefault(...).add(...)
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
            owned = _owned_attr_in_chain(func.value)
            if owned is not None:
                return f"mutates '{owned}'", node
        # w2 — backend.store / backend.remove
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _BACKEND_WRITES
            and _is_backend(func.value)
        ):
            return f"calls backend.{func.attr}(...)", node
    # w1b / w3 — subscript assignment or deletion on owned attrs / indexes.
    elif isinstance(node, (ast.Assign, ast.AugAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            owned = _owned_write_target(target)
            if owned is not None:
                return f"writes '{owned}'", target
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            owned = _owned_write_target(target)
            if owned is not None:
                return f"deletes from '{owned}'", target
    return None


def _owned_attr_in_chain(node: ast.expr) -> str | None:
    """The owned attribute name appearing in an attribute/subscript chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute) and node.attr in _OWNED_ATTRS:
            return node.attr
        node = node.value
    return None


def _owned_write_target(target: ast.expr) -> str | None:
    if isinstance(target, ast.Subscript):
        value = target.value
        if isinstance(value, ast.Attribute):
            if value.attr in _OWNED_ATTRS:
                return value.attr
            if value.attr == "indexes":
                return "indexes"
        owned = _owned_attr_in_chain(value)
        if owned is not None:
            return owned
    # A plain attribute assignment (``self._cache = {}``) defines a new
    # object rather than poking xmldb's entries, so only subscript writes
    # and in-place mutators count.
    return None


def _is_backend(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id in _BACKEND_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _BACKEND_NAMES
    return False


def _enclosing_symbol(tree: ast.AST, target: ast.AST) -> str:
    def find(node: ast.AST, trail: list[str]) -> str | None:
        if node is target:
            return ".".join(trail) or "<module>"
        if isinstance(node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
            trail = trail + [node.name]
        for child in ast.iter_child_nodes(node):
            found = find(child, trail)
            if found is not None:
                return found
        return None

    return find(tree, []) or "<module>"
