"""RPO15 — layer discipline: logic and db layers never see the wire.

The layered service-authoring framework (DESIGN.md §15) earns its keep
only if the inner layers stay stack-blind: routers translate SOAP to
plain python calls and faults back, so the logic layer (``logic.py``)
and the db layer (``db.py``) of an app package must be importable — and
testable — without any stack at all.  An inner-layer module that imports
``repro.soap``, ``repro.container`` or ``repro.pipeline`` has smuggled
wire machinery below the seam, which is exactly the per-stack fork the
refactor removed.

In scope: modules named ``logic.py`` or ``db.py`` under ``repro/apps/``
(the convention the framework documents), plus any file whose name ends
in ``_logic.py`` / ``_db.py`` (how the lint fixtures opt in, mirroring
RPO03's ``wsrf_`` prefix convention).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import register

#: Package roots the inner layers must never import.
_BANNED_ROOTS = ("repro.soap", "repro.container", "repro.pipeline")
_BANNED_LEAVES = frozenset({"soap", "container", "pipeline"})

_LAYER_FILES = frozenset({"logic.py", "db.py"})


def _in_scope(path: str) -> bool:
    parts = path.replace("\\", "/").split("/")
    filename = parts[-1]
    if filename in _LAYER_FILES:
        return "apps" in parts
    return filename.endswith(("_logic.py", "_db.py"))


def _banned_module(name: str) -> str | None:
    for root in _BANNED_ROOTS:
        if name == root or name.startswith(root + "."):
            return root
    return None


@register
class LayerDisciplineChecker:
    rule_id = "RPO15"
    description = (
        "logic-/db-layer modules stay stack-blind: no repro.soap / "
        "repro.container / repro.pipeline imports below the router seam"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if not _in_scope(module.path):
            return
        layer = "db" if module.path.endswith("db.py") else "logic"
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = _banned_module(alias.name)
                    if root is not None:
                        yield self._finding(module, node, layer, root)
            elif isinstance(node, ast.ImportFrom) and node.module:
                root = _banned_module(node.module)
                if root is not None:
                    yield self._finding(module, node, layer, root)
                elif node.module == "repro":
                    for alias in node.names:
                        if alias.name in _BANNED_LEAVES:
                            yield self._finding(
                                module, node, layer, f"repro.{alias.name}"
                            )

    def _finding(
        self, module: ModuleContext, node: ast.AST, layer: str, root: str
    ) -> Finding:
        return Finding(
            rule=self.rule_id,
            path=module.path,
            line=node.lineno,
            col=node.col_offset,
            symbol=module.module_name,
            message=(
                f"{layer}-layer module imports {root}; the wire belongs to "
                "the router layer — raise LogicError/AccessDenied and let "
                "wsrf_fault/transfer_fault translate"
            ),
            severity="error",
        )
