"""RPO01 — the WS-Transfer contract.

§3.2 of the paper: a WS-Transfer service's interface *is* the four CRUD
operations — "Create stores this XML document ... Get returns the stored
representation ... there is no lifetime management functionality since it
is not defined in the spec."  A service that wires up only part of the
quartet (without inheriting the rest from a complete transfer base) is a
different, non-conformant protocol.  Action URIs must additionally be
derived from the canonical namespace table so the wire-level
``wsa:Action`` values cannot drift from ``repro.xmllib.ns``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext, is_http_literal
from repro.analysis.findings import Finding
from repro.analysis.registry import register

TRANSFER_OPS = frozenset({"CREATE", "GET", "PUT", "DELETE"})


@register
class TransferQuartetChecker:
    rule_id = "RPO01"
    description = (
        "WS-Transfer services implement the full Create/Get/Put/Delete quartet; "
        "action URIs are built from repro.xmllib.ns constants"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        yield from self._check_service_classes(module)
        yield from self._check_action_tables(module)

    # -- quartet completeness ------------------------------------------------

    def _check_service_classes(self, module: ModuleContext) -> Iterator[Finding]:
        transfer_bindings = _transfer_action_bindings(module)
        if not transfer_bindings:
            return
        per_class: dict[ast.ClassDef | None, set[str]] = {}
        for handler in module.web_methods:
            op = _transfer_op(handler.action, transfer_bindings)
            if op is not None:
                per_class.setdefault(handler.owner, set()).add(op)
        for owner, ops in per_class.items():
            if ops == TRANSFER_OPS:
                continue
            if owner is None:
                continue  # free functions cannot be judged as a service
            if _inherits_transfer_base(owner):
                continue  # partial override of an already-complete base
            missing = ", ".join(sorted(TRANSFER_OPS - ops))
            yield Finding(
                rule=self.rule_id,
                path=module.path,
                line=owner.lineno,
                col=owner.col_offset,
                symbol=owner.name,
                message=(
                    f"WS-Transfer service implements only "
                    f"{{{', '.join(sorted(ops))}}} of the CRUD quartet "
                    f"(missing: {missing}); the spec contract is exactly "
                    "Create/Get/Put/Delete"
                ),
            )

    # -- action URI provenance -----------------------------------------------

    def _check_action_tables(self, module: ModuleContext) -> Iterator[Finding]:
        for node in module.classes():
            if node.name != "actions" and not node.name.endswith("_actions"):
                continue
            for statement in node.body:
                if not isinstance(statement, (ast.Assign, ast.AnnAssign)):
                    continue
                value = statement.value
                if value is None:
                    continue
                literal = next(
                    (n for n in ast.walk(value) if is_http_literal(n)), None
                )
                if literal is None:
                    continue
                name = _first_target_name(statement)
                yield Finding(
                    rule=self.rule_id,
                    path=module.path,
                    line=statement.lineno,
                    col=statement.col_offset,
                    symbol=f"{node.name}.{name}",
                    message=(
                        f"action URI hard-codes {literal.value!r}; build it "
                        "from a repro.xmllib.ns constant (e.g. ns.WXF + '/Get')"
                    ),
                )


def _transfer_action_bindings(module: ModuleContext) -> set[str]:
    """Local names that denote the WS-Transfer ``actions`` table."""
    bindings = module.bindings_for("actions", ("transfer.service", "transfer"))
    for class_name, attrs in module.action_classes.items():
        if TRANSFER_OPS <= attrs and "SUBSCRIBE" not in attrs:
            bindings.add(class_name)
    return bindings


def _transfer_op(action: ast.expr, bindings: set[str]) -> str | None:
    if (
        isinstance(action, ast.Attribute)
        and isinstance(action.value, ast.Name)
        and action.value.id in bindings
        and action.attr in TRANSFER_OPS
    ):
        return action.attr
    return None


def _inherits_transfer_base(node: ast.ClassDef) -> bool:
    for base in node.bases:
        tail = base.attr if isinstance(base, ast.Attribute) else getattr(base, "id", "")
        if "Transfer" in tail:
            return True
    return False


def _first_target_name(statement: ast.Assign | ast.AnnAssign) -> str:
    if isinstance(statement, ast.AnnAssign):
        target = statement.target
    else:
        target = statement.targets[0]
    return target.id if isinstance(target, ast.Name) else "<target>"
