"""Built-in checkers.  Importing this package registers every rule:

======  ==========================================================
RPO01   WS-Transfer services implement the full CRUD quartet and
        build action URIs from ``repro.xmllib.ns``
RPO02   WS-Eventing sources/managers expose the full
        Subscribe/Renew/GetStatus/Unsubscribe quartet
RPO03   WSRF-stack operations fault via WS-BaseFaults
RPO04   no hard-coded namespace URIs outside ``xmllib/ns.py``
RPO05   serialized+sent messages charge through the sim cost model
RPO06   ``@web_method`` handlers do not mutate module-level state
RPO07   no wall-clock ``time.sleep`` — waits are charged virtually
RPO08   ``SecurityHandler`` / ``InboundRequestLog`` stay inside
        ``repro.pipeline`` — everything else drives a ``FilterChain``
RPO09   no module-level mutables / class-level mutable defaults
        shared across simulated hosts outside Network/Clock/
        ResourceHome mediation
RPO10   no wall-clock reads, unseeded randomness, id()-keyed or
        set-ordered data on cost-ledger/comparator paths
RPO11   ``clock.charge`` laundered through wrappers still bypasses
        Network.charge attribution (interprocedural)
RPO12   filter/handler code settles state before notification
        fan-out or yield, never after
RPO13   WriteThroughCache/index internals are written only through
        the owning Collection API
RPO14   the kernel owns time: no direct ``Clock.advance`` or timer
        mutation (schedule/cancel) outside ``repro.sim``
RPO15   logic-/db-layer modules stay stack-blind: no ``repro.soap``/
        ``repro.container``/``repro.pipeline`` imports below the
        router seam
======  ==========================================================

RPO09–RPO13 are the concurrency-readiness rules: they consult the
project-wide call graph (``ModuleContext.project``) when the engine
provides one and degrade to module-local scope otherwise.
"""

from repro.analysis.checkers import (  # noqa: F401  (import registers)
    cost_escape,
    determinism,
    eventing_quartet,
    fault_discipline,
    handler_state,
    host_isolation,
    kernel_time,
    layer_discipline,
    namespace_hygiene,
    pipeline_boundary,
    reentrancy,
    sim_cost,
    store_discipline,
    transfer_quartet,
    wallclock,
)
