"""Built-in checkers.  Importing this package registers every rule:

======  ==========================================================
RPO01   WS-Transfer services implement the full CRUD quartet and
        build action URIs from ``repro.xmllib.ns``
RPO02   WS-Eventing sources/managers expose the full
        Subscribe/Renew/GetStatus/Unsubscribe quartet
RPO03   WSRF-stack operations fault via WS-BaseFaults
RPO04   no hard-coded namespace URIs outside ``xmllib/ns.py``
RPO05   serialized+sent messages charge through the sim cost model
RPO06   ``@web_method`` handlers do not mutate module-level state
RPO07   no wall-clock ``time.sleep`` — waits are charged virtually
RPO08   ``SecurityHandler`` / ``InboundRequestLog`` stay inside
        ``repro.pipeline`` — everything else drives a ``FilterChain``
======  ==========================================================
"""

from repro.analysis.checkers import (  # noqa: F401  (import registers)
    eventing_quartet,
    fault_discipline,
    handler_state,
    namespace_hygiene,
    pipeline_boundary,
    sim_cost,
    transfer_quartet,
    wallclock,
)
