"""RPO10 — determinism: no ambient entropy on cost-ledger/comparator paths.

The dual-stack comparison only works because both stacks run on the same
virtual timeline with the same seeded RNG: a run is a pure function of
(program, mode, seed).  Reading the wall clock, pulling unseeded
randomness, hashing object identities, or iterating a set where order
leaks into output all smuggle host entropy into results — and once the
concurrent kernel interleaves requests, that entropy becomes schedule
nondeterminism the conformance harness cannot distinguish from a real
stack divergence.

Sources detected:

* ``time.time``/``time.time_ns``/``time.monotonic``/``time.perf_counter``
* ``datetime.now``/``datetime.utcnow``/``datetime.today``
* module-level ``random.*`` (unseeded process RNG; a seeded
  ``random.Random(seed)`` instance is fine and is what ``Clock.rng`` is)
* ``os.urandom`` and ``uuid.uuid4``
* ``id(x)`` used as a dict/set key or sort key
* iterating a set literal / ``set(...)`` directly (iteration order is
  hash-seed dependent; sort first)

Severity is *error* when the enclosing function can reach the cost
ledger (``Network.charge``/``MetricsRecorder``) or a comparator, or is
reachable from a ``@web_method`` handler — that entropy lands in
reported numbers.  Elsewhere it is a warning.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import register
from repro.analysis.project import ProjectContext

_TIME_ATTRS = frozenset({"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns"})
_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

#: Terminal qualname fragments that mark a cost-ledger / comparator sink.
_SINK_MARKERS = (
    "repro.sim.network.Network.charge",
    "repro.sim.metrics.",
    "repro.testkit.comparators.",
)


def _exempt(path: str) -> bool:
    # The analyzer runs offline; the clock module owns the seeded RNG.
    return "repro/analysis/" in path or path.endswith("sim/clock.py")


@register
class DeterminismChecker:
    rule_id = "RPO10"
    description = (
        "no wall-clock reads, unseeded randomness, id()-keyed or "
        "set-iteration-ordered data on paths feeding the cost ledger or "
        "comparators"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if _exempt(module.path):
            return
        project = module.project
        if not isinstance(project, ProjectContext):
            project = ProjectContext.single(module)
        sinks = _sink_functions(project)
        for node, reason in _entropy_sites(module):
            symbol, severity = _classify(project, module, node, sinks)
            yield Finding(
                rule=self.rule_id,
                path=module.path,
                line=node.lineno,
                col=node.col_offset,
                symbol=symbol,
                message=f"{reason}; runs must be a pure function of (program, mode, seed)",
                severity=severity,
            )


def _sink_functions(project: ProjectContext) -> frozenset[str]:
    cached = project.memo.get("rpo10.sinks")
    if cached is None:
        cached = frozenset(
            qualname for qualname in project.functions if qualname.startswith(_SINK_MARKERS)
        )
        project.memo["rpo10.sinks"] = cached
    return cached


def _classify(
    project: ProjectContext,
    module: ModuleContext,
    node: ast.AST,
    sinks: frozenset[str],
) -> tuple[str, str]:
    """(symbol, severity) for an entropy site."""
    info = _enclosing(project, module, node)
    if info is None:
        return "<module>", "warning"
    on_ledger_path = bool(sinks) and project.reaches(info.qualname, sinks)
    handler_reachable = info.is_handler or bool(project.handler_reach(info.qualname))
    return info.symbol, "error" if (on_ledger_path or handler_reachable) else "warning"


def _entropy_sites(module: ModuleContext) -> Iterator[tuple[ast.AST, str]]:
    _ID_KEY_MSG = "id()-keyed data varies per process (addresses are not stable)"
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            reason = _call_entropy(node, module)
            if reason is not None:
                yield node, reason
        elif isinstance(node, (ast.For, ast.comprehension)):
            iterable = node.iter
            if _is_bare_set(iterable):
                yield iterable, (
                    "iteration order of a set is hash-seed dependent and "
                    "leaks into output; sort it first"
                )
        elif isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None and _is_id_call(key):
                    yield key, _ID_KEY_MSG
        elif isinstance(node, ast.Subscript) and _is_id_call(node.slice):
            yield node.slice, _ID_KEY_MSG


def _call_entropy(call: ast.Call, module: ModuleContext) -> str | None:
    func = call.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        base, attr = func.value.id, func.attr
        if base == "time" and attr in _TIME_ATTRS:
            return f"wall-clock read time.{attr}() is host entropy; use the virtual Clock"
        if base == "datetime" and attr in _DATETIME_ATTRS:
            return f"datetime.{attr}() reads the host clock; use the virtual Clock"
        if base == "random":
            if attr == "Random" and (call.args or call.keywords):
                return None  # random.Random(seed) — explicitly seeded, fine
            if attr == "Random":
                return (
                    "random.Random() with no seed draws from process entropy; "
                    "seed it from the run's (program, mode, seed) tuple"
                )
            if attr == "SystemRandom":
                return "random.SystemRandom() is OS entropy and never reproducible"
            return (
                f"module-level random.{attr}() uses the unseeded process RNG; "
                "use the run's seeded Clock.rng"
            )
        if base == "os" and attr == "urandom":
            return "os.urandom() is irreproducible entropy; derive bytes from the seeded RNG"
        if base == "uuid" and attr == "uuid4":
            return "uuid.uuid4() is random per process; derive ids from the seeded RNG"
    if isinstance(func, ast.Name):
        bound = module.imports.get(func.id)
        if bound is not None:
            source, original = bound
            if source == "os" and original == "urandom":
                return "os.urandom() is irreproducible entropy; derive bytes from the seeded RNG"
            if source == "uuid" and original == "uuid4":
                return "uuid.uuid4() is random per process; derive ids from the seeded RNG"
    # sorted(xs, key=id) — ordering by object address.
    for keyword in call.keywords:
        if (
            keyword.arg == "key"
            and isinstance(keyword.value, ast.Name)
            and keyword.value.id == "id"
        ):
            return "sorting by id() orders objects by memory address"
    return None


def _is_id_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "id"
    )


def _is_bare_set(node: ast.expr) -> bool:
    if isinstance(node, ast.Set):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "set"
    )


def _enclosing(project: ProjectContext, module: ModuleContext, target: ast.AST):
    def find(node: ast.AST, current):
        if node is target:
            return current
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = project.function_at(module, node)
            current = info if info is not None else current
        for child in ast.iter_child_nodes(node):
            found = find(child, current)
            if found is not _MISS:
                return found
        return _MISS

    result = find(module.tree, None)
    return None if result is _MISS else result


_MISS = object()
