"""RPO14 — the kernel owns time: no direct clock advance or timer
mutation outside ``repro.sim``.

With the discrete-event kernel in place (DESIGN.md §14), virtual time
moves in exactly two sanctioned ways: components *charge* costs
(``clock.charge`` / ``Network.charge``, attributed to the ledger) and
the kernel *advances* to scheduled events, firing due timers in deadline
order.  Code elsewhere that calls ``clock.advance_to(...)`` jumps the
shared timeline past other tasks' pending events, and ad-hoc
``clock.schedule``/``schedule_after``/``cancel`` timers bypass the
kernel's ``call_at``/``call_after`` — losing the sanitizer's ``<timer>``
scoping and the deterministic ``(time, seq)`` ordering the kernel
guarantees.

Flagged outside ``repro/sim/``: calls to ``advance_to``/``advance``/
``schedule``/``schedule_after``/``cancel`` whose receiver chain names a
clock (``clock.advance_to``, ``self.network.clock.schedule`` …).  The
legacy single-request paths (testkit world drivers, WSRF lifetime
timers, GiaB job timers) are baselined until they migrate to the
kernel.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import register

#: Methods that move the timeline or mutate the timer heap.
_ADVANCES = frozenset({"advance_to", "advance"})
_TIMER_MUTATORS = frozenset({"schedule", "schedule_after", "cancel"})

#: Receiver names that denote the simulation clock.
_CLOCK_NAMES = frozenset({"clock", "_clock"})


def _exempt(path: str) -> bool:
    # The sim substrate is the mediation layer (the kernel and the clock
    # itself must do these things); the analyzer only names the methods.
    return "repro/sim/" in path or "repro/analysis/" in path


@register
class KernelTimeChecker:
    rule_id = "RPO14"
    description = (
        "the kernel owns time: no direct Clock.advance or timer mutation "
        "(schedule/schedule_after/cancel) outside repro.sim"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if _exempt(module.path):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr in _ADVANCES and _is_clock(func.value):
                remedy = (
                    "only the kernel event loop advances the shared "
                    "timeline; charge costs or run through the kernel"
                )
                detail = f"advances the clock directly (clock.{func.attr})"
            elif func.attr in _TIMER_MUTATORS and _is_clock(func.value):
                remedy = (
                    "use Kernel.call_at/call_after so the callback runs "
                    "under the sanitizer's <timer> scope in (time, seq) order"
                )
                detail = f"mutates clock timers directly (clock.{func.attr})"
            else:
                continue
            yield Finding(
                rule=self.rule_id,
                path=module.path,
                line=node.lineno,
                col=node.col_offset,
                symbol=_enclosing_symbol(module.tree, node),
                message=f"{detail} outside repro.sim.kernel; {remedy}",
                severity="warning",
            )


def _is_clock(node: ast.expr) -> bool:
    """True when the receiver chain ends in a clock name:
    ``clock``, ``self.clock``, ``self.network.clock``, ``world._clock``."""
    if isinstance(node, ast.Attribute):
        return node.attr in _CLOCK_NAMES
    if isinstance(node, ast.Name):
        return node.id in _CLOCK_NAMES
    return False


def _enclosing_symbol(tree: ast.AST, target: ast.AST) -> str:
    def find(node: ast.AST, trail: list[str]) -> str | None:
        if node is target:
            return ".".join(trail) or "<module>"
        if isinstance(node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
            trail = trail + [node.name]
        for child in ast.iter_child_nodes(node):
            found = find(child, trail)
            if found is not None:
                return found
        return None

    return find(tree, []) or "<module>"
