"""RPO05 — sim-discipline: message work is charged through the cost model.

The paper's quantitative comparison (§5) stands on per-message cost
accounting: every serialize/deserialize/transmit of a SOAP envelope is
charged to the simulated clock *with a category*, so the reported
breakdowns attribute time to the right layer.  Code that builds a wire
message and sends it without going through ``repro.sim.costs`` /
``Network.charge`` silently makes one stack look faster than it is.

Three warning shapes, one rule:

w1. a function constructs a ``WireMessage`` (or calls
    ``WireMessage.from_envelope``) but never charges or transmits —
    the bytes move for free;
w2. a function serializes an envelope and hands the bytes to a raw sink
    (``open``/``.write``/``.store``) without any charge — persistence
    work escapes the cost model;
w3. a direct ``<x>.clock.charge(...)`` call — it advances the clock but
    bypasses ``Network.charge``'s metrics attribution, so the time is
    invisible in the per-category breakdown.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext, call_name
from repro.analysis.findings import Finding
from repro.analysis.registry import register

_SERIALIZE_NAMES = frozenset({"serialize", "to_bytes", "tostring"})
_CHARGE_NAMES = frozenset(
    {"charge", "_charge", "transmit", "charge_serialize", "charge_parse"}
)
_RAW_SINK_ATTRS = frozenset({"write", "store"})


def _exempt(path: str) -> bool:
    # The cost model itself and the SOAP layer it wraps are where the
    # charging primitives live; they cannot charge through themselves.
    return "/sim/" in path or "/soap/" in path or path.endswith("analysis/checkers/sim_cost.py")


@register
class SimCostChecker:
    rule_id = "RPO05"
    description = (
        "code that serializes and sends a message charges simulated time "
        "through repro.sim.costs / Network.charge"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if _exempt(module.path):
            return
        for func, symbol in _functions(module.tree):
            calls = [n for n in ast.walk(func) if isinstance(n, ast.Call)]
            charges = any(_is_charge(c) for c in calls)

            # w3 — clock.charge bypasses metrics attribution.
            for call in calls:
                if _is_clock_charge(call):
                    yield Finding(
                        rule=self.rule_id,
                        path=module.path,
                        line=call.lineno,
                        col=call.col_offset,
                        symbol=symbol,
                        message=(
                            "direct clock.charge(...) bypasses Network.charge "
                            "metrics attribution; charged time will be missing "
                            "from the per-category breakdown"
                        ),
                        severity="warning",
                    )

            if charges:
                continue

            # w1 — WireMessage built but never charged/transmitted.
            wire = next((c for c in calls if _builds_wire_message(c)), None)
            if wire is not None:
                yield Finding(
                    rule=self.rule_id,
                    path=module.path,
                    line=wire.lineno,
                    col=wire.col_offset,
                    symbol=symbol,
                    message=(
                        "constructs a WireMessage but never charges or "
                        "transmits it through the sim cost model; the message "
                        "moves for free"
                    ),
                    severity="warning",
                )
                continue

            # w2 — serialize + raw sink without a charge.
            serialize = next((c for c in calls if _serializes(c)), None)
            sink = next((c for c in calls if _raw_sink(c)), None)
            if serialize is not None and sink is not None:
                yield Finding(
                    rule=self.rule_id,
                    path=module.path,
                    line=sink.lineno,
                    col=sink.col_offset,
                    symbol=symbol,
                    message=(
                        "serializes an envelope and writes it to a raw sink "
                        "without charging simulated time; persistence cost "
                        "escapes the model"
                    ),
                    severity="warning",
                )


def _functions(tree: ast.AST) -> Iterator[tuple[ast.FunctionDef, str]]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield item, f"{node.name}.{item.name}"
    seen_in_class = {
        id(item)
        for node in ast.walk(tree)
        if isinstance(node, ast.ClassDef)
        for item in node.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if id(node) not in seen_in_class:
                yield node, node.name


def _is_charge(call: ast.Call) -> bool:
    name = call_name(call)
    return name in _CHARGE_NAMES


def _is_clock_charge(call: ast.Call) -> bool:
    # Matches ``<anything>.clock.charge(...)`` specifically.
    func = call.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr == "charge"
        and isinstance(func.value, ast.Attribute)
        and func.value.attr == "clock"
    )


def _builds_wire_message(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Name) and func.id == "WireMessage":
        return True
    if isinstance(func, ast.Attribute):
        if func.attr == "from_envelope":
            base = func.value
            return isinstance(base, ast.Name) and base.id == "WireMessage"
    return False


def _serializes(call: ast.Call) -> bool:
    return call_name(call) in _SERIALIZE_NAMES


def _raw_sink(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Name) and func.id == "open":
        return True
    return isinstance(func, ast.Attribute) and func.attr in _RAW_SINK_ATTRS
