"""RPO02 — the WS-Eventing contract.

§3.3 of the paper: an event source accepts Subscribe and hands lifetime
management (Renew / GetStatus / Unsubscribe) to a subscription manager
EPR returned in the SubscribeResponse.  A source that accepts
subscriptions without routing to a manager strands subscribers with no
way to renew or cancel; a manager that implements only part of the
Renew/GetStatus/Unsubscribe trio is non-conformant.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import register

EVENTING_OPS = frozenset({"SUBSCRIBE", "RENEW", "GET_STATUS", "UNSUBSCRIBE"})
MANAGER_OPS = frozenset({"RENEW", "GET_STATUS", "UNSUBSCRIBE"})


@register
class EventingQuartetChecker:
    rule_id = "RPO02"
    description = (
        "WS-Eventing sources expose the full Subscribe/Renew/GetStatus/"
        "Unsubscribe quartet (directly or via a subscription manager)"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        bindings = _eventing_action_bindings(module)
        if not bindings:
            return
        per_class: dict[ast.ClassDef | None, set[str]] = {}
        for handler in module.web_methods:
            op = _eventing_op(handler.action, bindings)
            if op is not None:
                per_class.setdefault(handler.owner, set()).add(op)
        for owner, ops in per_class.items():
            if owner is None:
                continue
            if ops == EVENTING_OPS:
                continue
            manager_part = ops & MANAGER_OPS
            if manager_part and manager_part != MANAGER_OPS:
                missing = ", ".join(sorted(MANAGER_OPS - ops))
                yield Finding(
                    rule=self.rule_id,
                    path=module.path,
                    line=owner.lineno,
                    col=owner.col_offset,
                    symbol=owner.name,
                    message=(
                        "subscription manager implements only "
                        f"{{{', '.join(sorted(manager_part))}}} of "
                        "Renew/GetStatus/Unsubscribe "
                        f"(missing: {missing})"
                    ),
                )
            elif "SUBSCRIBE" in ops and not manager_part:
                if _references_subscription_manager(owner):
                    continue  # lifetime ops delegated to a manager EPR
                yield Finding(
                    rule=self.rule_id,
                    path=module.path,
                    line=owner.lineno,
                    col=owner.col_offset,
                    symbol=owner.name,
                    message=(
                        "event source accepts Subscribe but neither implements "
                        "Renew/GetStatus/Unsubscribe nor references an "
                        "event_subscription_manager; subscribers cannot manage "
                        "their subscriptions"
                    ),
                )


def _eventing_action_bindings(module: ModuleContext) -> set[str]:
    bindings = module.bindings_for(
        "actions", ("eventing.source", "eventing.manager", "eventing")
    )
    for class_name, attrs in module.action_classes.items():
        if EVENTING_OPS <= attrs:
            bindings.add(class_name)
    return bindings


def _eventing_op(action: ast.expr, bindings: set[str]) -> str | None:
    if (
        isinstance(action, ast.Attribute)
        and isinstance(action.value, ast.Name)
        and action.value.id in bindings
        and action.attr in EVENTING_OPS
    ):
        return action.attr
    return None


def _references_subscription_manager(node: ast.ClassDef) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Attribute) and child.attr == "event_subscription_manager":
            return True
        if isinstance(child, ast.Name) and child.id == "event_subscription_manager":
            return True
    return False
