"""RPO03 — WS-BaseFaults discipline in the WSRF stack.

§3.1 of the paper: the WSRF family standardises fault reporting through
WS-BaseFaults so that clients of any conformant service can interpret
failures uniformly.  Raising a bare ``ValueError`` (or a hand-rolled
``SoapFault``) from a WSRF/WSN service operation leaks a
stack-local idiom across the SOAP boundary; operations must raise
``repro.wsrf.basefaults`` subclasses (``base_fault(...)`` or a class
derived from it).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import register

# Exception constructors that must not cross the SOAP boundary of a
# WSRF-stack operation.
_BARE_EXCEPTIONS = frozenset(
    {
        "Exception",
        "ValueError",
        "KeyError",
        "TypeError",
        "RuntimeError",
        "NotImplementedError",
        "LookupError",
        "IndexError",
        "SoapFault",
    }
)


def _in_scope(path: str) -> bool:
    parts = path.split("/")
    if "wsrf" in parts or "wsn" in parts:
        return True
    return parts[-1].startswith("wsrf_")


@register
class FaultDisciplineChecker:
    rule_id = "RPO03"
    description = (
        "WSRF-stack service operations raise basefaults subclasses, not bare "
        "exceptions or raw SoapFaults, across the SOAP boundary"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if not _in_scope(module.path):
            return
        for handler in module.web_methods:
            for node in ast.walk(handler.func):
                if not isinstance(node, ast.Raise) or node.exc is None:
                    continue
                name = _raised_callable(node.exc)
                if name in _BARE_EXCEPTIONS:
                    kind = (
                        "a raw SoapFault"
                        if name == "SoapFault"
                        else f"bare {name}"
                    )
                    yield Finding(
                        rule=self.rule_id,
                        path=module.path,
                        line=node.lineno,
                        col=node.col_offset,
                        symbol=handler.symbol,
                        message=(
                            f"service operation raises {kind} across the SOAP "
                            "boundary; raise a repro.wsrf.basefaults subclass "
                            "(e.g. base_fault(...)) instead"
                        ),
                    )


def _raised_callable(exc: ast.expr) -> str | None:
    if isinstance(exc, ast.Call):
        func = exc.func
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
    elif isinstance(exc, ast.Name):
        return exc.id
    return None
