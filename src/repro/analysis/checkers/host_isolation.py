"""RPO09 — host isolation: no shared mutable state across simulated hosts.

The concurrent kernel (ROADMAP item 1) will interleave many requests on
one virtual timeline.  Any module-level mutable, class-level mutable
default, or module-level singleton instance is then *one* object shared
by every simulated host in the process — a race and a fidelity bug,
because two real Globus/WSRF.NET containers would each have their own
copy.  State that two hosts must both observe has to travel through the
mediated substrate (``Network`` messages, ``Clock`` timers,
``ResourceHome`` stores), never through the interpreter's module dict.

Two finding shapes:

w1. a module-level mutable (``{}``/``[]``/``set()``/constructor call)
    mutated from code that runs after import time — handlers or anything
    transitively callable from a function.  Import-time-only mutation
    (decorator registries populated while the module loads) is exempt:
    it is finished before any host exists.
w2. a class-level mutable default (``class C: items = []``) — every
    instance on every host aliases one list.

Pure memoization caches are still flagged — under concurrency they need
an owner — and are expected to be *baselined* with a justification, not
silently exempted, so the inventory of shared state stays visible.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import register
from repro.analysis.project import MODULE_SCOPE, ProjectContext

#: Constructor names whose call produces a fresh mutable container.
_MUTABLE_CALLS = frozenset(
    {"dict", "list", "set", "defaultdict", "deque", "OrderedDict", "Counter"}
)

#: Method names that mutate a container in place.
_MUTATORS = frozenset(
    {
        "append", "add", "update", "pop", "popitem", "remove", "clear",
        "extend", "insert", "setdefault", "discard", "appendleft",
    }
)


def _exempt(path: str) -> bool:
    # The analyzer itself runs offline in a single thread (no hosts), and
    # the sim substrate *is* the mediation layer the rule points to.
    return "repro/analysis/" in path or "repro/sim/" in path


@register
class HostIsolationChecker:
    rule_id = "RPO09"
    description = (
        "no module-level mutables, class-level mutable defaults, or "
        "singletons shared across simulated hosts outside "
        "Network/Clock/ResourceHome mediation"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if _exempt(module.path):
            return
        yield from self._class_defaults(module)
        yield from self._module_mutables(module)

    # -- w2: class-level mutable defaults ------------------------------------

    def _class_defaults(self, module: ModuleContext) -> Iterator[Finding]:
        for klass in module.classes():
            if _is_dataclass(klass) or klass.name == "actions" or klass.name.endswith("_actions"):
                # dataclasses reject mutable defaults themselves; actions
                # tables hold constant strings.
                continue
            for statement in klass.body:
                target = _class_attr_target(statement)
                if target is None or target.isupper():
                    # SCREAMING_CASE class attributes are constant lookup
                    # tables by convention; runtime mutation of one is
                    # caught by the module-level pass when it happens.
                    continue
                value = statement.value
                if value is not None and _is_mutable_value(value):
                    yield Finding(
                        rule=self.rule_id,
                        path=module.path,
                        line=statement.lineno,
                        col=statement.col_offset,
                        symbol=f"{klass.name}.{target}",
                        message=(
                            "class-level mutable default is one object aliased "
                            "by every instance on every simulated host; "
                            "initialize it per-instance in __init__"
                        ),
                        severity="warning",
                    )

    # -- w1: module-level mutables mutated at runtime ------------------------

    def _module_mutables(self, module: ModuleContext) -> Iterator[Finding]:
        project = module.project
        if not isinstance(project, ProjectContext):
            project = ProjectContext.single(module)
        mutables = _module_level_mutables(module)
        if not mutables:
            return
        reported: set[str] = set()
        for node in ast.walk(module.tree):
            name = _mutated_name(node, mutables)
            if name is None or name in reported:
                continue
            info = _enclosing_function(project, module, node)
            if info is None:
                # Mutation at module scope is part of building the table at
                # import time — by definition single-threaded and pre-host.
                continue
            if not _runs_after_import(project, info.qualname):
                continue
            reported.add(name)
            yield Finding(
                rule=self.rule_id,
                path=module.path,
                line=node.lineno,
                col=node.col_offset,
                symbol=info.symbol,
                message=(
                    f"module-level mutable '{name}' is mutated at runtime and "
                    "shared by every simulated host; move it behind "
                    "Network/Clock/ResourceHome mediation or scope it "
                    "per-host"
                ),
                severity="warning",
            )


def _is_dataclass(klass: ast.ClassDef) -> bool:
    for decorator in klass.decorator_list:
        name = decorator
        if isinstance(name, ast.Call):
            name = name.func
        if isinstance(name, ast.Attribute) and name.attr == "dataclass":
            return True
        if isinstance(name, ast.Name) and name.id == "dataclass":
            return True
    return False


def _class_attr_target(statement: ast.stmt) -> str | None:
    if isinstance(statement, ast.Assign) and len(statement.targets) == 1:
        target = statement.targets[0]
        if isinstance(target, ast.Name):
            return target.id
    elif isinstance(statement, ast.AnnAssign) and isinstance(statement.target, ast.Name):
        # ClassVar annotations are an explicit "shared on purpose" marker;
        # still shared, still flagged — baselining is the opt-out.
        return statement.target.id
    return None


def _is_mutable_value(value: ast.expr) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        if isinstance(func, ast.Name):
            return func.id in _MUTABLE_CALLS
        if isinstance(func, ast.Attribute):
            return func.attr in _MUTABLE_CALLS
    return False


def _module_level_mutables(module: ModuleContext) -> set[str]:
    names: set[str] = set()
    for statement in module.tree.body:
        if isinstance(statement, ast.Assign):
            targets = [t for t in statement.targets if isinstance(t, ast.Name)]
            value = statement.value
        elif isinstance(statement, ast.AnnAssign) and isinstance(statement.target, ast.Name):
            targets = [statement.target]
            value = statement.value
        else:
            continue
        if value is not None and _is_mutable_value(value):
            names.update(t.id for t in targets)
    return names


def _mutated_name(node: ast.AST, mutables: set[str]) -> str | None:
    """The module-level name ``node`` mutates, if any."""
    if isinstance(node, ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATORS
            and isinstance(func.value, ast.Name)
            and func.value.id in mutables
        ):
            return func.value.id
    elif isinstance(node, (ast.Assign, ast.AugAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id in mutables
            ):
                return target.value.id
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id in mutables
            ):
                return target.value.id
    return None


def _enclosing_function(project: ProjectContext, module: ModuleContext, target: ast.AST):
    """FunctionInfo of the innermost def containing ``target``, else None."""

    def find(node: ast.AST, current):
        if node is target:
            return current
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = project.function_at(module, node)
            current = info if info is not None else current
        for child in ast.iter_child_nodes(node):
            found = find(child, current)
            if found is not _MISS:
                return found
        return _MISS

    result = find(module.tree, None)
    return None if result is _MISS else result


_MISS = object()


def _runs_after_import(project: ProjectContext, qualname: str) -> bool:
    """True unless every path to this function starts at module scope.

    A function no one calls is assumed to be runtime API surface; one
    only reachable from ``<module>`` scopes (decorator registries) runs
    while the interpreter holds the import lock and is safe.
    """
    callers = project.callers_closure(qualname)
    if not callers:
        return True
    if project.functions.get(qualname) is not None and project.functions[qualname].is_handler:
        return True
    return any(caller in project.functions for caller in callers) or not all(
        caller.endswith(f".{MODULE_SCOPE}") for caller in callers
    )
