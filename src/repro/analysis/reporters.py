"""Text and JSON reporters.

The JSON schema (version 2) is part of the tool's contract and is asserted
by the tier-1 tests::

    {
      "version": 2,
      "tool": "repro-lint",
      "rules": {"RPO01": "<description>", ...},
      "summary": {
        "files_scanned": <int>,
        "total": <int>,       # new + baselined
        "new": <int>,         # findings that fail the run
        "baselined": <int>,
        "parse_failures": <int>
      },
      "findings": [
        {"rule", "severity", "path", "line", "col", "symbol", "message",
         "fingerprint", "normalized_fingerprint", "baselined"},
        ...
      ]
    }

Version 2 added ``normalized_fingerprint`` (the baseline-v2 identity);
``scripts/check.sh`` diffs committed vs. fresh reports by that key.
"""

from __future__ import annotations

import json

from repro.analysis.engine import AnalysisResult
from repro.analysis.registry import rule_table

JSON_REPORT_VERSION = 2


def render_text(result: AnalysisResult, *, show_baselined: bool = False) -> str:
    lines: list[str] = []
    for path, error in result.parse_failures:
        lines.append(f"{path}:0:0: RPO00 [error] <module>: syntax error: {error}")
    for finding in result.findings:
        lines.append(finding.render())
    if show_baselined:
        for finding in result.baselined:
            lines.append(f"{finding.render()}  (baselined)")
    new = len(result.findings) + len(result.parse_failures)
    lines.append(
        f"repro-lint: {result.files_scanned} files, "
        f"{new} new finding{'s' if new != 1 else ''}, "
        f"{len(result.baselined)} baselined"
    )
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    findings = [f.to_dict(baselined=False) for f in result.findings]
    findings += [f.to_dict(baselined=True) for f in result.baselined]
    findings.sort(key=lambda d: (d["path"], d["line"], d["col"], d["rule"]))
    document = {
        "version": JSON_REPORT_VERSION,
        "tool": "repro-lint",
        "rules": rule_table(),
        "summary": {
            "files_scanned": result.files_scanned,
            "total": len(result.findings) + len(result.baselined),
            "new": len(result.findings),
            "baselined": len(result.baselined),
            "parse_failures": len(result.parse_failures),
        },
        "findings": findings,
    }
    return json.dumps(document, indent=2)
