"""Per-file analysis context: one parse, shared derived views.

Every checker receives a :class:`ModuleContext`; the expensive or commonly
needed views (import bindings, ``actions`` class bodies, module-level
names, ``@web_method`` handlers) are computed once per file here rather
than once per checker.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator


def call_name(node: ast.Call) -> str:
    """Terminal name of a call target: ``f(...)`` → ``f``; ``a.b.c(...)`` → ``c``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def dotted_name(node: ast.expr) -> str:
    """``a.b.c`` for a Name/Attribute chain, else ``""``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def is_http_literal(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, str)
        and node.value.startswith(("http://", "https://"))
    )


def web_method_action(func: ast.FunctionDef | ast.AsyncFunctionDef) -> ast.expr | None:
    """The action expression of a ``@web_method(action)`` decorator, if any."""
    for decorator in func.decorator_list:
        if (
            isinstance(decorator, ast.Call)
            and call_name(decorator) == "web_method"
            and decorator.args
        ):
            return decorator.args[0]
    return None


@dataclass
class WebMethod:
    """One ``@web_method``-decorated handler and where it lives."""

    func: ast.FunctionDef | ast.AsyncFunctionDef
    action: ast.expr
    owner: ast.ClassDef | None

    @property
    def symbol(self) -> str:
        if self.owner is not None:
            return f"{self.owner.name}.{self.func.name}"
        return self.func.name


@dataclass
class ModuleContext:
    """Everything checkers can know about one parsed file."""

    path: str  # normalized with "/" separators, as given on the CLI
    tree: ast.Module
    source_lines: list[str]
    module_name: str = ""
    #: ``from X import Y as Z`` → imports["Z"] == ("X", "Y")
    imports: dict[str, tuple[str, str]] = field(default_factory=dict)
    #: ``import a.b.c as x`` → plain_imports["x"] == "a.b.c";
    #: ``import a.b.c`` → plain_imports["a"] == "a" (the bound root).
    plain_imports: dict[str, str] = field(default_factory=dict)
    #: class name → attribute names, for classes named ``actions``/``*_actions``
    action_classes: dict[str, set[str]] = field(default_factory=dict)
    #: names assigned at module level (mutation targets for RPO06)
    module_level_names: set[str] = field(default_factory=set)
    web_methods: list[WebMethod] = field(default_factory=list)
    #: Set by the engine after all files are parsed; single-file analyses
    #: get a project of one module, so interprocedural checkers degrade
    #: gracefully.  Typed loosely to avoid an import cycle with project.py.
    project: object | None = None

    @classmethod
    def build(cls, path: str, source: str) -> "ModuleContext":
        tree = ast.parse(source, filename=path)
        ctx = cls(
            path=path,
            tree=tree,
            source_lines=source.splitlines(),
            module_name=_module_name_for(path),
        )
        ctx._scan()
        return ctx

    # -- derived views -------------------------------------------------------

    def _scan(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
                for alias in node.names:
                    self.imports[alias.asname or alias.name] = (node.module, alias.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        self.plain_imports[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".")[0]
                        self.plain_imports[root] = root
            elif isinstance(node, ast.ClassDef) and (
                node.name == "actions" or node.name.endswith("_actions")
            ):
                attrs: set[str] = set()
                for statement in node.body:
                    if isinstance(statement, ast.Assign):
                        for target in statement.targets:
                            if isinstance(target, ast.Name):
                                attrs.add(target.id)
                    elif isinstance(statement, ast.AnnAssign) and isinstance(
                        statement.target, ast.Name
                    ):
                        attrs.add(statement.target.id)
                self.action_classes[node.name] = attrs
        for statement in self.tree.body:
            for target in _assignment_targets(statement):
                self.module_level_names.add(target)
        self._collect_web_methods(self.tree, owner=None)

    def _collect_web_methods(self, scope: ast.AST, owner: ast.ClassDef | None) -> None:
        for node in ast.iter_child_nodes(scope):
            if isinstance(node, ast.ClassDef):
                self._collect_web_methods(node, owner=node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                action = web_method_action(node)
                if action is not None:
                    self.web_methods.append(WebMethod(node, action, owner))
                self._collect_web_methods(node, owner=owner)

    # -- queries used by several checkers ------------------------------------

    def classes(self) -> Iterator[ast.ClassDef]:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ClassDef):
                yield node

    def bindings_for(self, imported_name: str, module_suffixes: tuple[str, ...]) -> set[str]:
        """Local names bound (via ``from X import Y``) to ``Y == imported_name``
        where X ends with one of ``module_suffixes``."""
        return {
            bound
            for bound, (module, original) in self.imports.items()
            if original == imported_name and module.endswith(module_suffixes)
        }

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.source_lines):
            return self.source_lines[line - 1]
        return ""


def _assignment_targets(statement: ast.stmt) -> Iterator[str]:
    if isinstance(statement, ast.Assign):
        for target in statement.targets:
            if isinstance(target, ast.Name):
                yield target.id
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    if isinstance(element, ast.Name):
                        yield element.id
    elif isinstance(statement, (ast.AnnAssign, ast.AugAssign)) and isinstance(
        statement.target, ast.Name
    ):
        yield statement.target.id


def _module_name_for(path: str) -> str:
    parts = path.replace("\\", "/").split("/")
    stem = parts[-1][:-3] if parts[-1].endswith(".py") else parts[-1]
    if "repro" in parts[:-1]:
        start = parts.index("repro")
        dotted = parts[start:-1] + ([] if stem == "__init__" else [stem])
        return ".".join(dotted)
    return stem
