"""The analysis engine: file discovery, the project-wide pass, the
per-file checker pipeline, inline suppressions, and baseline filtering.

The pipeline parses each file once (memoized by content hash, so repeated
runs in one process — the test suite, engine + report passes — reparse
nothing that did not change), builds a
:class:`~repro.analysis.context.ModuleContext` per file plus one
:class:`~repro.analysis.project.ProjectContext` over the whole file set
(symbol table + call graph), and hands each module to every registered
checker.  Findings on lines carrying a
``# repro-lint: disable=RULE[,RULE...]`` marker are dropped at collection
time; findings matching the baseline are kept but flagged, so reporters
can show them without failing the run.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field

from repro.analysis.baseline import Baseline
from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.project import ProjectContext
from repro.analysis.registry import all_checkers

#: Files the analyzer never lints: the canonical namespace table (the one
#: place URI literals belong) is exempted by the RPO04 checker itself, but
#: generated caches and hidden directories are skipped at discovery.
_SKIP_DIRS = {"__pycache__", ".git", ".pytest_cache"}

_SUPPRESS_MARKER = "repro-lint: disable="

#: Per-file AST cache: path -> (sha1 of source, ModuleContext).  Keyed by
#: content hash so an edited file re-parses and an untouched one never
#: does, across every run in this process.
_CONTEXT_CACHE: dict[str, tuple[str, ModuleContext]] = {}


@dataclass
class AnalysisResult:
    """Everything one run produced."""

    findings: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    parse_failures: list[tuple[str, str]] = field(default_factory=list)

    @property
    def new_findings(self) -> list[Finding]:
        return self.findings

    @property
    def exit_code(self) -> int:
        return 1 if self.findings or self.parse_failures else 0


def discover_files(paths: list[str]) -> list[str]:
    """Expand files/directories into a sorted list of .py files."""
    out: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(
                d for d in dirs if d not in _SKIP_DIRS and not d.startswith(".")
            )
            for name in sorted(files):
                if name.endswith(".py"):
                    out.append(os.path.join(root, name))
    return [p.replace(os.sep, "/") for p in out]


def context_for(path: str) -> ModuleContext:
    """Parse ``path`` into a ModuleContext, memoized by content hash."""
    normalized = path.replace(os.sep, "/")
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    digest = hashlib.sha1(source.encode("utf-8")).hexdigest()
    cached = _CONTEXT_CACHE.get(normalized)
    if cached is not None and cached[0] == digest:
        return cached[1]
    context = ModuleContext.build(normalized, source)
    _CONTEXT_CACHE[normalized] = (digest, context)
    return context


def clear_context_cache() -> None:
    """Drop the per-file AST cache (tests exercising the cache use this)."""
    _CONTEXT_CACHE.clear()


def _check_module(context: ModuleContext, rules: list[str] | None) -> list[Finding]:
    findings: list[Finding] = []
    for rule_id, checker_class in all_checkers().items():
        if rules is not None and rule_id not in rules:
            continue
        findings.extend(checker_class().check(context))
    return [f for f in findings if not _suppressed(context, f)]


def analyze_file(path: str, *, rules: list[str] | None = None) -> list[Finding]:
    """Run every (selected) checker over one file, as a project of one."""
    context = context_for(path)
    context.project = ProjectContext.single(context)
    return _check_module(context, rules)


def run_analysis(
    paths: list[str],
    *,
    baseline: Baseline | None = None,
    rules: list[str] | None = None,
) -> AnalysisResult:
    """Analyze ``paths`` project-wide; split findings into new vs baselined."""
    result = AnalysisResult()
    contexts: list[ModuleContext] = []
    for path in discover_files(paths):
        result.files_scanned += 1
        try:
            contexts.append(context_for(path))
        except SyntaxError as exc:
            result.parse_failures.append((path, str(exc)))
    project = ProjectContext(contexts)
    for context in contexts:
        context.project = project
        for finding in sorted(_check_module(context, rules), key=Finding.sort_key):
            if baseline is not None and baseline.covers(finding):
                result.baselined.append(finding)
            else:
                result.findings.append(finding)
    return result


def _suppressed(context: ModuleContext, finding: Finding) -> bool:
    """Inline suppression: the finding's source line opts out of the rule."""
    line = context.line_text(finding.line)
    marker = line.find(_SUPPRESS_MARKER)
    if marker < 0:
        return False
    listed = line[marker + len(_SUPPRESS_MARKER):].split()[0]
    rules = {item.strip() for item in listed.split(",")}
    return finding.rule in rules or "all" in rules
