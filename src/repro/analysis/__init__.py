"""``repro.analysis`` — AST-based spec-conformance linting for both stacks.

The paper's functional-equivalence claim holds only while every service
honours its stack's contract exactly: the WS-Transfer CRUD quartet, the
WS-Eventing subscription quartet, WS-BaseFaults on the WSRF side, action
URIs derived from the canonical namespace table, honest sim-cost
accounting.  This package enforces those contracts mechanically so that
aggressive refactors cannot silently break them.

Entry points:

* ``python -m repro.analysis [--json] [--baseline FILE] [paths...]``
* the ``repro-lint`` console script
* :func:`repro.analysis.engine.run_analysis` for programmatic use

Built entirely on the standard-library ``ast`` module — no third-party
dependencies, matching the rest of the reproduction.
"""

from repro.analysis.findings import Finding
from repro.analysis.registry import all_checkers, get_checker, register
from repro.analysis.engine import AnalysisResult, run_analysis

__all__ = [
    "AnalysisResult",
    "Finding",
    "all_checkers",
    "get_checker",
    "register",
    "run_analysis",
]
