"""Project-wide analysis: the symbol table and call graph.

The single-module passes (RPO01–RPO08) see one file at a time; the
concurrency-readiness rules (RPO09–RPO13) need to answer *inter*procedural
questions — "is this mutation reachable from a message handler?", "does
this call launder a ``clock.charge`` through a wrapper?".  A
:class:`ProjectContext` is built once per analysis run over every parsed
module and answers those questions for all checkers.

Call resolution is deliberately conservative-but-useful:

* ``f(...)`` resolves through the module's own defs, then its
  ``from X import f`` bindings (including aliases);
* ``self.m(...)`` resolves to the enclosing class's method when it has
  one, else falls back to *dynamic dispatch by name* — every known
  method called ``m`` (an over-approximation that keeps duck-typed
  dispatch visible to reachability queries);
* ``mod.f(...)`` resolves through plain ``import repro.x as mod``
  bindings and through ``from repro import x``-style module bindings;
* ``obj.m(...)`` on anything else uses the same by-name fallback.

Nested functions get their own node plus an implicit edge from the
enclosing function (a closure the parent defines is assumed callable by
it).  Edges never leave the analyzed file set, and all closure queries
are iterative (cycle-safe).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.analysis.context import ModuleContext, web_method_action

#: Attribute names so generic that a by-name fallback edge would be pure
#: noise when the receiver is a builtin container (``seen.add``,
#: ``parts.append``...).  A project method with one of these names is
#: still resolvable through ``self.``.
_GENERIC_ATTRS = frozenset(
    {
        "append", "extend", "insert", "pop", "remove", "clear", "sort",
        "get", "items", "keys", "values", "setdefault", "update",
        "join", "split", "strip", "startswith", "endswith", "format",
        "encode", "decode", "read", "write", "close", "copy",
    }
)

#: Callers at module scope are recorded under this pseudo-function name
#: (per module), so "is this only reached at import time?" is answerable.
MODULE_SCOPE = "<module>"


@dataclass
class CallSite:
    """One call expression, resolved as far as the symbol table allows."""

    node: ast.Call
    #: Qualified names of possible callees within the project (empty when
    #: the target is a builtin / third-party / unresolvable expression).
    targets: tuple[str, ...]
    #: True when the targets came from the by-name fallback rather than a
    #: direct symbol-table resolution.
    dynamic: bool = False


@dataclass
class FunctionInfo:
    """One function or method, project-wide."""

    qualname: str  # "repro.pkg.mod.Class.method" / "repro.pkg.mod.func"
    name: str
    module: ModuleContext
    node: ast.FunctionDef | ast.AsyncFunctionDef
    owner: str | None = None  # enclosing class name, if a method
    is_handler: bool = False  # carries @web_method
    call_sites: list[CallSite] = field(default_factory=list)

    @property
    def symbol(self) -> str:
        """Module-local symbol, matching Finding.symbol conventions."""
        if self.owner is not None:
            return f"{self.owner}.{self.name}"
        return self.name


@dataclass
class ClassInfo:
    qualname: str
    name: str
    module: ModuleContext
    node: ast.ClassDef
    methods: dict[str, str] = field(default_factory=dict)  # name -> fn qualname


class ProjectContext:
    """Symbol table + call graph over one set of parsed modules."""

    def __init__(self, modules: Iterable[ModuleContext]):
        self.modules: dict[str, ModuleContext] = {m.path: m for m in modules}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: terminal function name -> qualnames (dynamic dispatch fallback)
        self.by_name: dict[str, list[str]] = {}
        #: class terminal name -> qualnames
        self.class_by_name: dict[str, list[str]] = {}
        #: caller qualname (or "<module-name>.<module>") -> callee qualnames
        self.calls: dict[str, set[str]] = {}
        self.callers: dict[str, set[str]] = {}
        self._by_node: dict[tuple[str, int], FunctionInfo] = {}
        self._closure_cache: dict[tuple[str, str], frozenset[str]] = {}
        #: Scratch space for checkers: project-wide computations (wrapper
        #: tables, sink sets) are derived once per project here instead of
        #: once per module — the analysis is O(files), not O(files²).
        self.memo: dict[str, object] = {}
        self._collect()
        self._resolve()

    # -- construction -------------------------------------------------------

    def _collect(self) -> None:
        for module in self.modules.values():
            self._collect_scope(module, module.tree, prefix=module.module_name, owner=None)

    def _collect_scope(
        self,
        module: ModuleContext,
        scope: ast.AST,
        prefix: str,
        owner: ClassInfo | None,
    ) -> None:
        for node in ast.iter_child_nodes(scope):
            if isinstance(node, ast.ClassDef):
                qualname = f"{prefix}.{node.name}"
                info = ClassInfo(qualname, node.name, module, node)
                self.classes[qualname] = info
                self.class_by_name.setdefault(node.name, []).append(qualname)
                self._collect_scope(module, node, prefix=qualname, owner=info)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}.{node.name}"
                info = FunctionInfo(
                    qualname=qualname,
                    name=node.name,
                    module=module,
                    node=node,
                    owner=owner.name if owner is not None else None,
                    is_handler=web_method_action(node) is not None,
                )
                self.functions[qualname] = info
                self.by_name.setdefault(node.name, []).append(qualname)
                self._by_node[(module.path, id(node))] = info
                if owner is not None:
                    owner.methods[node.name] = qualname
                # Nested defs belong to this function's scope; the implicit
                # parent->child edge is added during resolution.
                self._collect_scope(module, node, prefix=qualname, owner=None)

    def _resolve(self) -> None:
        for module in self.modules.values():
            self._resolve_scope(
                module,
                module.tree,
                caller=f"{module.module_name}.{MODULE_SCOPE}",
                prefix=module.module_name,
                owner=None,
            )

    def _resolve_scope(
        self,
        module: ModuleContext,
        scope: ast.AST,
        caller: str,
        prefix: str,
        owner: ClassInfo | None,
    ) -> None:
        for node in ast.iter_child_nodes(scope):
            if isinstance(node, ast.ClassDef):
                qualname = f"{prefix}.{node.name}"
                # Decorators and class-body expressions run at definition
                # time in the *enclosing* scope.
                for decorator in node.decorator_list:
                    self._resolve_decorator(module, decorator, caller, owner)
                self._resolve_scope(
                    module, node, caller, qualname, self.classes.get(qualname)
                )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}.{node.name}"
                for decorator in node.decorator_list:
                    self._resolve_decorator(module, decorator, caller, owner)
                if qualname in self.functions and caller in self.functions:
                    # A closure the parent defines is assumed callable by it.
                    self._edge(caller, qualname)
                self._resolve_scope(
                    module,
                    node,
                    caller=qualname if qualname in self.functions else caller,
                    prefix=qualname,
                    owner=owner,
                )
            else:
                self._resolve_expr(module, node, caller, owner)

    def _resolve_decorator(
        self, module: ModuleContext, decorator: ast.expr, caller: str, owner: ClassInfo | None
    ) -> None:
        """A decorator *is* a call at definition time, even when the AST
        shows a bare name (``@register``) — record the edge either way."""
        if isinstance(decorator, ast.Call):
            self._resolve_expr(module, decorator, caller, owner)
            return
        if isinstance(decorator, ast.Name):
            targets = self._resolve_name(module, decorator.id)
        elif isinstance(decorator, ast.Attribute):
            targets = self._fallback(decorator.attr)
        else:
            targets = set()
        for target in targets:
            self._edge(caller, target)

    def _resolve_expr(
        self, module: ModuleContext, node: ast.AST, caller: str, owner: ClassInfo | None
    ) -> None:
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            targets, dynamic = self._targets_for(module, call, owner)
            site = CallSite(call, tuple(sorted(targets)), dynamic)
            info = self.functions.get(caller)
            if info is not None:
                info.call_sites.append(site)
            for target in targets:
                self._edge(caller, target)

    def _targets_for(
        self, module: ModuleContext, call: ast.Call, owner: ClassInfo | None
    ) -> tuple[set[str], bool]:
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_name(module, func.id), False
        if isinstance(func, ast.Attribute):
            attr = func.attr
            base = func.value
            # self.m(...) — the enclosing class's method, if it has one.
            if isinstance(base, ast.Name) and base.id in ("self", "cls"):
                if owner is not None and attr in owner.methods:
                    return {owner.methods[attr]}, False
                return self._fallback(attr), True
            # mod.f(...) via `import pkg.mod as mod` or `from pkg import mod`.
            if isinstance(base, ast.Name):
                target_module = module.plain_imports.get(base.id)
                if target_module is None and base.id in module.imports:
                    source, original = module.imports[base.id]
                    target_module = f"{source}.{original}"
                if target_module is not None:
                    qualname = f"{target_module}.{attr}"
                    if qualname in self.functions:
                        return {qualname}, False
                    init = f"{qualname}.__init__"
                    if qualname in self.classes:
                        return ({init} if init in self.functions else set()), False
                # Class.m(...) via `from pkg import Class`.
                for class_qualname in self.class_by_name.get(base.id, []):
                    info = self.classes[class_qualname]
                    if attr in info.methods:
                        return {info.methods[attr]}, False
            return self._fallback(attr), True
        return set(), False

    def _resolve_name(self, module: ModuleContext, name: str) -> set[str]:
        local = f"{module.module_name}.{name}"
        if local in self.functions:
            return {local}
        if local in self.classes:
            init = f"{local}.__init__"
            return {init} if init in self.functions else set()
        bound = module.imports.get(name)
        if bound is not None:
            source, original = bound
            qualname = f"{source}.{original}"
            if qualname in self.functions:
                return {qualname}
            if qualname in self.classes:
                init = f"{qualname}.__init__"
                return {init} if init in self.functions else set()
            # `from pkg import name` re-exported through __init__: fall back
            # to any unique project definition with that terminal name.
            candidates = [
                q for q in self.by_name.get(original, []) if q.endswith(f".{original}")
            ]
            if len(candidates) == 1:
                return set(candidates)
        return set()

    def _fallback(self, attr: str) -> set[str]:
        """Dynamic dispatch by name: every known def with this name."""
        if attr in _GENERIC_ATTRS:
            return set()
        return set(self.by_name.get(attr, ()))

    def _edge(self, caller: str, callee: str) -> None:
        self.calls.setdefault(caller, set()).add(callee)
        self.callers.setdefault(callee, set()).add(caller)

    # -- queries ------------------------------------------------------------

    def module_for(self, path: str) -> ModuleContext | None:
        return self.modules.get(path)

    def function_at(self, module: ModuleContext, node: ast.AST) -> FunctionInfo | None:
        """The FunctionInfo whose def node is ``node``, if tracked."""
        return self._by_node.get((module.path, id(node)))

    def handlers(self) -> Iterator[FunctionInfo]:
        for info in self.functions.values():
            if info.is_handler:
                yield info

    def callees_closure(self, qualname: str) -> frozenset[str]:
        """Every function transitively callable from ``qualname`` (cycle-safe)."""
        return self._closure("calls", qualname)

    def callers_closure(self, qualname: str) -> frozenset[str]:
        """Every caller that can transitively reach ``qualname`` (cycle-safe)."""
        return self._closure("callers", qualname)

    def _closure(self, direction: str, start: str) -> frozenset[str]:
        cached = self._closure_cache.get((direction, start))
        if cached is not None:
            return cached
        graph = self.calls if direction == "calls" else self.callers
        seen: set[str] = set()
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for neighbour in graph.get(current, ()):
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        result = frozenset(seen)
        self._closure_cache[(direction, start)] = result
        return result

    def reaches(self, qualname: str, targets: set[str] | frozenset[str]) -> bool:
        return bool(self.callees_closure(qualname) & targets)

    def handler_reach(self, qualname: str) -> list[FunctionInfo]:
        """The @web_method handlers from which ``qualname`` is reachable
        (including itself, when it is one)."""
        reachable_from = self.callers_closure(qualname) | {qualname}
        return sorted(
            (info for info in self.handlers() if info.qualname in reachable_from),
            key=lambda info: info.qualname,
        )

    def runtime_reachable(self, qualname: str) -> bool:
        """False when every path to ``qualname`` starts at module scope —
        i.e. the function only ever runs at import time (registry
        decorators and the like).  Over-approximate: any function caller
        anywhere in the closure counts as runtime."""
        return any(
            caller in self.functions for caller in self.callers_closure(qualname)
        )

    @classmethod
    def single(cls, module: ModuleContext) -> "ProjectContext":
        """A project of one file — what ``analyze_file`` uses, so the
        interprocedural rules degrade gracefully to module-local scope."""
        return cls([module])
