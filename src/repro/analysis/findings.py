"""Structured findings: what a checker reports and how it is identified.

A finding's :attr:`~Finding.fingerprint` deliberately excludes line and
column so that baseline entries survive unrelated edits to the same file;
it is the tuple (rule, path, symbol, message) that names a violation.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field

#: Finding severities, in increasing order of concern.  Both count toward
#: the exit code; the split exists so reporters can rank output.
SEVERITIES = ("warning", "error")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one site."""

    rule: str
    path: str
    line: int
    col: int
    symbol: str
    message: str
    severity: str = "error"

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity: {self.severity!r}")

    @property
    def fingerprint(self) -> str:
        """Stable identity used by baseline matching (line-independent)."""
        basis = "|".join((self.rule, self.path, self.symbol, self.message))
        return hashlib.sha1(basis.encode("utf-8")).hexdigest()[:16]

    @property
    def normalized_fingerprint(self) -> str:
        """Baseline-v2 identity: message text is normalized first, so
        entries survive refactors that shift counts or reflow wording
        whitespace without changing what the finding *is*."""
        basis = "|".join(
            (self.rule, self.path, self.symbol, normalize_message(self.message))
        )
        return hashlib.sha1(basis.encode("utf-8")).hexdigest()[:16]

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity}] {self.symbol}: {self.message}"
        )

    def to_dict(self, *, baselined: bool = False) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "message": self.message,
            "fingerprint": self.fingerprint,
            "normalized_fingerprint": self.normalized_fingerprint,
            "baselined": baselined,
        }

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule, self.message)


def normalize_message(message: str) -> str:
    """Collapse whitespace and replace digit runs with ``#`` so messages
    that embed counts ('after 3 attempts') fingerprint stably."""
    collapsed = re.sub(r"\s+", " ", message).strip()
    return re.sub(r"\d+", "#", collapsed)


@dataclass
class FileReport:
    """All findings produced for one file (kept for reporters/tests)."""

    path: str
    findings: list[Finding] = field(default_factory=list)
