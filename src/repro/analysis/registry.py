"""The checker registry: rule ids mapped to checker classes.

Checkers self-register at import time via the :func:`register` decorator;
``repro.analysis.checkers`` imports every built-in checker module so that
importing the package populates the registry.  Third parties (tests, local
rules) can register additional checkers the same way.
"""

from __future__ import annotations

from typing import Iterator, Protocol

from repro.analysis.findings import Finding


class Checker(Protocol):
    """What the engine requires of a checker class."""

    rule_id: str
    description: str

    def check(self, module) -> Iterator[Finding]: ...


_REGISTRY: dict[str, type] = {}


def register(checker_class: type) -> type:
    """Class decorator: add a checker to the global registry."""
    rule_id = getattr(checker_class, "rule_id", "")
    if not rule_id:
        raise ValueError(f"{checker_class.__name__} declares no rule_id")
    if rule_id in _REGISTRY and _REGISTRY[rule_id] is not checker_class:
        raise ValueError(f"duplicate checker registration for {rule_id}")
    _REGISTRY[rule_id] = checker_class
    return checker_class


def unregister(rule_id: str) -> None:
    """Remove a rule (used by tests exercising the registry)."""
    _REGISTRY.pop(rule_id, None)


def get_checker(rule_id: str) -> type | None:
    _ensure_builtins()
    return _REGISTRY.get(rule_id)


def all_checkers() -> dict[str, type]:
    """Rule id → checker class, builtins included, sorted by rule id."""
    _ensure_builtins()
    return dict(sorted(_REGISTRY.items()))


def rule_table() -> dict[str, str]:
    """Rule id → one-line description (for --rules and the JSON report)."""
    return {rid: cls.description for rid, cls in all_checkers().items()}


def _ensure_builtins() -> None:
    # Imported lazily so registry.py itself has no import-order demands.
    import repro.analysis.checkers  # noqa: F401  (registers on import)
