"""The ``repro-lint`` command line.

Exit codes: 0 — clean (or every finding baselined); 1 — new findings or
unparsable files; 2 — usage/configuration errors (bad baseline, missing
paths).
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    Baseline,
    BaselineError,
)
from repro.analysis.engine import run_analysis
from repro.analysis.registry import rule_table
from repro.analysis.reporters import render_json, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Spec-conformance and sim-discipline linter for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument("--json", action="store_true", help="emit the JSON report")
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help=f"baseline file (default: ./{DEFAULT_BASELINE_NAME} when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline, including the default one",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        default=None,
        help="write current findings to FILE as a new baseline and exit 0",
    )
    parser.add_argument(
        "--justification",
        default="accepted by --write-baseline; edit per-entry justifications",
        help="justification recorded on entries created by --write-baseline",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="RPOxx",
        help="run only this rule (repeatable)",
    )
    parser.add_argument(
        "--rules", action="store_true", dest="list_rules", help="list rules and exit"
    )
    parser.add_argument(
        "--show-baselined",
        action="store_true",
        help="also print findings covered by the baseline",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule_id, description in rule_table().items():
            print(f"{rule_id}  {description}")
        return 0

    for path in args.paths:
        if not os.path.exists(path):
            print(f"repro-lint: no such path: {path}", file=sys.stderr)
            return 2

    baseline = None
    if not args.no_baseline and args.write_baseline is None:
        baseline_path = args.baseline
        if baseline_path is None and os.path.exists(DEFAULT_BASELINE_NAME):
            baseline_path = DEFAULT_BASELINE_NAME
        if baseline_path is not None:
            try:
                baseline = Baseline.load(baseline_path)
            except (OSError, ValueError) as exc:
                print(f"repro-lint: cannot load baseline: {exc}", file=sys.stderr)
                return 2

    result = run_analysis(args.paths, baseline=baseline, rules=args.rules)

    if args.write_baseline is not None:
        fresh = Baseline.from_findings(result.findings, args.justification)
        fresh.save(args.write_baseline)
        print(
            f"repro-lint: wrote {len(fresh)} entr{'ies' if len(fresh) != 1 else 'y'} "
            f"to {args.write_baseline}"
        )
        return 0

    print(render_json(result) if args.json else render_text(result, show_baselined=args.show_baselined))
    return result.exit_code
