"""The ``repro-lint`` command line.

Exit codes: 0 — clean (or every finding baselined); 1 — new findings or
unparsable files (or findings not in the ``--fail-on-new`` report);
2 — usage/configuration errors (bad baseline or report, missing paths).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    Baseline,
    BaselineError,
)
from repro.analysis.engine import run_analysis
from repro.analysis.findings import Finding
from repro.analysis.registry import rule_table
from repro.analysis.reporters import render_json, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Spec-conformance and sim-discipline linter for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default=None,
        dest="format",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the JSON report (same as --format json)",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="write the report to FILE (parent directories are created); "
        "stdout then carries only the summary line",
    )
    parser.add_argument(
        "--fail-on-new",
        metavar="REPORT",
        default=None,
        help="also exit 1 if any finding (new or baselined) is absent from "
        "this committed JSON report — the check.sh regression gate",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help=f"baseline file (default: ./{DEFAULT_BASELINE_NAME} when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline, including the default one",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        default=None,
        help="write current findings to FILE as a new baseline and exit 0",
    )
    parser.add_argument(
        "--justification",
        default="accepted by --write-baseline; edit per-entry justifications",
        help="justification recorded on entries created by --write-baseline",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="RPOxx",
        help="run only this rule (repeatable)",
    )
    parser.add_argument(
        "--rules", action="store_true", dest="list_rules", help="list rules and exit"
    )
    parser.add_argument(
        "--show-baselined",
        action="store_true",
        help="also print findings covered by the baseline",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule_id, description in rule_table().items():
            print(f"{rule_id}  {description}")
        return 0

    for path in args.paths:
        if not os.path.exists(path):
            print(f"repro-lint: no such path: {path}", file=sys.stderr)
            return 2

    baseline = None
    if not args.no_baseline and args.write_baseline is None:
        baseline_path = args.baseline
        if baseline_path is None and os.path.exists(DEFAULT_BASELINE_NAME):
            baseline_path = DEFAULT_BASELINE_NAME
        if baseline_path is not None:
            try:
                baseline = Baseline.load(baseline_path)
            except (OSError, ValueError) as exc:
                print(f"repro-lint: cannot load baseline: {exc}", file=sys.stderr)
                return 2

    result = run_analysis(args.paths, baseline=baseline, rules=args.rules)

    if args.write_baseline is not None:
        fresh = Baseline.from_findings(result.findings, args.justification)
        fresh.save(args.write_baseline)
        print(
            f"repro-lint: wrote {len(fresh)} entr{'ies' if len(fresh) != 1 else 'y'} "
            f"to {args.write_baseline}"
        )
        return 0

    use_json = args.json or args.format == "json"
    report = (
        render_json(result)
        if use_json
        else render_text(result, show_baselined=args.show_baselined)
    )

    if args.out is not None:
        parent = os.path.dirname(args.out)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report)
            handle.write("\n")
        new = len(result.findings) + len(result.parse_failures)
        print(
            f"repro-lint: {result.files_scanned} files, {new} new, "
            f"{len(result.baselined)} baselined -> {args.out}"
        )
    else:
        print(report)

    exit_code = result.exit_code
    if args.fail_on_new is not None:
        try:
            novel = _novel_versus_report(result, args.fail_on_new)
        except (OSError, ValueError) as exc:
            print(f"repro-lint: cannot load report: {exc}", file=sys.stderr)
            return 2
        for finding in novel:
            print(f"repro-lint: not in {args.fail_on_new}: {finding.render()}")
        if novel:
            exit_code = max(exit_code, 1)
    return exit_code


def _novel_versus_report(result, report_path: str) -> list:
    """Findings of this run absent from the committed JSON report.

    Both new and baselined findings count: the committed report is the
    reviewed inventory, and anything outside it — even if a (possibly
    stale) baseline covers it — should fail the gate until the report is
    regenerated and committed.
    """
    with open(report_path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    known = set()
    for entry in document.get("findings", []):
        normalized = entry.get("normalized_fingerprint")
        if normalized is None:
            # Version-1 reports predate the field; recompute it.
            normalized = Finding(
                rule=entry["rule"],
                path=entry["path"],
                line=0,
                col=0,
                symbol=entry["symbol"],
                message=entry["message"],
            ).normalized_fingerprint
        known.add(normalized)
    return [
        finding
        for finding in sorted(
            result.findings + result.baselined, key=lambda f: f.sort_key()
        )
        if finding.normalized_fingerprint not in known
    ]
