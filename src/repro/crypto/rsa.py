"""RSA with PKCS#1 v1.5 signatures (pure Python).

Only what WS-Security needs: keypair generation, ``sign``/``verify`` with
EMSA-PKCS1-v1_5 encoding over SHA-1 (the 2004-era default) or SHA-256.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass

from repro.crypto.primes import generate_prime


class SignatureError(ValueError):
    """Raised when a signature fails to verify or inputs are malformed."""


#: ASN.1 DigestInfo prefixes for EMSA-PKCS1-v1_5 (RFC 3447 §9.2 notes).
_DIGEST_INFO_PREFIX = {
    "sha1": bytes.fromhex("3021300906052b0e03021a05000414"),
    "sha256": bytes.fromhex("3031300d060960864801650304020105000420"),
}


def _emsa_pkcs1_v15(message: bytes, em_len: int, hash_name: str) -> bytes:
    prefix = _DIGEST_INFO_PREFIX.get(hash_name)
    if prefix is None:
        raise SignatureError(f"unsupported hash: {hash_name!r}")
    digest = hashlib.new(hash_name, message).digest()
    t = prefix + digest
    if em_len < len(t) + 11:
        raise SignatureError("RSA modulus too small for this digest")
    padding = b"\xff" * (em_len - len(t) - 3)
    return b"\x00\x01" + padding + b"\x00" + t


@dataclass(frozen=True)
class RsaPublicKey:
    """The public half (n, e)."""

    n: int
    e: int

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def verify(self, message: bytes, signature: bytes, hash_name: str = "sha1") -> None:
        """Raise :class:`SignatureError` unless ``signature`` is valid."""
        k = self.byte_length
        if len(signature) != k:
            raise SignatureError("signature length does not match modulus")
        s = int.from_bytes(signature, "big")
        if s >= self.n:
            raise SignatureError("signature representative out of range")
        em = pow(s, self.e, self.n).to_bytes(k, "big")
        expected = _emsa_pkcs1_v15(message, k, hash_name)
        if em != expected:
            raise SignatureError("signature verification failed")

    def fingerprint(self) -> str:
        """Short stable identifier used in KeyInfo elements."""
        material = f"{self.n:x}:{self.e:x}".encode()
        return hashlib.sha1(material).hexdigest()[:16]


_KEY_CACHE: dict[tuple[int, int | None], "RsaKeyPair"] = {}


@dataclass(frozen=True)
class RsaKeyPair:
    """A full keypair; ``public`` strips the private exponent."""

    n: int
    e: int
    d: int

    @classmethod
    def generate(cls, bits: int = 1024, seed: int | None = None) -> "RsaKeyPair":
        """Generate a keypair deterministically from ``seed``.

        Determinism makes memoization sound: the same (bits, seed) always
        yields the same key, so repeated deployment builds skip the search.
        """
        cached = _KEY_CACHE.get((bits, seed))
        if cached is not None:
            return cached
        rng = random.Random(seed if seed is not None else 0x5EED)
        e = 65537
        while True:
            p = generate_prime(bits // 2, rng)
            q = generate_prime(bits - bits // 2, rng)
            if p == q:
                continue
            phi = (p - 1) * (q - 1)
            if math.gcd(e, phi) != 1:
                continue
            n = p * q
            if n.bit_length() != bits:
                continue
            d = pow(e, -1, phi)
            keypair = cls(n=n, e=e, d=d)
            _KEY_CACHE[(bits, seed)] = keypair
            return keypair

    @property
    def public(self) -> RsaPublicKey:
        return RsaPublicKey(self.n, self.e)

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def sign(self, message: bytes, hash_name: str = "sha1") -> bytes:
        """EMSA-PKCS1-v1_5 signature over ``message``."""
        k = self.byte_length
        em = _emsa_pkcs1_v15(message, k, hash_name)
        m = int.from_bytes(em, "big")
        return pow(m, self.d, self.n).to_bytes(k, "big")
