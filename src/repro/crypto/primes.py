"""Prime generation for RSA key material."""

from __future__ import annotations

import random

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
)


def is_probable_prime(n: int, rng: random.Random | None = None, rounds: int = 24) -> bool:
    """Miller-Rabin primality test (probabilistic; error < 4**-rounds)."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    rng = rng or random.Random(0xC0FFEE ^ n)
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: random.Random) -> int:
    """Generate a prime of exactly ``bits`` bits using ``rng``.

    Deterministic for a given seeded ``rng``, which keeps generated keys —
    and therefore every signed message in the simulation — reproducible.
    """
    if bits < 8:
        raise ValueError("prime size must be at least 8 bits")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # exact bit length, odd
        if is_probable_prime(candidate, rng):
            return candidate
