"""XML digital signatures over the exclusive canonical form.

A detached ``ds:Signature`` element covering one target element (in practice
the SOAP Body).  Structure follows XML-DSig: a ``SignedInfo`` holding the
digest of the canonicalized target, an RSA ``SignatureValue`` over the
canonicalized ``SignedInfo``, and a ``KeyInfo`` naming the signer's X.509
subject so the verifier can find the certificate.
"""

from __future__ import annotations

import base64
import hashlib

from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, SignatureError
from repro.crypto.x509 import Certificate
from repro.xmllib import canonicalize, element, text_of
from repro.xmllib import ns
from repro.xmllib.element import XmlElement, content_key
from repro.xmllib.memo import ContentCache, memo_enabled


class DsigError(ValueError):
    """Raised when a signature element is malformed or fails verification."""


_C14N_ALG = "urn:repro:c14n:exclusive-lite"
_SIG_ALG = ns.DSIG_RSA_SHA1
_DIGEST_ALG = ns.DSIG_SHA1

# Content-keyed memoization (DESIGN.md §16).  Digests, signatures and
# verification verdicts are pure functions of (content, key material):
# PKCS#1 v1.5 signing is deterministic, so a cached signature is
# byte-identical to a freshly computed one, and content keys change on any
# mutation of the covered tree, so stale entries can only miss.  Cached
# Signature elements are private copies — callers get a fresh copy per hit
# and can never mutate the cached instance.  Verification caches successes
# only; failures always re-raise through the full path.
_DIGESTS = ContentCache("dsig.digest", capacity=8192)
_SIGNATURES = ContentCache("dsig.sign", capacity=2048)
_VERIFIED = ContentCache("dsig.verify", capacity=8192)


def _digest(target: XmlElement) -> str:
    if memo_enabled():
        key = content_key(target)
        cached = _DIGESTS.get(key)
        if cached is not None:
            return cached
    payload = canonicalize(target).encode()
    value = base64.b64encode(hashlib.sha1(payload).digest()).decode()
    if memo_enabled():
        _DIGESTS.put(key, value)
    return value


def _signed_info(digest_value: str, reference_uri: str) -> XmlElement:
    return element(
        f"{{{ns.DS}}}SignedInfo",
        element(f"{{{ns.DS}}}CanonicalizationMethod", attrs={"Algorithm": _C14N_ALG}),
        element(f"{{{ns.DS}}}SignatureMethod", attrs={"Algorithm": _SIG_ALG}),
        element(
            f"{{{ns.DS}}}Reference",
            element(f"{{{ns.DS}}}DigestMethod", attrs={"Algorithm": _DIGEST_ALG}),
            element(f"{{{ns.DS}}}DigestValue", digest_value),
            attrs={"URI": reference_uri},
        ),
    )


def sign_element(
    target: XmlElement,
    keypair: RsaKeyPair,
    certificate: Certificate,
    *,
    reference_uri: str = "#Body",
) -> XmlElement:
    """Produce a ``ds:Signature`` element covering ``target``."""
    enabled = memo_enabled()
    if enabled:
        cache_key = (
            content_key(target),
            reference_uri,
            keypair.n,
            keypair.d,
            str(certificate.subject),
        )
        cached = _SIGNATURES.get(cache_key)
        if cached is not None:
            return cached.copy()
    signed_info = _signed_info(_digest(target), reference_uri)
    signature_bytes = keypair.sign(canonicalize(signed_info).encode())
    signature = element(
        f"{{{ns.DS}}}Signature",
        signed_info,
        element(f"{{{ns.DS}}}SignatureValue", base64.b64encode(signature_bytes).decode()),
        element(
            f"{{{ns.DS}}}KeyInfo",
            element(f"{{{ns.DS}}}X509SubjectName", str(certificate.subject)),
        ),
    )
    if enabled:
        _SIGNATURES.put(cache_key, signature.copy())
    return signature


def signer_subject(signature: XmlElement) -> str:
    """Extract the X509SubjectName naming the signing identity."""
    key_info = signature.find(f"{{{ns.DS}}}KeyInfo")
    subject = key_info.find(f"{{{ns.DS}}}X509SubjectName") if key_info else None
    name = text_of(subject)
    if not name:
        raise DsigError("signature carries no X509SubjectName")
    return name


def verify_element(
    target: XmlElement,
    signature: XmlElement,
    public_key: RsaPublicKey,
) -> None:
    """Verify ``signature`` over ``target``; raise :class:`DsigError` if bad.

    Checks both layers: the reference digest against the canonicalized
    target (tamper evidence) and the RSA signature over SignedInfo
    (authenticity).
    """
    enabled = memo_enabled()
    if enabled:
        cache_key = (
            content_key(target),
            content_key(signature),
            public_key.n,
            public_key.e,
        )
        if _VERIFIED.get(cache_key) is not None:
            return
    signed_info = signature.find(f"{{{ns.DS}}}SignedInfo")
    if signed_info is None:
        raise DsigError("signature has no SignedInfo")
    reference = signed_info.find(f"{{{ns.DS}}}Reference")
    if reference is None:
        raise DsigError("SignedInfo has no Reference")
    claimed_digest = text_of(reference.find(f"{{{ns.DS}}}DigestValue"))
    if claimed_digest != _digest(target):
        raise DsigError("digest mismatch: signed content was modified")
    value_el = signature.find(f"{{{ns.DS}}}SignatureValue")
    if value_el is None:
        raise DsigError("signature has no SignatureValue")
    try:
        signature_bytes = base64.b64decode(text_of(value_el), validate=True)
    except Exception as exc:
        raise DsigError(f"SignatureValue is not valid base64: {exc}") from exc
    try:
        public_key.verify(canonicalize(signed_info).encode(), signature_bytes)
    except SignatureError as exc:
        raise DsigError("RSA signature verification failed") from exc
    if enabled:
        _VERIFIED.put(cache_key, True)
