"""X.509-style certificates and a minimal certificate authority.

The Grid-in-a-Box account service keys accounts by the user's X.509
Distinguished Name, so DNs are first-class here.  Certificates are signed
XML documents (rather than ASN.1/DER) — the structure and trust semantics
are what the reproduction needs, not the encoding.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, SignatureError
from repro.xmllib import canonicalize, element
from repro.xmllib.element import XmlElement
from repro.xmllib.memo import ContentCache, memo_enabled


class CertificateError(ValueError):
    """Raised for invalid, expired or untrusted certificates."""


# Successful issuer-signature checks, keyed by the (frozen, hashable)
# certificate and issuer key.  Only the time-independent signature check is
# cached; the validity window is evaluated on every call because ``at_time``
# moves with the virtual clock.  Failures are never cached.
_CHECKED = ContentCache("x509.check", capacity=1024)


@dataclass(frozen=True)
class DistinguishedName:
    """A simplified DN: CN plus optional O/OU/C components."""

    common_name: str
    organization: str = ""
    unit: str = ""
    country: str = ""

    def __str__(self) -> str:
        parts = [f"CN={self.common_name}"]
        if self.unit:
            parts.append(f"OU={self.unit}")
        if self.organization:
            parts.append(f"O={self.organization}")
        if self.country:
            parts.append(f"C={self.country}")
        return ", ".join(parts)

    @classmethod
    def parse(cls, text: str) -> "DistinguishedName":
        fields = {"CN": "", "OU": "", "O": "", "C": ""}
        for chunk in text.split(","):
            chunk = chunk.strip()
            if not chunk or "=" not in chunk:
                continue
            key, _, value = chunk.partition("=")
            key = key.strip().upper()
            if key in fields:
                fields[key] = value.strip()
        if not fields["CN"]:
            raise CertificateError(f"DN has no CN component: {text!r}")
        return cls(fields["CN"], fields["O"], fields["OU"], fields["C"])

    def hashed(self) -> str:
        """Stable directory-name hash (the WS-Transfer DataService stores
        each user's files under a hash of the DN — paper §4.2.2)."""
        return hashlib.sha1(str(self).encode()).hexdigest()[:12]


@dataclass(frozen=True)
class Certificate:
    """A signed binding of a DN to a public key."""

    subject: DistinguishedName
    issuer: DistinguishedName
    public_key: RsaPublicKey
    serial: int
    not_before: float
    not_after: float
    signature: bytes

    def tbs_element(self) -> XmlElement:
        """The to-be-signed portion as a canonical XML element."""
        return _tbs_element(
            self.subject, self.issuer, self.public_key, self.serial,
            self.not_before, self.not_after,
        )

    def check(self, issuer_key: RsaPublicKey, at_time: float) -> None:
        """Verify issuer signature and validity window."""
        if not (self.not_before <= at_time <= self.not_after):
            raise CertificateError(
                f"certificate for {self.subject} not valid at t={at_time}"
            )
        enabled = memo_enabled()
        if enabled and _CHECKED.get((self, issuer_key)) is not None:
            return
        payload = canonicalize(self.tbs_element()).encode()
        try:
            issuer_key.verify(payload, self.signature)
        except SignatureError as exc:
            raise CertificateError(f"bad issuer signature on {self.subject}") from exc
        if enabled:
            _CHECKED.put((self, issuer_key), True)


def _tbs_element(
    subject: DistinguishedName,
    issuer: DistinguishedName,
    key: RsaPublicKey,
    serial: int,
    not_before: float,
    not_after: float,
) -> XmlElement:
    return element(
        "{urn:repro:x509}Certificate",
        element("{urn:repro:x509}Subject", str(subject)),
        element("{urn:repro:x509}Issuer", str(issuer)),
        element("{urn:repro:x509}Serial", serial),
        element("{urn:repro:x509}NotBefore", repr(not_before)),
        element("{urn:repro:x509}NotAfter", repr(not_after)),
        element(
            "{urn:repro:x509}PublicKey",
            element("{urn:repro:x509}Modulus", f"{key.n:x}"),
            element("{urn:repro:x509}Exponent", str(key.e)),
        ),
    )


@dataclass
class CertificateAuthority:
    """Issues certificates for the virtual organisation.

    The VO builder creates one CA and issues a cert per service host and per
    user; trust checks in the security handler go back to this root.
    """

    name: DistinguishedName
    keypair: RsaKeyPair
    _serial: int = field(default=1)

    @classmethod
    def create(cls, common_name: str = "Repro Grid CA", seed: int = 7) -> "CertificateAuthority":
        return cls(
            name=DistinguishedName(common_name, organization="Repro VO"),
            keypair=RsaKeyPair.generate(seed=seed),
        )

    def issue(
        self,
        subject: DistinguishedName,
        public_key: RsaPublicKey,
        *,
        not_before: float = 0.0,
        not_after: float = float("inf"),
    ) -> Certificate:
        serial = self._serial
        self._serial += 1
        payload = canonicalize(
            _tbs_element(subject, self.name, public_key, serial, not_before, not_after)
        ).encode()
        signature = self.keypair.sign(payload)
        return Certificate(
            subject=subject,
            issuer=self.name,
            public_key=public_key,
            serial=serial,
            not_before=not_before,
            not_after=not_after,
            signature=signature,
        )

    def issue_identity(
        self, common_name: str, *, seed: int, organization: str = "Repro VO"
    ) -> tuple[Certificate, RsaKeyPair]:
        """Convenience: generate a keypair and issue a certificate for it."""
        keypair = RsaKeyPair.generate(seed=seed)
        subject = DistinguishedName(common_name, organization=organization)
        return self.issue(subject, keypair.public), keypair
