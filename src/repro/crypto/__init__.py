"""Pure-Python WS-Security substrate.

Implements the pieces Microsoft's WSE provided to the paper's testbed:
RSA key generation (Miller-Rabin), PKCS#1 v1.5 signatures, X.509-style
certificates with a small CA, and XML-DSig detached signatures computed over
the exclusive canonical form from :mod:`repro.xmllib.c14n`.

Signatures are *real* — tampering with a signed message genuinely fails
verification — while their virtual-time cost is charged from the calibrated
:class:`~repro.sim.costs.CostModel` so the paper's "X.509 processing
dominates" result reproduces deterministically.
"""

from repro.crypto.primes import generate_prime, is_probable_prime
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, SignatureError
from repro.crypto.x509 import (
    Certificate,
    CertificateAuthority,
    CertificateError,
    DistinguishedName,
)
from repro.crypto.xmldsig import DsigError, sign_element, verify_element

__all__ = [
    "generate_prime",
    "is_probable_prime",
    "RsaKeyPair",
    "RsaPublicKey",
    "SignatureError",
    "Certificate",
    "CertificateAuthority",
    "CertificateError",
    "DistinguishedName",
    "DsigError",
    "sign_element",
    "verify_element",
]
