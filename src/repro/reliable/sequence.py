"""WS-ReliableMessaging sequences: message numbers, dedup, ordering.

Follows the 2005-02 WS-RM submission's model: the sender opens a
*Sequence* (identified by a ``wsrm:Identifier`` URI) and stamps every
message with a 1-based ``wsrm:MessageNumber``.  At-least-once
retransmission plus receiver-side duplicate suppression yields
exactly-once delivery; an optional in-order mode buffers gaps.

Two wire shapes are supported, matching the two paths that need them:

* **Notifications** carry a composite ``wsrm:Sequence`` SOAP header
  (:func:`sequence_header` / :func:`read_sequence_header`) — the shape
  the WS-RM spec defines.
* **Request/response invocations** carry the identifier and number as
  flat headers smuggled through WS-Addressing reference properties
  (see :mod:`repro.reliable.channel`), because the proxy layer already
  round-trips unknown headers that way.

Identifiers are fixed-width (like WS-Addressing message ids) so message
byte sizes — and therefore all charged wire costs — are identical across
reruns.
"""

from __future__ import annotations

import itertools

from repro.soap.envelope import Envelope
from repro.xmllib import QName, element, ns, text_of
from repro.xmllib.element import XmlElement

#: Flat-header names used on the request/response (channel) path.
SEQUENCE_ID_HEADER = QName(ns.WSRM, "Identifier")
MESSAGE_NUMBER_HEADER = QName(ns.WSRM, "MessageNumber")

_SEQUENCE = QName(ns.WSRM, "Sequence")

_sequence_counter = itertools.count(1)


def next_sequence_id() -> str:
    """Deterministic, fixed-width sequence identifiers."""
    return f"urn:repro:seq-{next(_sequence_counter):08d}"


def sequence_header(identifier: str, number: int) -> XmlElement:
    """Build the composite ``wsrm:Sequence`` header element."""
    return element(
        _SEQUENCE,
        element(SEQUENCE_ID_HEADER, identifier),
        element(MESSAGE_NUMBER_HEADER, str(number)),
    )


def read_sequence_header(envelope: Envelope) -> tuple[str, int] | None:
    """Extract ``(identifier, message_number)`` from an envelope, if any.

    Understands both the composite ``wsrm:Sequence`` header and the flat
    pair used on the invocation path.
    """
    composite = envelope.header_element(_SEQUENCE)
    if composite is not None:
        identifier = text_of(composite.find(SEQUENCE_ID_HEADER)).strip()
        number = text_of(composite.find(MESSAGE_NUMBER_HEADER)).strip()
        if identifier and number:
            return identifier, int(number)
        return None
    flat_id = envelope.header_element(SEQUENCE_ID_HEADER)
    flat_num = envelope.header_element(MESSAGE_NUMBER_HEADER)
    if flat_id is not None and flat_num is not None:
        identifier = flat_id.text().strip()
        number = flat_num.text().strip()
        if identifier and number:
            return identifier, int(number)
    return None


class OutboundSequence:
    """Sender-side state: hands out message numbers, tracks outcomes."""

    def __init__(self, destination: str, identifier: str | None = None) -> None:
        self.destination = destination
        self.identifier = identifier if identifier is not None else next_sequence_id()
        self._next = 1
        #: Message numbers acknowledged as delivered.
        self.acked: set[int] = set()
        #: Message numbers that ended in the dead-letter log.
        self.dead: set[int] = set()

    def next_number(self) -> int:
        number = self._next
        self._next += 1
        return number

    @property
    def assigned(self) -> int:
        """How many message numbers have been handed out."""
        return self._next - 1

    def ack(self, number: int) -> None:
        self.acked.add(number)

    def mark_dead(self, number: int) -> None:
        self.dead.add(number)

    @property
    def outstanding(self) -> set[int]:
        """Numbers neither acked nor dead — must be empty when a run
        settles, or messages were lost *and unreported*."""
        return set(range(1, self._next)) - self.acked - self.dead


class InboundSequence:
    """Receiver-side state for one sequence: dedup and optional ordering."""

    def __init__(self, identifier: str, *, ordered: bool = False) -> None:
        self.identifier = identifier
        self.ordered = ordered
        self._seen: set[int] = set()
        self._buffer: dict[int, object] = {}
        self._next_expected = 1
        #: Duplicate deliveries suppressed.
        self.duplicates = 0

    def receive(self, number: int, payload) -> list:
        """Admit one transmission; return payloads now deliverable.

        Unordered mode: first copy of each number passes, repeats are
        suppressed.  Ordered mode: additionally buffers out-of-order
        arrivals until the gap fills, then releases the contiguous run.
        """
        if number in self._seen:
            self.duplicates += 1
            return []
        self._seen.add(number)
        if not self.ordered:
            return [payload]
        self._buffer[number] = payload
        released = []
        while self._next_expected in self._buffer:
            released.append(self._buffer.pop(self._next_expected))
            self._next_expected += 1
        return released

    @property
    def buffered(self) -> int:
        """Out-of-order payloads awaiting a gap fill (ordered mode)."""
        return len(self._buffer)


class InboundDeduper:
    """Per-source dedup front door for a notification consumer.

    Wraps :class:`InboundSequence` instances keyed by sequence
    identifier.  Envelopes without a sequence header pass straight
    through (unreliable senders keep working).
    """

    def __init__(self, *, ordered: bool = False) -> None:
        self.ordered = ordered
        self._sequences: dict[str, InboundSequence] = {}

    def admit(self, envelope: Envelope) -> list[Envelope]:
        """Return the envelopes to actually deliver (0, 1, or several)."""
        stamp = read_sequence_header(envelope)
        if stamp is None:
            return [envelope]
        identifier, number = stamp
        seq = self._sequences.get(identifier)
        if seq is None:
            seq = InboundSequence(identifier, ordered=self.ordered)
            self._sequences[identifier] = seq
        return seq.receive(number, envelope)

    @property
    def duplicates(self) -> int:
        return sum(seq.duplicates for seq in self._sequences.values())

    @property
    def buffered(self) -> int:
        return sum(seq.buffered for seq in self._sequences.values())


class InboundRequestLog:
    """Server-side exactly-once cache for the invocation path.

    Keyed by ``(sequence identifier, message number)``; stores the signed
    reply bytes so a retransmitted request is answered from cache without
    re-executing the service (WS-RM's destination-side contract).
    """

    def __init__(self) -> None:
        self._replies: dict[tuple[str, int], object] = {}
        #: Retransmissions answered from cache.
        self.duplicates = 0

    def replay(self, key: tuple[str, int]):
        """The cached reply for ``key``, or ``None`` on first sight."""
        reply = self._replies.get(key)
        if reply is not None:
            self.duplicates += 1
        return reply

    def store(self, key: tuple[str, int], reply) -> None:
        self._replies[key] = reply

    def __len__(self) -> int:
        return len(self._replies)
