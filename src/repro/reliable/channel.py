"""ReliableChannel: retransmitting wrapper around a SOAP client proxy.

Duck-types :class:`~repro.container.client.SoapClient` (``invoke`` plus
the attributes out-call sites touch), so any code holding a client can
hold a reliable one instead — WSRF proxies, WS-Transfer proxies, and
container out-calls alike.

Wire shape: each invocation is stamped with the WS-RM sequence
identifier and message number as *flat* headers carried through the
EPR's reference properties.  That is a documented adaptation of the
spec's composite ``wsrm:Sequence`` header: the proxy layer already
echoes reference properties as SOAP headers, which gives us the stamp
on the wire — and back out of ``MessageHeaders`` server-side — without
a parallel marshalling path.  This class assigns the sequence numbers
and drives the retry loop; the stamping itself is done by the
pipeline's :class:`~repro.pipeline.filters.ReliableMessagingFilter`,
which receives the stamp via ``invoke(..., rm_stamp=...)``.  The
synchronous request/response exchange
doubles as the acknowledgement (a reply *is* the ack); lost replies
cause a retransmission that the server answers from its
:class:`~repro.reliable.sequence.InboundRequestLog` without
re-executing the service, preserving exactly-once semantics.
"""

from __future__ import annotations

from repro.addressing.epr import EndpointReference
from repro.reliable.deadletter import DeadLetterLog
from repro.reliable.policy import RetryPolicy
from repro.reliable.sequence import OutboundSequence
from repro.sim.faults import DeliveryFault
from repro.xmllib.element import XmlElement


class RetryExhausted(DeliveryFault):
    """All transmission attempts failed; the message is dead-lettered.

    Subclasses :class:`DeliveryFault` so an *outer* reliability layer
    (e.g. a reliable notifier whose out-call rides a reliable channel)
    treats exhaustion below it as just another delivery failure.
    """

    def __init__(self, message: str, record) -> None:
        super().__init__(message)
        #: The :class:`~repro.reliable.deadletter.DeadLetterRecord`.
        self.record = record


class ReliableChannel:
    """At-least-once retransmission over an unreliable simulated wire."""

    def __init__(
        self,
        client,
        policy: RetryPolicy | None = None,
        dead_letters: DeadLetterLog | None = None,
    ) -> None:
        self.client = client
        self.policy = policy if policy is not None else RetryPolicy()
        self.dead_letters = dead_letters if dead_letters is not None else DeadLetterLog()
        self._sequences: dict[str, OutboundSequence] = {}
        #: Invocations that ultimately succeeded.
        self.delivered = 0
        #: Extra transmission attempts beyond the first, across all messages.
        self.retransmissions = 0

    # -- SoapClient duck-type surface --------------------------------------

    @property
    def network(self):
        return self.client.network

    @property
    def deployment(self):
        return self.client.deployment

    @property
    def host(self):
        return self.client.host

    @property
    def credentials(self):
        return self.client.credentials

    # -- sequences ---------------------------------------------------------

    def sequence_for(self, destination: str) -> OutboundSequence:
        seq = self._sequences.get(destination)
        if seq is None:
            seq = OutboundSequence(destination)
            self._sequences[destination] = seq
        return seq

    @property
    def sequences(self) -> list[OutboundSequence]:
        return list(self._sequences.values())

    @property
    def assigned(self) -> int:
        return sum(seq.assigned for seq in self._sequences.values())

    # -- the reliable invoke ------------------------------------------------

    def invoke(
        self,
        epr: EndpointReference,
        action: str,
        body: XmlElement,
        **kwargs,
    ) -> XmlElement | None:
        """Invoke with retransmission; raise :class:`RetryExhausted` on
        failure after dead-lettering.  Non-transport errors (SOAP faults,
        security failures) pass through untouched — retrying those would
        not help."""
        sequence = self.sequence_for(epr.address)
        number = sequence.next_number()
        clock = self.network.clock
        spent_backoff = 0.0
        attempts = 0
        last: DeliveryFault | None = None
        for attempt in range(1, self.policy.max_attempts + 1):
            attempts = attempt
            try:
                result = self.client.invoke(
                    epr, action, body,
                    rm_stamp=(sequence.identifier, number), **kwargs,
                )
            except DeliveryFault as exc:
                last = exc
                if attempt >= self.policy.max_attempts:
                    reason = f"retries exhausted after {attempt} attempts: {exc}"
                    break
                if not self.policy.within_budget(spent_backoff):
                    reason = (
                        f"retry budget ({self.policy.retry_budget_ms}ms) "
                        f"exhausted after {attempt} attempts"
                    )
                    break
                backoff = self.policy.backoff_ms(attempt, clock.rng)
                spent_backoff += backoff
                self.network.charge(backoff, "reliable.backoff")
                self.retransmissions += 1
            else:
                sequence.ack(number)
                self.delivered += 1
                return result

        sequence.mark_dead(number)
        record = self.dead_letters.record(
            at=clock.now,
            destination=epr.address,
            action=action,
            sequence=sequence.identifier,
            message_number=number,
            attempts=attempts,
            reason=reason,
        )
        raise RetryExhausted(
            f"{action} to {epr.address} dead-lettered: {reason}", record
        ) from last
