"""WS-ReliableMessaging-style reliability layer (DESIGN.md §reliable).

The paper's stacks assume a friendly LAN; this package supplies the
piece both stacks would need on a real grid: sequences with message
numbers, retransmission with exponential backoff and a retry budget,
receiver-side duplicate suppression, optional in-order delivery, and a
dead-letter record for messages that exhaust their retries.  Modelled
on the 2005-02 WS-ReliableMessaging submission — contemporary with the
paper's WS-Transfer/WS-Eventing stack — and usable by both the WSRF and
WS-Transfer paths:

* :class:`ReliableChannel` wraps any SOAP client proxy (request path);
* :class:`ReliableNotifier` wraps notification delivery (event path).

All retransmission time is *virtual* (charged to ``reliable.backoff``),
and all randomness (jitter, injected faults) comes from the sim clock's
seeded RNG, so lossy-network runs are deterministic and replayable.
"""

from repro.reliable.channel import ReliableChannel, RetryExhausted
from repro.reliable.deadletter import DeadLetterLog, DeadLetterRecord
from repro.reliable.notify import ReliableNotifier
from repro.reliable.policy import NO_RETRY, RetryPolicy
from repro.reliable.sequence import (
    MESSAGE_NUMBER_HEADER,
    SEQUENCE_ID_HEADER,
    InboundDeduper,
    InboundRequestLog,
    InboundSequence,
    OutboundSequence,
    read_sequence_header,
    sequence_header,
)

__all__ = [
    "ReliableChannel",
    "RetryExhausted",
    "ReliableNotifier",
    "RetryPolicy",
    "NO_RETRY",
    "DeadLetterLog",
    "DeadLetterRecord",
    "OutboundSequence",
    "InboundSequence",
    "InboundDeduper",
    "InboundRequestLog",
    "SEQUENCE_ID_HEADER",
    "MESSAGE_NUMBER_HEADER",
    "sequence_header",
    "read_sequence_header",
]
