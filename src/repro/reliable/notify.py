"""ReliableNotifier: at-least-once notification delivery with dead-lettering.

One-way notification pushes have no reply to double as an
acknowledgement, so the notifier treats a delivery that raises no
:class:`~repro.sim.faults.DeliveryFault` as acknowledged (the simulated
sink handler runs synchronously inside ``deliver_notification``).  Each
payload is stamped with a composite ``wsrm:Sequence`` header so the
consumer's :class:`~repro.reliable.sequence.InboundDeduper` can collapse
retransmissions and fault-injected duplicates back to exactly-once.

A fresh envelope is built per attempt — ``deliver_notification`` signs
in place, so reusing one would stack security headers on retry.
"""

from __future__ import annotations

from repro.reliable.deadletter import DeadLetterLog
from repro.reliable.policy import RetryPolicy
from repro.reliable.sequence import OutboundSequence, sequence_header
from repro.sim.faults import DeliveryFault
from repro.soap.envelope import build_envelope
from repro.xmllib.element import XmlElement


class ReliableNotifier:
    """Retransmitting front end for ``Deployment.deliver_notification``."""

    def __init__(
        self,
        deployment,
        policy: RetryPolicy | None = None,
        dead_letters: DeadLetterLog | None = None,
    ) -> None:
        self.deployment = deployment
        if policy is None:
            policy = deployment.reliability or RetryPolicy()
        self.policy = policy
        self.dead_letters = (
            dead_letters if dead_letters is not None else deployment.dead_letters
        )
        self._sequences: dict[str, OutboundSequence] = {}
        #: Notifications that reached the sink handler.
        self.delivered = 0
        #: Extra transmission attempts beyond the first.
        self.retransmissions = 0
        #: Notifications that ended in the dead-letter log.
        self.dead_lettered = 0

    def sequence_for(self, destination: str) -> OutboundSequence:
        seq = self._sequences.get(destination)
        if seq is None:
            seq = OutboundSequence(destination)
            self._sequences[destination] = seq
        return seq

    @property
    def assigned(self) -> int:
        return sum(seq.assigned for seq in self._sequences.values())

    def deliver(
        self,
        from_host,
        sink_address: str,
        payload: XmlElement,
        credentials=None,
        *,
        action: str = "Notify",
    ) -> bool:
        """Deliver ``payload`` with retransmission.

        Returns True once a copy reaches the sink handler; returns False
        after dead-lettering (sink gone, or retries exhausted) — the
        caller decides whether that ends the subscription.
        """
        network = self.deployment.network
        sequence = self.sequence_for(sink_address)
        number = sequence.next_number()
        spent_backoff = 0.0
        attempts = 0
        for attempt in range(1, self.policy.max_attempts + 1):
            attempts = attempt
            envelope = build_envelope(
                [sequence_header(sequence.identifier, number)], [payload.copy()]
            )
            try:
                accepted = self.deployment.deliver_notification(
                    from_host, sink_address, envelope, credentials
                )
            except DeliveryFault as exc:
                if attempt >= self.policy.max_attempts:
                    reason = f"retries exhausted after {attempt} attempts: {exc}"
                    break
                if not self.policy.within_budget(spent_backoff):
                    reason = (
                        f"retry budget ({self.policy.retry_budget_ms}ms) "
                        f"exhausted after {attempt} attempts"
                    )
                    break
                backoff = self.policy.backoff_ms(attempt, network.clock.rng)
                spent_backoff += backoff
                network.charge(backoff, "reliable.backoff")
                self.retransmissions += 1
            else:
                if not accepted:
                    reason = "consumer endpoint gone"
                    break
                sequence.ack(number)
                self.delivered += 1
                return True

        sequence.mark_dead(number)
        self.dead_lettered += 1
        self.dead_letters.record(
            at=network.clock.now,
            destination=sink_address,
            action=action,
            sequence=sequence.identifier,
            message_number=number,
            attempts=attempts,
            reason=reason,
        )
        return False
