"""Retransmission policy: attempts, exponential backoff, jitter, budget.

All backoff time is *virtual* — charged through ``Network.charge`` under
the ``reliable.backoff`` category, never slept (repro-lint rule RPO07).
Jitter draws come from the caller-supplied RNG (the sim clock's seeded
stream), keeping retransmission schedules reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """How hard a reliable sender tries before dead-lettering."""

    #: Total tries including the first transmission.
    max_attempts: int = 4
    #: Backoff before the first retransmission.
    base_backoff_ms: float = 40.0
    #: Exponential growth factor per further retransmission.
    multiplier: float = 2.0
    #: Ceiling on any single backoff interval.
    max_backoff_ms: float = 4000.0
    #: Uniform random addition in ``[0, jitter_ms]`` per backoff.
    jitter_ms: float = 8.0
    #: Optional cap on *total* backoff spent per message (the retry
    #: budget); once exceeded, remaining attempts are forfeited.
    retry_budget_ms: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_backoff_ms < 0 or self.max_backoff_ms < 0 or self.jitter_ms < 0:
            raise ValueError("backoff parameters must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1.0")
        if self.retry_budget_ms is not None and self.retry_budget_ms < 0:
            raise ValueError("retry_budget_ms must be non-negative")

    def backoff_ms(self, attempt: int, rng: random.Random | None = None) -> float:
        """Backoff after the ``attempt``-th failed try (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        delay = min(
            self.base_backoff_ms * self.multiplier ** (attempt - 1),
            self.max_backoff_ms,
        )
        if self.jitter_ms and rng is not None:
            delay += rng.uniform(0.0, self.jitter_ms)
        return delay

    def within_budget(self, spent_backoff_ms: float) -> bool:
        return self.retry_budget_ms is None or spent_backoff_ms < self.retry_budget_ms


#: A policy that never retransmits (reliability bookkeeping only).
NO_RETRY = RetryPolicy(max_attempts=1)
