"""Dead-letter record: the terminal state for undeliverable messages.

The reliability accounting invariant (DESIGN.md §reliable) is that every
assigned message number ends in exactly one of three states — delivered,
suppressed as a duplicate, or dead-lettered.  This module is the third
bucket: an append-only log that benchmarks and tests can audit to prove
nothing was silently dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class DeadLetterRecord:
    """One message the reliability layer gave up on."""

    #: Virtual time (ms) at which the message was dead-lettered.
    at: float
    #: Destination — a service address or notification sink address.
    destination: str
    #: WS-Addressing action (or ``"Notify"`` for notification payloads).
    action: str
    #: WS-RM sequence identifier the message belonged to.
    sequence: str
    #: Message number within the sequence (1-based).
    message_number: int
    #: Transmission attempts made before giving up.
    attempts: int
    #: Human-readable reason ("retry budget exhausted", "endpoint gone"...).
    reason: str


class DeadLetterLog:
    """Append-only store of :class:`DeadLetterRecord` entries."""

    def __init__(self) -> None:
        self._records: list[DeadLetterRecord] = []

    def record(
        self,
        at: float,
        destination: str,
        action: str,
        sequence: str,
        message_number: int,
        attempts: int,
        reason: str,
    ) -> DeadLetterRecord:
        entry = DeadLetterRecord(
            at=at,
            destination=destination,
            action=action,
            sequence=sequence,
            message_number=message_number,
            attempts=attempts,
            reason=reason,
        )
        self._records.append(entry)
        return entry

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[DeadLetterRecord]:
        return iter(self._records)

    def __bool__(self) -> bool:
        return bool(self._records)

    def for_destination(self, destination: str) -> list[DeadLetterRecord]:
        return [r for r in self._records if r.destination == destination]
