"""Simulated hosts, transports and connection caches.

Models the part of the paper's testbed that the container does not: moving
bytes between machines.  Three transports are provided:

* ``HTTP`` — per-request connections with a keep-alive cache;
* ``HTTPS`` — TLS on top, with a session-resumption cache (the paper:
  "Due to socket caching, HTTPS performance is much faster");
* ``TCP`` — the persistent socket used by WS-Eventing's ``SoapReceiver``
  notification path (the reason WS-Eventing Notify beats WSRF.NET's
  per-delivery HTTP server).

Costs come from the shared :class:`~repro.sim.costs.CostModel`; all time is
charged to the shared :class:`~repro.sim.clock.Clock` and attributed via the
shared :class:`~repro.sim.metrics.MetricsRecorder`.

The wire can be made imperfect: :attr:`Network.faults` holds per-link
:class:`~repro.sim.faults.FaultSpec` policies (loss, delay, duplication,
connection reset), deterministic via the clock's seeded RNG.  A lost or
reset transmission still charges its wire time — the bytes left the host —
then raises :class:`~repro.sim.faults.MessageLost` /
:class:`~repro.sim.faults.ConnectionReset` for the reliability layer
(:mod:`repro.reliable`) to catch and retry.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from contextlib import nullcontext

from repro.sim.clock import Clock
from repro.sim.costs import CostModel
from repro.sim.faults import ConnectionReset, FaultInjector, MessageLost
from repro.sim.kernel import Kernel
from repro.sim.metrics import MetricsRecorder
from repro.sim.sanitizer import SimSanitizer


class TransportKind(enum.Enum):
    HTTP = "http"
    HTTPS = "https"
    TCP = "tcp"


@dataclass(frozen=True)
class Host:
    """A machine in the simulated deployment."""

    name: str

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.name


@dataclass
class _ConnectionState:
    """Cached state for one (client-host, server-host, transport) triple."""

    established: bool = False
    tls_session: bool = False


class Network:
    """The simulated wire plus the shared clock/costs/metrics trio."""

    def __init__(
        self,
        cost_model: CostModel | None = None,
        clock: Clock | None = None,
        metrics: MetricsRecorder | None = None,
    ) -> None:
        self.costs = cost_model if cost_model is not None else CostModel()
        self.clock = clock if clock is not None else Clock()
        self.metrics = metrics if metrics is not None else MetricsRecorder()
        self.faults = FaultInjector(self.clock.rng)
        #: Optional cross-host mutation detector (see repro.sim.sanitizer);
        #: None keeps every hook free.
        self.sanitizer: SimSanitizer | None = None
        self._connections: dict[tuple[str, str, TransportKind], _ConnectionState] = {}
        #: The discrete-event kernel owning this network's concurrent
        #: timeline (DESIGN.md §14).  Serial requests route through its
        #: single-request fast path; load generators spawn tasks on it.
        self.kernel = Kernel(self)

    # -- helpers ------------------------------------------------------------

    def charge(self, ms: float, category: str) -> None:
        """Advance virtual time and attribute it to ``category``."""
        self.clock.charge(ms)
        self.metrics.time_charged(ms, category)

    def sanitizer_scope(self, host_name: str, message_id: str | None = None):
        """Execution-context scope for the sanitizer; a no-op when the
        sanitizer is detached, so callers can wrap unconditionally."""
        if self.sanitizer is None:
            return nullcontext()
        return self.sanitizer.scope(host_name, message_id)

    def note_mutation(self, store: str, key: str, op: str) -> None:
        """Storage layers report each write here (no-op when detached)."""
        if self.sanitizer is not None:
            self.sanitizer.note_mutation(store, key, op)

    def _conn(self, src: Host, dst: Host, kind: TransportKind) -> _ConnectionState:
        key = (src.name, dst.name, kind)
        state = self._connections.get(key)
        if state is None:
            state = _ConnectionState()
            self._connections[key] = state
        return state

    def drop_connections(self) -> None:
        """Forget all cached connections and TLS sessions (cold start)."""
        self._connections.clear()

    def _reset_connection(self, src: Host, dst: Host, kind: TransportKind) -> None:
        """A connection died: forget its state in both orientations."""
        self._connections.pop((src.name, dst.name, kind), None)
        self._connections.pop((dst.name, src.name, kind), None)

    # -- the wire ---------------------------------------------------------

    def transmit(
        self,
        src: Host,
        dst: Host,
        n_bytes: int,
        kind: TransportKind,
        *,
        service: str | None = None,
    ) -> int:
        """Charge the cost of moving ``n_bytes`` from ``src`` to ``dst``.

        Connection setup costs depend on the cache state; data costs depend
        on placement (loopback vs LAN) and transport (TLS adds per-KB
        symmetric crypto).

        Returns the number of copies delivered (1, or 2 when the fault
        injector duplicates the message).  On injected loss or reset the
        wire time is still charged — the bytes left the host — and
        :class:`MessageLost` / :class:`ConnectionReset` is raised.
        """
        if n_bytes < 0:
            raise ValueError("n_bytes must be non-negative")
        costs = self.costs
        kb = n_bytes / 1024.0
        state = self._conn(src, dst, kind)
        outcome = self.faults.draw(src.name, dst.name) if self.faults.active else None

        setup = 0.0
        if kind is TransportKind.HTTP:
            setup += costs.http_connect_cached if state.established else costs.http_connect
        elif kind is TransportKind.HTTPS:
            setup += costs.http_connect_cached if state.established else costs.http_connect
            setup += costs.tls_resume if state.tls_session else costs.tls_handshake
            state.tls_session = True
        elif kind is TransportKind.TCP:
            if not state.established:
                setup += costs.tcp_connect
        state.established = True
        if setup:
            self.charge(setup, "transport.setup")

        wire = 0.0
        if src != dst:
            wire += costs.lan_latency + kb * costs.lan_per_kb
        else:
            wire += kb * costs.loopback_per_kb
        if kind is TransportKind.HTTPS:
            wire += kb * costs.tls_per_kb

        return self._apply_outcome(
            outcome, src, dst, kind, n_bytes, wire, service=service
        )

    def transmit_response(
        self,
        src: Host,
        dst: Host,
        n_bytes: int,
        kind: TransportKind,
        *,
        service: str | None = None,
    ) -> int:
        """The reply leg: bytes flow back on the already-open connection.

        No connection setup is charged (the request leg paid it); only wire
        time, plus TLS symmetric crypto on HTTPS.  Fault-injected exactly
        like :meth:`transmit`, so a lossy link can eat responses too.
        """
        if n_bytes < 0:
            raise ValueError("n_bytes must be non-negative")
        costs = self.costs
        kb = n_bytes / 1024.0
        outcome = self.faults.draw(src.name, dst.name) if self.faults.active else None

        wire = 0.0
        if src != dst:
            wire += costs.lan_latency + kb * costs.lan_per_kb
        else:
            wire += kb * costs.loopback_per_kb
        if kind is TransportKind.HTTPS:
            wire += kb * costs.tls_per_kb

        return self._apply_outcome(
            outcome, src, dst, kind, n_bytes, wire, service=service
        )

    def _apply_outcome(
        self,
        outcome,
        src: Host,
        dst: Host,
        kind: TransportKind,
        n_bytes: int,
        wire: float,
        *,
        service: str | None,
    ) -> int:
        """Charge wire time and settle the message's fate (see faults.py)."""
        if outcome is not None and outcome.extra_delay_ms > 0:
            self.charge(outcome.extra_delay_ms, "transport.delay")
        if wire:
            self.charge(wire, "transport.wire")
        self.metrics.message_sent(n_bytes, service)
        if outcome is None or outcome.clean:
            # Only a *delivered* message legitimizes a cross-host state
            # handoff; lost/reset transmissions never reached the peer.
            if self.sanitizer is not None:
                self.sanitizer.transmission()
            return 1
        if outcome.reset:
            self._reset_connection(src, dst, kind)
            raise ConnectionReset(
                f"connection {src.name}->{dst.name} ({kind.value}) reset mid-transfer"
            )
        if outcome.lost:
            raise MessageLost(f"message {src.name}->{dst.name} lost on the wire")
        if outcome.duplicated:
            # The second copy consumes wire time again and counts as a
            # message of its own.
            if wire:
                self.charge(wire, "transport.wire")
            self.metrics.message_sent(n_bytes, service)
            if self.sanitizer is not None:
                self.sanitizer.transmission()
            return 2
        if self.sanitizer is not None:
            self.sanitizer.transmission()
        return 1
