"""Simulated hosts, transports and connection caches.

Models the part of the paper's testbed that the container does not: moving
bytes between machines.  Three transports are provided:

* ``HTTP`` — per-request connections with a keep-alive cache;
* ``HTTPS`` — TLS on top, with a session-resumption cache (the paper:
  "Due to socket caching, HTTPS performance is much faster");
* ``TCP`` — the persistent socket used by WS-Eventing's ``SoapReceiver``
  notification path (the reason WS-Eventing Notify beats WSRF.NET's
  per-delivery HTTP server).

Costs come from the shared :class:`~repro.sim.costs.CostModel`; all time is
charged to the shared :class:`~repro.sim.clock.Clock` and attributed via the
shared :class:`~repro.sim.metrics.MetricsRecorder`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.sim.clock import Clock
from repro.sim.costs import CostModel
from repro.sim.metrics import MetricsRecorder


class TransportKind(enum.Enum):
    HTTP = "http"
    HTTPS = "https"
    TCP = "tcp"


@dataclass(frozen=True)
class Host:
    """A machine in the simulated deployment."""

    name: str

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.name


@dataclass
class _ConnectionState:
    """Cached state for one (client-host, server-host, transport) triple."""

    established: bool = False
    tls_session: bool = False


class Network:
    """The simulated wire plus the shared clock/costs/metrics trio."""

    def __init__(
        self,
        cost_model: CostModel | None = None,
        clock: Clock | None = None,
        metrics: MetricsRecorder | None = None,
    ) -> None:
        self.costs = cost_model if cost_model is not None else CostModel()
        self.clock = clock if clock is not None else Clock()
        self.metrics = metrics if metrics is not None else MetricsRecorder()
        self._connections: dict[tuple[str, str, TransportKind], _ConnectionState] = {}

    # -- helpers ------------------------------------------------------------

    def charge(self, ms: float, category: str) -> None:
        """Advance virtual time and attribute it to ``category``."""
        self.clock.charge(ms)
        self.metrics.time_charged(ms, category)

    def _conn(self, src: Host, dst: Host, kind: TransportKind) -> _ConnectionState:
        key = (src.name, dst.name, kind)
        state = self._connections.get(key)
        if state is None:
            state = _ConnectionState()
            self._connections[key] = state
        return state

    def drop_connections(self) -> None:
        """Forget all cached connections and TLS sessions (cold start)."""
        self._connections.clear()

    # -- the wire ---------------------------------------------------------

    def transmit(
        self,
        src: Host,
        dst: Host,
        n_bytes: int,
        kind: TransportKind,
        *,
        service: str | None = None,
    ) -> None:
        """Charge the cost of moving ``n_bytes`` from ``src`` to ``dst``.

        Connection setup costs depend on the cache state; data costs depend
        on placement (loopback vs LAN) and transport (TLS adds per-KB
        symmetric crypto).
        """
        if n_bytes < 0:
            raise ValueError("n_bytes must be non-negative")
        costs = self.costs
        kb = n_bytes / 1024.0
        state = self._conn(src, dst, kind)

        setup = 0.0
        if kind is TransportKind.HTTP:
            setup += costs.http_connect_cached if state.established else costs.http_connect
        elif kind is TransportKind.HTTPS:
            setup += costs.http_connect_cached if state.established else costs.http_connect
            setup += costs.tls_resume if state.tls_session else costs.tls_handshake
            state.tls_session = True
        elif kind is TransportKind.TCP:
            if not state.established:
                setup += costs.tcp_connect
        state.established = True
        if setup:
            self.charge(setup, "transport.setup")

        wire = 0.0
        if src != dst:
            wire += costs.lan_latency + kb * costs.lan_per_kb
        else:
            wire += kb * costs.loopback_per_kb
        if kind is TransportKind.HTTPS:
            wire += kb * costs.tls_per_kb
        if wire:
            self.charge(wire, "transport.wire")

        self.metrics.message_sent(n_bytes, service)
