"""Simulation-discipline errors.

:class:`SimError` subclasses :class:`ValueError` so call sites (and
tests) that predate it — the clock used to raise bare ``ValueError`` for
backwards time — keep working, while new code can catch the precise
class.
"""

from __future__ import annotations


class SimError(ValueError):
    """A violation of the simulation's time/concurrency discipline.

    Raised for backwards clock movement, kernel misuse (nested charge
    deferral, synchronous requests while tasks are in flight), and
    worker-pool overflow (:class:`~repro.sim.kernel.QueueFull`).
    """


class QueueFull(SimError):
    """A per-host worker pool's bounded FIFO queue rejected an arrival.

    Thrown *into* the task that yielded the
    :class:`~repro.sim.kernel.Acquire` effect, so open-loop load
    generators observe rejection exactly where the request would have
    queued.
    """

    def __init__(self, host: str, limit: int) -> None:
        super().__init__(
            f"worker pool on {host!r} is saturated: queue limit {limit} reached"
        )
        self.host = host
        self.limit = limit
