"""The calibrated cost model.

Every figure in the paper is a sum of these primitives.  The defaults were
back-fitted from the paper's bar charts (Figures 2-4 and 6, single request,
dual-Opteron-240 / Windows Server 2003 era) — see DESIGN.md §5.  All values
are virtual milliseconds.  Benchmarks that explore sensitivity (ablations)
construct modified copies via :meth:`CostModel.replace`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as _dc_replace


@dataclass(frozen=True)
class CostModel:
    """Virtual-millisecond costs of the simulation's primitive operations."""

    # --- SOAP / container processing -----------------------------------
    #: Fixed cost of accepting a request: dispatch + ASP.NET-style plumbing.
    soap_dispatch: float = 0.6
    #: Parsing one KB of XML (charged on every receive).
    xml_parse_per_kb: float = 0.45
    #: Serializing one KB of XML (charged on every send).
    xml_serialize_per_kb: float = 0.35
    #: Fixed envelope handling overhead per message in either direction.
    soap_per_message: float = 0.6

    # --- transport -------------------------------------------------------
    #: One-way LAN latency between distinct hosts (zero when co-located).
    lan_latency: float = 0.35
    #: Wire time per KB between distinct hosts.
    lan_per_kb: float = 0.09
    #: Loopback per-KB cost when client and service share a machine.
    loopback_per_kb: float = 0.012
    #: Establishing a fresh HTTP connection (TCP handshake + HTTP overhead).
    http_connect: float = 0.8
    #: Reusing a kept-alive HTTP connection.
    http_connect_cached: float = 0.1
    #: Full TLS handshake (RSA key exchange, 2005-era).
    tls_handshake: float = 28.0
    #: Resumed TLS session ("socket caching" in the paper's words).
    tls_resume: float = 1.8
    #: Per-KB symmetric crypto cost on an HTTPS connection.
    tls_per_kb: float = 0.22
    #: Opening the persistent TCP socket WS-Eventing's SoapReceiver uses.
    tcp_connect: float = 0.5
    #: Per-delivery overhead of the WSRF.NET consumer's embedded HTTP server.
    notify_http_overhead: float = 16.0
    #: Per-delivery overhead of Plumbwork Orange's persistent-TCP receiver.
    notify_tcp_overhead: float = 1.1

    # --- WS-Security (X.509 / XML-DSig) ---------------------------------
    #: RSA-1024 private-key signature (dominates Figure 4).
    rsa_sign: float = 45.0
    #: RSA-1024 public-key verification.
    rsa_verify: float = 3.5
    #: Canonicalization + digest per KB of signed content.
    c14n_digest_per_kb: float = 0.5
    #: WSE policy evaluation per secured message.
    security_policy_check: float = 1.2

    # --- Xindice XML database -------------------------------------------
    #: Fetch a document by id.
    db_read: float = 5.5
    #: Update an existing document in place.
    db_update: float = 7.0
    #: Insert a new document ("creating resources ... is always slower").
    db_insert: float = 24.0
    #: Remove a document.
    db_delete: float = 5.0
    #: XPath query across a collection (per document scanned).
    db_query_per_doc: float = 0.25
    #: Fixed XPath query setup cost.
    db_query_base: float = 2.0
    #: Fixed cost of answering a query from a secondary index's posting
    #: list (B-tree bucket lookup); the per-document cost then applies to
    #: the hits only, so an indexed query is O(hits) not O(N).
    db_query_indexed: float = 0.9
    #: Incremental index maintenance per declared index on every document
    #: write — the price Xindice-style value indexes add to inserts.
    db_index_maintain: float = 0.35
    #: Write-through resource-cache hit (WSRF.NET's optimization).
    cache_hit: float = 0.4

    # --- application-level -----------------------------------------------
    #: Spawning the Windows service process wrapper for a job.
    process_spawn: float = 55.0
    #: Filesystem write per KB (DataService stores files on disk).
    fs_write_per_kb: float = 0.8
    #: Filesystem read per KB.
    fs_read_per_kb: float = 0.5
    #: Creating a directory.
    fs_mkdir: float = 2.5
    #: Deleting a file.
    fs_delete: float = 1.5
    #: Listing a directory (per entry).
    fs_list_per_entry: float = 0.12

    def replace(self, **overrides: float) -> "CostModel":
        """Return a copy with some entries overridden (for ablations)."""
        return _dc_replace(self, **overrides)

    @classmethod
    def free(cls) -> "CostModel":
        """An all-zero model — lets unit tests assert pure functionality."""
        zeros = {name: 0.0 for name in cls.__dataclass_fields__}
        return cls(**zeros)
