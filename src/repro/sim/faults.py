"""Lossy-network fault injection for the simulated wire.

The paper measured both stacks on a perfect LAN; this module models the
WAN conditions real Grid deployments ran under: per-link message loss,
added delay, duplication and connection resets.  The reliability layer
(:mod:`repro.reliable`) is the counterpart that makes traffic survive it.

Determinism contract
--------------------
All randomness is drawn from the shared :class:`~repro.sim.clock.Clock`'s
seeded RNG, and :meth:`FaultInjector.draw` always consumes the *same
number of draws* per message regardless of which faults are enabled.  Two
runs with the same seed and the same operation order therefore produce
byte-identical fault schedules — a failing benchmark replays exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


class DeliveryFault(Exception):
    """A transmission did not reach the far side (base of the family)."""


class MessageLost(DeliveryFault):
    """The message was dropped on the wire."""


class ConnectionReset(DeliveryFault):
    """The connection died mid-transfer; cached connection state is gone."""


@dataclass(frozen=True)
class FaultSpec:
    """Failure characteristics of one link (or the whole network).

    Rates are probabilities in ``[0, 1]`` applied per message.  Extra delay
    is ``delay_mean_ms ± delay_jitter_ms`` (uniform), charged to the
    ``transport.delay`` category.
    """

    loss_rate: float = 0.0
    duplicate_rate: float = 0.0
    reset_rate: float = 0.0
    delay_mean_ms: float = 0.0
    delay_jitter_ms: float = 0.0

    def __post_init__(self) -> None:
        for name in ("loss_rate", "duplicate_rate", "reset_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.delay_mean_ms < 0 or self.delay_jitter_ms < 0:
            raise ValueError("delay parameters must be non-negative")
        if self.delay_jitter_ms > self.delay_mean_ms and self.delay_mean_ms > 0:
            raise ValueError("delay_jitter_ms must not exceed delay_mean_ms")

    @property
    def is_clean(self) -> bool:
        return (
            self.loss_rate == 0.0
            and self.duplicate_rate == 0.0
            and self.reset_rate == 0.0
            and self.delay_mean_ms == 0.0
        )

    @classmethod
    def lossy(cls, rate: float) -> "FaultSpec":
        """The benchmark shape: loss plus milder duplication and resets."""
        return cls(
            loss_rate=rate,
            duplicate_rate=rate / 2.0,
            reset_rate=rate / 4.0,
            delay_mean_ms=2.0 if rate else 0.0,
            delay_jitter_ms=1.0 if rate else 0.0,
        )


#: The default, perfect-LAN spec.
NO_FAULTS = FaultSpec()


@dataclass(frozen=True)
class FaultOutcome:
    """The injector's verdict for one message."""

    lost: bool = False
    duplicated: bool = False
    reset: bool = False
    extra_delay_ms: float = 0.0

    @property
    def clean(self) -> bool:
        return not (self.lost or self.duplicated or self.reset) and self.extra_delay_ms == 0.0


_CLEAN = FaultOutcome()


class FaultInjector:
    """Per-link fault policies plus the counters that make them observable.

    Link specs are looked up by ``(src, dst)`` host-name pair, falling back
    to the reversed pair (links fail symmetrically unless told otherwise),
    then to the default spec.
    """

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self._default: FaultSpec = NO_FAULTS
        self._links: dict[tuple[str, str], FaultSpec] = {}
        # Observability counters.
        self.messages_lost = 0
        self.messages_duplicated = 0
        self.connections_reset = 0
        self.messages_delayed = 0

    # -- configuration ------------------------------------------------------

    def set_default(self, spec: FaultSpec) -> None:
        """Apply ``spec`` to every link without an explicit override."""
        self._default = spec

    def set_link(self, src: str, dst: str, spec: FaultSpec) -> None:
        """Override the spec for one (symmetric) host pair."""
        self._links[(src, dst)] = spec

    def clear(self) -> None:
        """Back to a perfect network (counters are kept)."""
        self._default = NO_FAULTS
        self._links.clear()

    @property
    def active(self) -> bool:
        return not self._default.is_clean or any(
            not spec.is_clean for spec in self._links.values()
        )

    def spec_for(self, src: str, dst: str) -> FaultSpec:
        spec = self._links.get((src, dst))
        if spec is None:
            spec = self._links.get((dst, src))
        return spec if spec is not None else self._default

    # -- the dice -----------------------------------------------------------

    def draw(self, src: str, dst: str) -> FaultOutcome:
        """Roll one message's fate.  Always four RNG draws (see module doc)."""
        spec = self.spec_for(src, dst)
        rng = self.rng
        reset_roll = rng.random()
        loss_roll = rng.random()
        duplicate_roll = rng.random()
        delay_roll = rng.random()
        if spec.is_clean:
            return _CLEAN
        extra_delay = 0.0
        if spec.delay_mean_ms > 0:
            extra_delay = spec.delay_mean_ms + (2.0 * delay_roll - 1.0) * spec.delay_jitter_ms
            self.messages_delayed += 1
        if reset_roll < spec.reset_rate:
            self.connections_reset += 1
            return FaultOutcome(reset=True, extra_delay_ms=extra_delay)
        if loss_roll < spec.loss_rate:
            self.messages_lost += 1
            return FaultOutcome(lost=True, extra_delay_ms=extra_delay)
        if duplicate_roll < spec.duplicate_rate:
            self.messages_duplicated += 1
            return FaultOutcome(duplicated=True, extra_delay_ms=extra_delay)
        return FaultOutcome(extra_delay_ms=extra_delay)
