"""Open-loop load generation over the discrete-event kernel.

The paper reports single-request latency; the question it leaves open —
can a lightweight OGSA stack serve a grid's job volume? — needs *load*.
This module provides the generic half of the answer: seeded arrival
processes and an open-loop driver that spawns one kernel task per
arrival at its pre-scheduled virtual instant, regardless of whether
earlier requests have completed (the defining property of an open-loop
generator: offered load does not throttle when the server saturates, so
queueing delay becomes visible instead of being absorbed into the
arrival process).

The counter-rig adapter and CLI live in :mod:`repro.bench.loadgen`; this
module knows nothing about SOAP stacks — only arrivals, tasks and the
statistics of their completions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Generator

from repro.sim.errors import QueueFull, SimError
from repro.sim.kernel import Kernel, Task
from repro.sim.metrics import SampleSet

__all__ = ["ARRIVAL_PROCESSES", "LoadResult", "arrival_times", "run_open_loop"]

ARRIVAL_PROCESSES = ("poisson", "uniform")


def arrival_times(
    n: int,
    rate_per_sec: float,
    process: str = "poisson",
    seed: int = 0,
    start: float = 0.0,
) -> list[float]:
    """``n`` absolute arrival instants (virtual ms) from a seeded process.

    ``poisson`` draws exponential inter-arrival gaps (a memoryless stream,
    the standard open-system model); ``uniform`` draws gaps uniformly from
    ``[0.5, 1.5] × mean`` (the same offered load with bounded burstiness,
    useful for separating queueing effects from arrival variance).  The
    process has its own :class:`random.Random` stream, so the same seed
    yields the same schedule no matter what else the simulation draws.
    """
    if n < 0:
        raise SimError(f"cannot schedule a negative number of arrivals: {n}")
    if rate_per_sec <= 0:
        raise SimError(f"offered load must be positive: {rate_per_sec}/s")
    if process not in ARRIVAL_PROCESSES:
        raise SimError(
            f"unknown arrival process {process!r}; expected one of {ARRIVAL_PROCESSES}"
        )
    rng = random.Random(seed)
    mean_gap_ms = 1000.0 / rate_per_sec
    times: list[float] = []
    at = start
    for _ in range(n):
        if process == "poisson":
            at += rng.expovariate(1.0) * mean_gap_ms
        else:
            at += rng.uniform(0.5, 1.5) * mean_gap_ms
        times.append(at)
    return times


@dataclass
class LoadResult:
    """What one open-loop run observed, in virtual time.

    Latency is arrival-to-completion (queueing *included* — the client
    cares when its response arrived, not when the server deigned to
    start).  Throughput is completions over the span from first arrival
    to last completion.
    """

    offered_per_sec: float
    completed: int = 0
    rejected: int = 0
    failed: int = 0
    #: Arrival-to-completion latency of successful requests.
    latencies: SampleSet = field(default_factory=SampleSet)
    #: Worker-pool queueing delay of successful requests.
    queueing: SampleSet = field(default_factory=SampleSet)
    first_arrival: float = 0.0
    last_completion: float = 0.0
    #: Per-host high-water queue depth, from the kernel's pools.
    max_queue_depth: dict[str, int] = field(default_factory=dict)
    #: Exception type names of non-rejection failures, in task order.
    errors: list[str] = field(default_factory=list)
    #: Messages put on the wire during the run (for messages/sec).
    messages: int = 0

    @property
    def span_ms(self) -> float:
        return self.last_completion - self.first_arrival

    @property
    def throughput_per_sec(self) -> float:
        """Completed requests per virtual second."""
        if self.span_ms <= 0:
            return 0.0
        return self.completed / (self.span_ms / 1000.0)

    @property
    def messages_per_sec(self) -> float:
        if self.span_ms <= 0:
            return 0.0
        return self.messages / (self.span_ms / 1000.0)

    def summary(self) -> dict:
        """The deterministic report block (everything in virtual time)."""
        return {
            "offered_per_sec": self.offered_per_sec,
            "completed": self.completed,
            "rejected": self.rejected,
            "failed": self.failed,
            "throughput_per_sec": round(self.throughput_per_sec, 6),
            "messages_per_sec": round(self.messages_per_sec, 6),
            "latency": _rounded(self.latencies.summary()),
            "queueing": _rounded(self.queueing.summary()),
            "max_queue_depth": dict(sorted(self.max_queue_depth.items())),
        }


def _rounded(block: dict) -> dict:
    return {
        key: round(value, 6) if isinstance(value, float) else value
        for key, value in block.items()
    }


def run_open_loop(
    kernel: Kernel,
    arrivals: list[float],
    make_task: Callable[[int], Generator],
    *,
    offered_per_sec: float = 0.0,
    name: str = "req",
) -> LoadResult:
    """Spawn ``make_task(i)`` at each arrival instant and drain the kernel.

    Every arrival is pre-scheduled before the event loop starts — a
    saturated server cannot push back on the arrival stream.  Requests
    whose worker-pool queue overflows count as ``rejected``
    (:class:`~repro.sim.errors.QueueFull`); any other task exception
    counts as ``failed`` with its type name recorded.
    """
    metrics = kernel.network.metrics if kernel.network is not None else None
    messages_before = metrics.total_messages if metrics is not None else 0
    tasks: list[Task] = [
        kernel.spawn(make_task(i), f"{name}-{i}", at=at)
        for i, at in enumerate(arrivals)
    ]
    kernel.run()

    result = LoadResult(offered_per_sec=offered_per_sec)
    if arrivals:
        result.first_arrival = min(arrivals)
    for task in tasks:
        if not task.done:
            raise SimError(f"open-loop task {task.name!r} never completed")
        if task.error is not None:
            if isinstance(task.error, QueueFull):
                result.rejected += 1
            else:
                result.failed += 1
                result.errors.append(type(task.error).__name__)
            continue
        result.completed += 1
        result.latencies.add(task.latency_ms)
        result.queueing.add(task.queueing_delay_ms)
        result.last_completion = max(result.last_completion, task.finished_at)
    result.max_queue_depth = kernel.max_queue_depths()
    if metrics is not None:
        result.messages = metrics.total_messages - messages_before
    return result
