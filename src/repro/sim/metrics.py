"""Instrumentation: message counts, byte counts and virtual-time breakdowns.

The paper attributes its Grid-in-a-Box results to "the number of web service
outcalls (and message signings) triggered on the server"; the recorder makes
exactly those quantities observable so benchmarks (and tests) can assert
them directly.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class Span:
    """One node of a per-message trace tree, timed on the virtual clock.

    Spans reproduce the paper's Figure-1 processing order as data: the
    pipeline's :class:`~repro.pipeline.filters.TracingFilter` opens one
    span per processing stage (``client.send``, ``server.receive``, ...),
    and nested stages — the server's whole handling runs inside the
    client's invoke — become child spans.
    """

    name: str
    started_at: float
    ended_at: float = 0.0
    detail: str = ""
    children: list["Span"] = field(default_factory=list)

    @property
    def elapsed_ms(self) -> float:
        return self.ended_at - self.started_at

    def walk(self, depth: int = 0):
        """Yield ``(depth, span)`` pairs in document order (iterative, so
        pathologically deep span trees cannot exhaust the recursion limit)."""
        stack = [(depth, self)]
        while stack:
            level, span = stack.pop()
            yield level, span
            for child in reversed(span.children):
                stack.append((level + 1, child))

    def tree(self) -> list[str]:
        """The span names as an indented text outline (for tests/reports)."""
        return [f"{'  ' * depth}{span.name}" for depth, span in self.walk()]

    def shape(self) -> tuple:
        """The structural fingerprint: ``(name, (child shapes...))``."""
        return (self.name, tuple(child.shape() for child in self.children))

    def find(self, name: str) -> "Span | None":
        for _, span in self.walk():
            if span.name == name:
                return span
        return None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "started_at": self.started_at,
            "ended_at": self.ended_at,
            "elapsed_ms": self.elapsed_ms,
            **({"detail": self.detail} if self.detail else {}),
            "children": [child.to_dict() for child in self.children],
        }


class SpanRecorder:
    """Builds nested :class:`Span` trees from push/pop bracketing.

    One recorder is shared per :class:`MetricsRecorder`; because the
    simulation is synchronous, a single open-span stack suffices — a
    span opened while another is open is its child (the server's
    processing nests inside the client's invoke).
    """

    def __init__(self) -> None:
        #: Completed top-level spans, in completion order.
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    def push(self, name: str, now: float, detail: str = "") -> Span:
        span = Span(name=name, started_at=now, detail=detail)
        if self._stack:
            self._stack[-1].children.append(span)
        self._stack.append(span)
        return span

    def pop(self, now: float) -> Span:
        if not self._stack:
            raise RuntimeError("no open span to close")
        span = self._stack.pop()
        span.ended_at = now
        if not self._stack:
            self.roots.append(span)
        return span

    def close(self, span: Span, now: float) -> None:
        """Close ``span``, first closing anything still open beneath it.

        Used by the pipeline's deferred span closure: filters between the
        push and the close open balanced child spans, but an exception may
        abandon one — closing by identity keeps the tree well-formed.
        """
        if span not in self._stack:
            return
        while self._stack:
            if self.pop(now) is span:
                return

    @contextmanager
    def span(self, name: str, clock, detail: str = ""):
        """Context manager bracketing one span on the virtual clock."""
        opened = self.push(name, clock.now, detail)
        try:
            yield opened
        finally:
            # Close this span and anything left open beneath it (an
            # exception mid-pipeline abandons inner spans).
            while self._stack and self._stack[-1] is not opened:
                self.pop(clock.now)
            if self._stack and self._stack[-1] is opened:
                self.pop(clock.now)

    @property
    def open_depth(self) -> int:
        return len(self._stack)

    def last_root(self) -> Span:
        if not self.roots:
            raise RuntimeError("no completed span trees")
        return self.roots[-1]

    def clear(self) -> None:
        self.roots.clear()
        self._stack.clear()


@dataclass(frozen=True)
class WireLogEntry:
    """One logged message: who sent what to whom, when (virtual ms)."""

    at: float
    source: str
    target: str
    action: str
    n_bytes: int
    kind: str = "request"  # request | response | notify


@dataclass
class OperationTrace:
    """Everything observed between ``begin()`` and ``end()`` of one operation."""

    name: str
    started_at: float
    ended_at: float = 0.0
    messages: int = 0
    bytes_on_wire: int = 0
    signatures: int = 0
    verifications: int = 0
    db_ops: int = 0
    services_touched: set[str] = field(default_factory=set)
    time_by_category: Counter = field(default_factory=Counter)

    @property
    def elapsed_ms(self) -> float:
        return self.ended_at - self.started_at


class MetricsRecorder:
    """Accumulates simulation events, optionally attributing to an operation.

    One recorder is shared per :class:`~repro.sim.network.Network`.  The
    benchmark harness brackets each measured client operation with
    ``begin()/end()``; all events between the brackets are attributed to
    that operation's :class:`OperationTrace`.
    """

    def __init__(self) -> None:
        self.total_messages = 0
        self.total_bytes = 0
        self.time_by_category: Counter = Counter()
        self._active: OperationTrace | None = None
        self.completed: list[OperationTrace] = []
        #: Per-message log, populated only while ``wire_log_enabled``.
        self.wire_log: list[WireLogEntry] = []
        self.wire_log_enabled = False
        #: Per-message trace-span trees (see :class:`SpanRecorder`).
        self.tracer = SpanRecorder()

    # -- operation bracketing ----------------------------------------------

    def begin(self, name: str, now: float) -> OperationTrace:
        if self._active is not None:
            raise RuntimeError(
                f"operation {self._active.name!r} still active; traces cannot nest"
            )
        self._active = OperationTrace(name=name, started_at=now)
        return self._active

    def end(self, now: float) -> OperationTrace:
        if self._active is None:
            raise RuntimeError("no active operation trace")
        trace = self._active
        trace.ended_at = now
        self.completed.append(trace)
        self._active = None
        return trace

    # -- event hooks ---------------------------------------------------------

    def message_sent(self, n_bytes: int, service: str | None = None) -> None:
        self.total_messages += 1
        self.total_bytes += n_bytes
        if self._active is not None:
            self._active.messages += 1
            self._active.bytes_on_wire += n_bytes
            if service:
                self._active.services_touched.add(service)

    def signed(self) -> None:
        if self._active is not None:
            self._active.signatures += 1

    def verified(self) -> None:
        if self._active is not None:
            self._active.verifications += 1

    def db_op(self) -> None:
        if self._active is not None:
            self._active.db_ops += 1

    def log_message(
        self,
        at: float,
        source: str,
        target: str,
        action: str,
        n_bytes: int,
        kind: str = "request",
    ) -> None:
        """Record one message in the wire log (no-op unless enabled)."""
        if self.wire_log_enabled:
            self.wire_log.append(WireLogEntry(at, source, target, action, n_bytes, kind))

    def time_charged(self, ms: float, category: str) -> None:
        self.time_by_category[category] += ms
        if self._active is not None:
            self._active.time_by_category[category] += ms

    # -- reporting -------------------------------------------------------------

    def last(self) -> OperationTrace:
        if not self.completed:
            raise RuntimeError("no completed operation traces")
        return self.completed[-1]

    def reset(self) -> None:
        self.__init__()


# -- load statistics ---------------------------------------------------------


def percentile(samples: list[float], p: float) -> float:
    """The ``p``-th percentile of ``samples`` by linear interpolation.

    The rank is ``(n - 1) * p / 100`` (the "inclusive"/numpy-default
    definition): p=0 is the minimum, p=100 the maximum, a single sample is
    every percentile of itself.  Empty input is an error — an empty load
    run has no latency, and silently returning 0 would fabricate one.
    """
    if not samples:
        raise ValueError("percentile of an empty sample set")
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * p / 100.0
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] + (ordered[hi] - ordered[lo]) * frac


class SampleSet:
    """An exact sample collection with percentile/mean/merge support.

    Load runs are small enough (thousands of requests) that exact
    quantiles beat approximate histograms — no bucketing error to explain
    in a reproduction.  ``merge`` combines per-host sets into a fleet-wide
    view; it concatenates rather than summarizes, so a merged set's
    percentiles equal those of the pooled raw data.
    """

    def __init__(self, samples: list[float] | None = None) -> None:
        self._samples: list[float] = list(samples) if samples else []

    def add(self, value: float) -> None:
        self._samples.append(value)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def empty(self) -> bool:
        return not self._samples

    @property
    def mean(self) -> float:
        if not self._samples:
            raise ValueError("mean of an empty sample set")
        return sum(self._samples) / len(self._samples)

    @property
    def max(self) -> float:
        if not self._samples:
            raise ValueError("max of an empty sample set")
        return max(self._samples)

    @property
    def min(self) -> float:
        if not self._samples:
            raise ValueError("min of an empty sample set")
        return min(self._samples)

    def percentile(self, p: float) -> float:
        return percentile(self._samples, p)

    def merge(self, other: "SampleSet") -> "SampleSet":
        """A new set pooling this one's samples with ``other``'s."""
        return SampleSet(self._samples + other._samples)

    def samples(self) -> list[float]:
        return list(self._samples)

    def summary(self) -> dict:
        """The standard load-report block: count, mean, p50/p95/p99, max."""
        if self.empty:
            return {"count": 0}
        return {
            "count": self.count,
            "mean_ms": self.mean,
            "p50_ms": self.percentile(50),
            "p95_ms": self.percentile(95),
            "p99_ms": self.percentile(99),
            "max_ms": self.max,
        }


def merge_sample_sets(per_host: dict[str, SampleSet]) -> SampleSet:
    """Pool per-host sample sets into one fleet-wide set.

    Hosts are merged in sorted-name order so the pooled sample list — and
    anything derived from its insertion order — is deterministic.
    """
    merged = SampleSet()
    for _host, samples in sorted(per_host.items()):
        merged = merged.merge(samples)
    return merged


class QueueDepthMeter:
    """Tracks a queue's occupancy over virtual time.

    Records every transition, so besides the high-water mark it can report
    the time-weighted average depth — the difference between "briefly
    spiked to 10" and "sat at 10 for the whole run".
    """

    def __init__(self) -> None:
        self.depth = 0
        self.max_depth = 0
        self._transitions: list[tuple[float, int]] = []

    def record(self, now: float, depth: int) -> None:
        if depth < 0:
            raise ValueError(f"queue depth cannot be negative: {depth}")
        self.depth = depth
        self.max_depth = max(self.max_depth, depth)
        self._transitions.append((now, depth))

    def time_weighted_mean(self, until: float) -> float:
        """Average depth over [first transition, ``until``]."""
        if not self._transitions:
            return 0.0
        total = 0.0
        start = self._transitions[0][0]
        if until < start:
            raise ValueError(f"until={until} precedes first transition at {start}")
        for (at, depth), (next_at, _next_depth) in zip(
            self._transitions, self._transitions[1:]
        ):
            total += depth * (next_at - at)
        last_at, last_depth = self._transitions[-1]
        total += last_depth * (until - last_at)
        window = until - start
        return total / window if window > 0 else float(self._transitions[-1][1])
