"""Instrumentation: message counts, byte counts and virtual-time breakdowns.

The paper attributes its Grid-in-a-Box results to "the number of web service
outcalls (and message signings) triggered on the server"; the recorder makes
exactly those quantities observable so benchmarks (and tests) can assert
them directly.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass(frozen=True)
class WireLogEntry:
    """One logged message: who sent what to whom, when (virtual ms)."""

    at: float
    source: str
    target: str
    action: str
    n_bytes: int
    kind: str = "request"  # request | response | notify


@dataclass
class OperationTrace:
    """Everything observed between ``begin()`` and ``end()`` of one operation."""

    name: str
    started_at: float
    ended_at: float = 0.0
    messages: int = 0
    bytes_on_wire: int = 0
    signatures: int = 0
    verifications: int = 0
    db_ops: int = 0
    services_touched: set[str] = field(default_factory=set)
    time_by_category: Counter = field(default_factory=Counter)

    @property
    def elapsed_ms(self) -> float:
        return self.ended_at - self.started_at


class MetricsRecorder:
    """Accumulates simulation events, optionally attributing to an operation.

    One recorder is shared per :class:`~repro.sim.network.Network`.  The
    benchmark harness brackets each measured client operation with
    ``begin()/end()``; all events between the brackets are attributed to
    that operation's :class:`OperationTrace`.
    """

    def __init__(self) -> None:
        self.total_messages = 0
        self.total_bytes = 0
        self.time_by_category: Counter = Counter()
        self._active: OperationTrace | None = None
        self.completed: list[OperationTrace] = []
        #: Per-message log, populated only while ``wire_log_enabled``.
        self.wire_log: list[WireLogEntry] = []
        self.wire_log_enabled = False

    # -- operation bracketing ----------------------------------------------

    def begin(self, name: str, now: float) -> OperationTrace:
        if self._active is not None:
            raise RuntimeError(
                f"operation {self._active.name!r} still active; traces cannot nest"
            )
        self._active = OperationTrace(name=name, started_at=now)
        return self._active

    def end(self, now: float) -> OperationTrace:
        if self._active is None:
            raise RuntimeError("no active operation trace")
        trace = self._active
        trace.ended_at = now
        self.completed.append(trace)
        self._active = None
        return trace

    # -- event hooks ---------------------------------------------------------

    def message_sent(self, n_bytes: int, service: str | None = None) -> None:
        self.total_messages += 1
        self.total_bytes += n_bytes
        if self._active is not None:
            self._active.messages += 1
            self._active.bytes_on_wire += n_bytes
            if service:
                self._active.services_touched.add(service)

    def signed(self) -> None:
        if self._active is not None:
            self._active.signatures += 1

    def verified(self) -> None:
        if self._active is not None:
            self._active.verifications += 1

    def db_op(self) -> None:
        if self._active is not None:
            self._active.db_ops += 1

    def log_message(
        self,
        at: float,
        source: str,
        target: str,
        action: str,
        n_bytes: int,
        kind: str = "request",
    ) -> None:
        """Record one message in the wire log (no-op unless enabled)."""
        if self.wire_log_enabled:
            self.wire_log.append(WireLogEntry(at, source, target, action, n_bytes, kind))

    def time_charged(self, ms: float, category: str) -> None:
        self.time_by_category[category] += ms
        if self._active is not None:
            self._active.time_by_category[category] += ms

    # -- reporting -------------------------------------------------------------

    def last(self) -> OperationTrace:
        if not self.completed:
            raise RuntimeError("no completed operation traces")
        return self.completed[-1]

    def reset(self) -> None:
        self.__init__()
