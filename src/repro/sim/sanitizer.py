"""TSan-style sanitizer for simulated shared state.

The static rules (RPO09–RPO13) prove isolation *shapes*; this module
checks the actual runs.  When attached to a :class:`~repro.sim.network
.Network`, every store mutation (Collection insert/update/upsert/delete,
and everything layered on it — WriteThroughCache, ResourceHome) is tagged
with the execution context that performed it: the simulated host and a
message id, pushed by the container for each request it handles.

The invariant checked is the message-passing discipline itself: **two
different hosts may only touch the same (store, key) if a message
travelled between them in the meantime.**  Back-to-back writes by
different hosts with no intervening :meth:`transmission` mean the second
host reached the object through process memory, not through the wire —
exactly the bug the paper's per-host containers cannot have, and the
first thing a concurrent kernel would turn into a real race.

Timer callbacks (WS-ResourceLifetime terminations) run on the clock, on
behalf of no request; they execute under the pseudo-host ``<timer>``,
which conflicts with nobody — expiry is the one legitimate cross-host
mutation channel besides the wire.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

#: Pseudo-host for clock-driven callbacks (lease expiry): exempt from
#: cross-host conflicts in both directions.
TIMER_HOST = "<timer>"

#: Context recorded for mutations outside any request scope (world setup,
#: direct test manipulation).
SETUP_HOST = "<setup>"


@dataclass(frozen=True)
class MutationRecord:
    """One tagged store mutation."""

    store: str
    key: str
    op: str
    host: str
    message_id: str
    #: Network transmission count at mutation time: two records with the
    #: same count had no message between them.
    tx_count: int


@dataclass(frozen=True)
class Violation:
    """A cross-host mutation pair with no intervening transmission."""

    store: str
    key: str
    first: MutationRecord
    second: MutationRecord

    def render(self) -> str:
        return (
            f"{self.store}/{self.key}: {self.second.host} "
            f"({self.second.op} during {self.second.message_id or 'no message'}) "
            f"mutated state last written by {self.first.host} "
            f"({self.first.op} during {self.first.message_id or 'no message'}) "
            "with no message transmission in between"
        )


@dataclass
class SimSanitizer:
    """Execution-context tracker + cross-host mutation detector."""

    #: Stack of (host, message_id): nested scopes happen when a handler's
    #: outcall is delivered inline (server calling server).
    _context: list[tuple[str, str]] = field(default_factory=list)
    _tx_count: int = 0
    _message_counter: int = 0
    _last_write: dict[tuple[str, str], MutationRecord] = field(default_factory=dict)
    mutations: list[MutationRecord] = field(default_factory=list)
    violations: list[Violation] = field(default_factory=list)

    # -- execution context ---------------------------------------------------

    @contextmanager
    def scope(self, host: str, message_id: str | None = None):
        """Tag mutations inside the block with (host, message id)."""
        if message_id is None:
            self._message_counter += 1
            message_id = f"msg-{self._message_counter:05d}"
        self._context.append((host, message_id))
        try:
            yield
        finally:
            self._context.pop()

    def current_context(self) -> tuple[str, str]:
        return self._context[-1] if self._context else (SETUP_HOST, "")

    # -- event hooks ---------------------------------------------------------

    def transmission(self) -> None:
        """A message crossed the wire: state handoffs are legitimate now."""
        self._tx_count += 1

    def note_mutation(self, store: str, key: str, op: str) -> None:
        host, message_id = self.current_context()
        record = MutationRecord(
            store=store,
            key=key,
            op=op,
            host=host,
            message_id=message_id,
            tx_count=self._tx_count,
        )
        previous = self._last_write.get((store, key))
        if (
            previous is not None
            and previous.host != host
            and TIMER_HOST not in (previous.host, host)
            and SETUP_HOST not in (previous.host, host)
            and previous.tx_count == record.tx_count
        ):
            self.violations.append(
                Violation(store=store, key=key, first=previous, second=record)
            )
        self._last_write[(store, key)] = record
        self.mutations.append(record)

    # -- reporting -----------------------------------------------------------

    @property
    def clean(self) -> bool:
        return not self.violations

    def report(self) -> list[str]:
        return [violation.render() for violation in self.violations]
