"""The concurrent discrete-event kernel: tasks, effects, pools, timers.

Until this module existed, every request ran to completion on the single
virtual timeline — "two requests in flight" could not even be expressed.
The kernel turns :mod:`repro.sim` into a true discrete-event engine while
leaving every single-request cost ledger bit-identical (DESIGN.md §14):

* **Scheduler** — a priority queue of ``(time, seq, action)`` with the
  monotonic ``seq`` breaking ties FIFO, so runs are deterministic down to
  event order.  The kernel advances the shared :class:`~repro.sim.clock
  .Clock` to each event's instant, which fires any due clock timers first,
  in deadline order — legacy timers and kernel events share one timeline.
* **Tasks** — cooperative generators yielding :class:`Effect` values:
  :class:`Delay` sleeps virtual time, :class:`Work` runs a synchronous
  stage and sleeps its measured cost, :class:`Send`/:class:`Recv` pass
  values through :class:`Channel` rendezvous, :class:`Acquire`/
  :class:`Release` bracket a per-host worker slot.
* **Worker pools** — each simulated host serves requests from a bounded
  FIFO queue with ``workers`` slots.  Queueing delay (enqueue → grant) is
  measured separately from service time, which is charged only *after*
  dequeue — the paper's single-request bars stay intact while saturation
  becomes observable as queue growth.
* **Kernel-owned timers** — :meth:`Kernel.call_at`/:meth:`call_after` run
  callbacks under the sanitizer's ``<timer>`` pseudo-host, subsuming the
  ad-hoc ``clock.schedule`` idiom (lint rule RPO14 now fences direct
  clock/timer mutation outside this module).

Two execution regimes keep the goldens safe:

* With **one live task** (or via :meth:`run_sync`, the single-request fast
  path every :class:`~repro.container.client.SoapClient` uses when no
  tasks are in flight) stages execute *eagerly*: charges advance the
  clock immediately and timers fire mid-charge, exactly like the legacy
  serial path — bit-identical by construction.
* With **two or more live tasks** a stage runs under
  :meth:`Clock.defer_charges`: its synchronous computation is virtually
  instantaneous, its accumulated cost becomes one :class:`Delay`, and
  other tasks' events interleave inside that window.  Per-category cost
  totals are unchanged — only the wall-clock *shape* (overlap, queueing)
  differs, which is the point.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Generator, Iterable

from repro.sim.clock import Clock, Timer
from repro.sim.errors import QueueFull, SimError
from repro.sim.metrics import SampleSet, SpanRecorder
from repro.sim.sanitizer import TIMER_HOST

__all__ = [
    "Acquire",
    "Channel",
    "Delay",
    "Effect",
    "Kernel",
    "QueueFull",
    "Recv",
    "Release",
    "Send",
    "Task",
    "Work",
    "WorkerPool",
    "drive_inline",
]


# -- effects -----------------------------------------------------------------


class Effect:
    """Base class for everything a task may yield to the kernel."""

    __slots__ = ()


@dataclass(frozen=True)
class Delay(Effect):
    """Sleep ``ms`` of virtual time; other tasks run inside the window."""

    ms: float


@dataclass(frozen=True)
class Work(Effect):
    """Run ``fn()`` as one atomic stage and sleep its charged cost.

    The stage's synchronous computation — SOAP marshalling, signing, a
    container dispatch — executes unchanged; the kernel measures what it
    charged (deferred mode) or lets it charge directly (eager mode) and
    resumes the task with ``fn``'s return value.  Exceptions raised by
    ``fn`` are re-thrown *into* the task at the yield point, after any
    partial cost (a lost message still paid its wire time) has elapsed.
    """

    fn: Callable[[], object]
    label: str = ""


@dataclass(frozen=True)
class Send(Effect):
    """Deposit ``value`` into ``channel`` (never blocks; FIFO buffered)."""

    channel: "Channel"
    value: object = None


@dataclass(frozen=True)
class Recv(Effect):
    """Wait for the next value from ``channel`` (FIFO among waiters)."""

    channel: "Channel"


@dataclass(frozen=True)
class Acquire(Effect):
    """Wait for a worker slot on ``host``'s pool; resumes with the
    queueing delay in ms.  Raises :class:`QueueFull` in the task when the
    pool's bounded FIFO is saturated."""

    host: str


@dataclass(frozen=True)
class Release(Effect):
    """Give the worker slot on ``host`` back (hands it to the queue head)."""

    host: str


# -- tasks -------------------------------------------------------------------


@dataclass
class Task:
    """One cooperative task: a generator plus its lifecycle bookkeeping."""

    gen: Generator
    name: str
    tid: int
    #: Virtual instant the task was scheduled to start (its arrival).
    scheduled_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    #: Total time spent waiting in worker-pool queues.
    queueing_delay_ms: float = 0.0
    result: object = None
    error: BaseException | None = None
    done: bool = False
    #: Per-task span recorder, swapped into the shared metrics while the
    #: task runs so interleaved requests cannot corrupt each other's trees.
    tracer: SpanRecorder = field(default_factory=SpanRecorder)

    @property
    def ok(self) -> bool:
        return self.done and self.error is None

    @property
    def latency_ms(self) -> float:
        """Arrival-to-completion time (queueing included)."""
        if self.finished_at is None:
            raise SimError(f"task {self.name!r} has not finished")
        return self.finished_at - self.scheduled_at


class Channel:
    """Unbounded FIFO rendezvous between tasks (Send never blocks)."""

    def __init__(self, name: str = "chan") -> None:
        self.name = name
        self._buffer: deque = deque()
        self._waiters: deque[Task] = deque()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Channel({self.name!r}, buffered={len(self._buffer)})"


class WorkerPool:
    """A host's request servers: ``workers`` slots + a bounded FIFO queue.

    Service time is charged by the task *after* its :class:`Acquire` is
    granted (i.e. on dequeue); the time between enqueue and grant is the
    queueing delay, recorded per pool in :attr:`waits` and on the task.
    """

    def __init__(self, host: str, workers: int = 1, queue_limit: int = 16) -> None:
        if workers < 1:
            raise SimError(f"pool for {host!r} needs at least one worker")
        if queue_limit < 0:
            raise SimError(f"pool for {host!r} needs a non-negative queue limit")
        self.host = host
        self.workers = workers
        self.queue_limit = queue_limit
        self.busy = 0
        self._queue: deque[tuple[Task, float]] = deque()
        #: High-water mark of the FIFO queue (the saturation signal).
        self.max_depth = 0
        #: Queueing delays (enqueue → grant), one sample per queued grant.
        self.waits = SampleSet()
        self.granted = 0
        self.rejected = 0

    @property
    def depth(self) -> int:
        return len(self._queue)

    def snapshot(self) -> dict:
        return {
            "host": self.host,
            "workers": self.workers,
            "queue_limit": self.queue_limit,
            "granted": self.granted,
            "rejected": self.rejected,
            "max_depth": self.max_depth,
        }


def drive_inline(gen: Generator) -> object:
    """Run a staged task generator synchronously with no kernel at all.

    The legacy execution model as a driver: :class:`Work` stages run
    immediately (their charges advance the clock directly), pool and
    channel effects are meaningless without a kernel — pools are skipped,
    channels refused.  This is what a kernel-less
    :class:`~repro.container.client.SoapClient` uses, and it is
    bit-identical to the pre-kernel inline code path.
    """
    payload: object = None
    thrown: BaseException | None = None
    while True:
        try:
            effect = gen.throw(thrown) if thrown is not None else gen.send(payload)
        except StopIteration as stop:
            return stop.value
        payload, thrown = None, None
        if isinstance(effect, Work):
            try:
                payload = effect.fn()
            except BaseException as exc:  # rethrown at the yield point
                thrown = exc
        elif isinstance(effect, Acquire):
            payload = 0.0
        elif isinstance(effect, Release):
            payload = None
        elif isinstance(effect, Delay):
            raise SimError("Delay requires a kernel; inline tasks cannot sleep")
        else:
            raise SimError(f"inline driver cannot execute {type(effect).__name__}")


class Kernel:
    """The discrete-event engine owning one clock's concurrent timeline."""

    def __init__(
        self,
        network=None,
        clock: Clock | None = None,
        *,
        default_workers: int = 1,
        default_queue_limit: int = 16,
    ) -> None:
        if clock is None:
            if network is None:
                raise SimError("Kernel needs a network or a clock")
            clock = network.clock
        self.network = network
        self.clock = clock
        self.default_workers = default_workers
        self.default_queue_limit = default_queue_limit
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._tid = itertools.count()
        self.tasks: list[Task] = []
        #: Unfinished spawned tasks; 1 selects the eager (serial) regime.
        self._live = 0
        self.current: Task | None = None
        self._in_stage = False
        self._pools: dict[str, WorkerPool] = {}
        #: Requests completed through :meth:`run_sync` (the fast path).
        self.sync_requests = 0

    # -- worker pools --------------------------------------------------------

    def pool(self, host: str) -> WorkerPool:
        """The host's worker pool, created with the defaults on first use."""
        existing = self._pools.get(host)
        if existing is None:
            existing = WorkerPool(host, self.default_workers, self.default_queue_limit)
            self._pools[host] = existing
        return existing

    def configure_pool(self, host: str, workers: int, queue_limit: int) -> WorkerPool:
        """Size a host's pool before load arrives (replaces any default)."""
        self._pools[host] = WorkerPool(host, workers, queue_limit)
        return self._pools[host]

    def pools(self) -> dict[str, WorkerPool]:
        return dict(sorted(self._pools.items()))

    def max_queue_depths(self) -> dict[str, int]:
        """Per-host high-water queue depth (the saturation report)."""
        return {host: pool.max_depth for host, pool in sorted(self._pools.items())}

    # -- scheduling ----------------------------------------------------------

    def _post(self, at: float, action: Callable[[], None]) -> None:
        heapq.heappush(
            self._heap, (max(at, self.clock.now), next(self._seq), action)
        )

    def spawn(
        self,
        gen: Generator,
        name: str = "task",
        *,
        at: float | None = None,
        delay: float = 0.0,
    ) -> Task:
        """Schedule a task generator to start at ``at`` (default now+delay)."""
        start = self.clock.now + delay if at is None else at
        task = Task(gen=gen, name=name, tid=next(self._tid), scheduled_at=start)
        self.tasks.append(task)
        self._live += 1
        self._post(start, lambda: self._begin(task))
        return task

    def call_at(self, fire_at: float, callback: Callable[[], None], label: str = "timer") -> Timer:
        """Kernel-owned timer: ``callback`` runs at ``fire_at`` under the
        sanitizer's ``<timer>`` pseudo-host (expiry is the one legitimate
        cross-host mutation channel besides the wire).

        Timers live on the clock's deadline heap, not the kernel event
        heap: they fire during *any* advance past their deadline — a
        kernel event, a serial request's charge, or ``run(until=...)`` —
        so the lease-expiry semantics every golden ledger was pinned
        against (timers firing mid-charge) are preserved verbatim.
        Returns a handle for :meth:`cancel`.
        """

        def fire() -> None:
            if self.network is not None:
                with self.network.sanitizer_scope(TIMER_HOST, f"kernel:{label}"):
                    callback()
            else:
                callback()

        return self.clock.schedule(fire_at, fire)

    def call_after(self, delay_ms: float, callback: Callable[[], None], label: str = "timer") -> Timer:
        return self.call_at(self.clock.now + delay_ms, callback, label)

    def cancel(self, timer: Timer) -> None:
        """Cancel a timer returned by :meth:`call_at`/:meth:`call_after`
        (idempotent; a cancelled deadline is skipped, never fired)."""
        self.clock.cancel(timer)

    # -- the event loop ------------------------------------------------------

    @property
    def live_tasks(self) -> int:
        return self._live

    @property
    def idle(self) -> bool:
        """No events pending and no task mid-flight."""
        return not self._heap and self.current is None

    def run(self, until: float | None = None) -> None:
        """Process events in ``(time, seq)`` order until the heap drains.

        Advancing the shared clock to each event's instant fires any due
        legacy clock timers first (in deadline order), so kernel events
        and ad-hoc timers observe one totally-ordered virtual timeline.
        """
        while self._heap:
            at, _seq, action = self._heap[0]
            if until is not None and at > until:
                break
            heapq.heappop(self._heap)
            self.clock.advance_to(at)
            action()
        if until is not None and self.clock.now < until:
            self.clock.advance_to(until)

    # -- task stepping -------------------------------------------------------

    def _begin(self, task: Task) -> None:
        task.started_at = self.clock.now
        self._step(task, None, None)

    def _swap_tracer(self, task: Task):
        if self.network is None:
            return None
        metrics = self.network.metrics
        previous = metrics.tracer
        metrics.tracer = task.tracer
        return (metrics, previous)

    def _restore_tracer(self, swapped) -> None:
        if swapped is not None:
            metrics, previous = swapped
            metrics.tracer = previous

    def _step(self, task: Task, payload, thrown: BaseException | None) -> None:
        previous_task, self.current = self.current, task
        swapped = self._swap_tracer(task)
        try:
            try:
                effect = (
                    task.gen.throw(thrown)
                    if thrown is not None
                    else task.gen.send(payload)
                )
            except StopIteration as stop:
                self._finish(task, stop.value, None)
                return
            except BaseException as exc:
                self._finish(task, None, exc)
                return
            self._dispatch(task, effect)
        finally:
            self._restore_tracer(swapped)
            self.current = previous_task

    def _finish(self, task: Task, result, error: BaseException | None) -> None:
        task.result = result
        task.error = error
        task.done = True
        task.finished_at = self.clock.now
        self._live -= 1

    def _resume_later(self, at: float, task: Task, payload=None, thrown=None) -> None:
        self._post(at, lambda: self._step(task, payload, thrown))

    # -- effect dispatch -----------------------------------------------------

    def _dispatch(self, task: Task, effect: Effect) -> None:
        if isinstance(effect, Work):
            self._run_stage(task, effect)
        elif isinstance(effect, Delay):
            if effect.ms < 0:
                self._resume_later(
                    self.clock.now, task,
                    thrown=SimError(f"cannot delay negative time: {effect.ms}"),
                )
            else:
                self._resume_later(self.clock.now + effect.ms, task)
        elif isinstance(effect, Acquire):
            self._acquire(task, self.pool(effect.host))
        elif isinstance(effect, Release):
            self._release(self.pool(effect.host))
            self._resume_later(self.clock.now, task)
        elif isinstance(effect, Send):
            self._send(effect.channel, effect.value)
            self._resume_later(self.clock.now, task)
        elif isinstance(effect, Recv):
            self._recv(task, effect.channel)
        else:
            self._resume_later(
                self.clock.now, task,
                thrown=SimError(f"task yielded a non-effect: {effect!r}"),
            )

    def _run_stage(self, task: Task, work: Work) -> None:
        """Execute one stage; eager when this is the only live task."""
        if self._in_stage:
            raise SimError("kernel stages cannot nest")
        eager = self._live == 1
        thrown: BaseException | None = None
        payload: object = None
        self._in_stage = True
        try:
            if eager:
                # Fast path: charges advance the clock immediately, timers
                # fire mid-charge — bit-identical to the serial regime.
                try:
                    payload = work.fn()
                except BaseException as exc:
                    thrown = exc
                resume_at = self.clock.now
            else:
                # Concurrent regime: the stage computes instantaneously,
                # then its accumulated cost elapses as one schedulable
                # delay other tasks interleave into.
                with self.clock.defer_charges() as pending:
                    try:
                        payload = work.fn()
                    except BaseException as exc:
                        thrown = exc
                resume_at = self.clock.now + pending.ms
        finally:
            self._in_stage = False
        self._resume_later(resume_at, task, payload, thrown)

    # -- pool mechanics ------------------------------------------------------

    def _acquire(self, task: Task, pool: WorkerPool) -> None:
        if pool.busy < pool.workers:
            pool.busy += 1
            pool.granted += 1
            pool.waits.add(0.0)
            self._resume_later(self.clock.now, task, payload=0.0)
            return
        if pool.depth >= pool.queue_limit:
            pool.rejected += 1
            self._resume_later(
                self.clock.now, task, thrown=QueueFull(pool.host, pool.queue_limit)
            )
            return
        pool._queue.append((task, self.clock.now))
        pool.max_depth = max(pool.max_depth, pool.depth)

    def _release(self, pool: WorkerPool) -> None:
        if pool._queue:
            # Hand the slot straight to the queue head: service time is
            # charged by the dequeued task from this instant on.
            waiter, enqueued_at = pool._queue.popleft()
            wait = self.clock.now - enqueued_at
            waiter.queueing_delay_ms += wait
            pool.granted += 1
            pool.waits.add(wait)
            self._resume_later(self.clock.now, waiter, payload=wait)
            return
        if pool.busy <= 0:
            raise SimError(f"release without acquire on pool {pool.host!r}")
        pool.busy -= 1

    # -- channel mechanics ---------------------------------------------------

    def _send(self, channel: Channel, value) -> None:
        if channel._waiters:
            waiter = channel._waiters.popleft()
            self._resume_later(self.clock.now, waiter, payload=value)
            return
        channel._buffer.append(value)

    def _recv(self, task: Task, channel: Channel) -> None:
        if channel._buffer:
            self._resume_later(self.clock.now, task, payload=channel._buffer.popleft())
            return
        channel._waiters.append(task)

    # -- the single-request fast path ---------------------------------------

    @property
    def can_run_sync(self) -> bool:
        """True when a synchronous request may execute eagerly: nothing is
        in flight, so pool slots are guaranteed free and charge order is
        exactly the legacy serial order."""
        return self.current is None and not self._in_stage and self._live == 0

    def run_sync(self, gen: Generator) -> object:
        """Drive one request generator to completion, eagerly.

        This is the single-request fast path: every stage charges the
        clock directly (timers fire mid-charge), pool effects do immediate
        bookkeeping (a busy pool here would mean concurrency, which
        :attr:`can_run_sync` excludes), and the result/exception surfaces
        synchronously.  Cost ledgers are bit-identical to the pre-kernel
        inline path by construction.
        """
        if not self.can_run_sync:
            raise SimError(
                "run_sync while tasks are in flight; spawn a task instead"
            )
        self._in_stage = False
        held: list[WorkerPool] = []
        payload: object = None
        thrown: BaseException | None = None
        try:
            while True:
                try:
                    effect = (
                        gen.throw(thrown) if thrown is not None else gen.send(payload)
                    )
                except StopIteration as stop:
                    self.sync_requests += 1
                    return stop.value
                payload, thrown = None, None
                if isinstance(effect, Work):
                    self._in_stage = True
                    try:
                        payload = effect.fn()
                    except BaseException as exc:
                        thrown = exc
                    finally:
                        self._in_stage = False
                elif isinstance(effect, Acquire):
                    pool = self.pool(effect.host)
                    if pool.busy >= pool.workers:
                        thrown = SimError(
                            f"pool {effect.host!r} busy during a synchronous request"
                        )
                    else:
                        pool.busy += 1
                        pool.granted += 1
                        pool.waits.add(0.0)
                        held.append(pool)
                        payload = 0.0
                elif isinstance(effect, Release):
                    pool = self.pool(effect.host)
                    if pool in held:
                        held.remove(pool)
                    self._release(pool)
                elif isinstance(effect, Delay):
                    if effect.ms < 0:
                        thrown = SimError(f"cannot delay negative time: {effect.ms}")
                    else:
                        self.clock.charge(effect.ms)
                else:
                    thrown = SimError(
                        f"{type(effect).__name__} is not available in a "
                        "synchronous request"
                    )
        finally:
            # A request abandoned mid-flight (generator raised) must not
            # leak its worker slot.
            for pool in held:
                self._release(pool)

    # -- helpers -------------------------------------------------------------

    def gather(self, tasks: Iterable[Task]) -> list[object]:
        """Results of finished tasks, re-raising the first failure."""
        results = []
        for task in tasks:
            if not task.done:
                raise SimError(f"task {task.name!r} has not finished")
            if task.error is not None:
                raise task.error
            results.append(task.result)
        return results
