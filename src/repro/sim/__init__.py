"""Deterministic virtual-time substrate.

The paper measured wall-clock milliseconds on a pair of 2005-era Opteron
machines.  This package replaces that testbed with a discrete virtual clock
and a calibrated cost model (DESIGN.md §2, §5): every component *charges*
virtual milliseconds for the work it does — SOAP processing scaled by the
real serialized message size, database operations, RSA signing, TLS
handshakes, LAN round trips — so the benchmark figures are deterministic and
reproduce the paper's *shapes* rather than this machine's timings.
"""

from repro.sim.clock import Clock, DeferredCharges, Timer
from repro.sim.costs import CostModel
from repro.sim.errors import QueueFull, SimError
from repro.sim.faults import (
    NO_FAULTS,
    ConnectionReset,
    DeliveryFault,
    FaultInjector,
    FaultOutcome,
    FaultSpec,
    MessageLost,
)
from repro.sim.kernel import (
    Acquire,
    Channel,
    Delay,
    Effect,
    Kernel,
    Recv,
    Release,
    Send,
    Task,
    Work,
    WorkerPool,
    drive_inline,
)
from repro.sim.metrics import (
    MetricsRecorder,
    OperationTrace,
    QueueDepthMeter,
    SampleSet,
    Span,
    SpanRecorder,
    merge_sample_sets,
    percentile,
)
from repro.sim.network import Host, Network, TransportKind
from repro.sim.sanitizer import (
    SETUP_HOST,
    TIMER_HOST,
    MutationRecord,
    SimSanitizer,
    Violation,
)

__all__ = [
    "Clock",
    "DeferredCharges",
    "Timer",
    "CostModel",
    "SimError",
    "QueueFull",
    "Kernel",
    "Task",
    "Effect",
    "Delay",
    "Work",
    "Send",
    "Recv",
    "Acquire",
    "Release",
    "Channel",
    "WorkerPool",
    "drive_inline",
    "MetricsRecorder",
    "OperationTrace",
    "Span",
    "SpanRecorder",
    "SampleSet",
    "QueueDepthMeter",
    "percentile",
    "merge_sample_sets",
    "Host",
    "Network",
    "TransportKind",
    "DeliveryFault",
    "MessageLost",
    "ConnectionReset",
    "FaultSpec",
    "FaultOutcome",
    "FaultInjector",
    "NO_FAULTS",
    "SimSanitizer",
    "MutationRecord",
    "Violation",
    "TIMER_HOST",
    "SETUP_HOST",
]
