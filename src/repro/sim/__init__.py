"""Deterministic virtual-time substrate.

The paper measured wall-clock milliseconds on a pair of 2005-era Opteron
machines.  This package replaces that testbed with a discrete virtual clock
and a calibrated cost model (DESIGN.md §2, §5): every component *charges*
virtual milliseconds for the work it does — SOAP processing scaled by the
real serialized message size, database operations, RSA signing, TLS
handshakes, LAN round trips — so the benchmark figures are deterministic and
reproduce the paper's *shapes* rather than this machine's timings.
"""

from repro.sim.clock import Clock, Timer
from repro.sim.costs import CostModel
from repro.sim.faults import (
    NO_FAULTS,
    ConnectionReset,
    DeliveryFault,
    FaultInjector,
    FaultOutcome,
    FaultSpec,
    MessageLost,
)
from repro.sim.metrics import MetricsRecorder, OperationTrace, Span, SpanRecorder
from repro.sim.network import Host, Network, TransportKind
from repro.sim.sanitizer import (
    SETUP_HOST,
    TIMER_HOST,
    MutationRecord,
    SimSanitizer,
    Violation,
)

__all__ = [
    "Clock",
    "Timer",
    "CostModel",
    "MetricsRecorder",
    "OperationTrace",
    "Span",
    "SpanRecorder",
    "Host",
    "Network",
    "TransportKind",
    "DeliveryFault",
    "MessageLost",
    "ConnectionReset",
    "FaultSpec",
    "FaultOutcome",
    "FaultInjector",
    "NO_FAULTS",
    "SimSanitizer",
    "MutationRecord",
    "Violation",
    "TIMER_HOST",
    "SETUP_HOST",
]
