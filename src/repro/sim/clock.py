"""The virtual clock: the single source of time for the whole simulation.

Time is a float in *milliseconds* (matching the paper's reporting unit).
Components advance time by charging costs; timers let lifetime managers and
subscription expiries fire at scheduled virtual instants without any real
sleeping.

Two execution regimes share this class (DESIGN.md §14):

* **Immediate** (the default, and the single-request fast path): every
  ``charge`` advances ``now`` at once, firing due timers mid-advance —
  exactly the behaviour all golden cost ledgers were pinned against.
* **Deferred** (inside a :class:`~repro.sim.kernel.Kernel` stage): charges
  accumulate into a pending total instead of moving the shared timeline,
  so the kernel can sleep the stage's cost as one interleavable delay.
  ``now`` still reflects the locally-elapsed time (``_now + pending``), so
  deadlines computed mid-stage (lease expiries, retry backoff) land where
  the immediate regime would have put them.
"""

from __future__ import annotations

import heapq
import itertools
import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable

from repro.sim.errors import SimError


@dataclass(frozen=True)
class Timer:
    """Handle for a scheduled callback; pass to :meth:`Clock.cancel`."""

    fire_at: float
    seq: int


@dataclass
class DeferredCharges:
    """Accumulator for charges made while a kernel stage is executing."""

    ms: float = 0.0


class Clock:
    """Monotonic virtual clock with scheduled timers.

    ``charge(ms)`` is the workhorse: it advances time and fires any timer
    whose deadline falls inside the advance.  Timer callbacks run with the
    clock set to *their* deadline (so a resource destroyed by a lifetime
    sweep sees the correct destruction instant), after which the clock
    continues to the end of the charge.
    """

    def __init__(self, start: float = 0.0, seed: int = 0) -> None:
        self._now = float(start)
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._cancelled: set[int] = set()
        self._seq = itertools.count()
        #: Non-None while a kernel stage runs with deferred charging.
        self._deferred: DeferredCharges | None = None
        #: The simulation's single source of randomness.  Everything
        #: stochastic (fault injection, backoff jitter) draws from here, so
        #: one seed makes a whole run reproducible.
        self.seed = seed
        self.rng = random.Random(seed)

    def reseed(self, seed: int | None = None) -> None:
        """Reset the RNG stream in place (``None`` replays the original
        seed).  In-place so components holding a reference to ``rng`` —
        e.g. the network's fault injector — see the new stream too."""
        if seed is not None:
            self.seed = seed
        self.rng.seed(self.seed)

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds.

        While a kernel stage defers its charges, ``now`` includes the
        stage's locally-accumulated time, so code running inside the
        stage sees time progress exactly as it would under immediate
        charging.
        """
        if self._deferred is not None:
            return self._now + self._deferred.ms
        return self._now

    def charge(self, ms: float) -> None:
        """Advance the clock by ``ms`` (must be non-negative)."""
        if ms < 0:
            raise SimError(f"cannot charge negative time: {ms}")
        if self._deferred is not None:
            self._deferred.ms += ms
            return
        self.advance_to(self._now + ms)

    def advance_to(self, deadline: float) -> None:
        """Move time forward to ``deadline``, firing due timers in order.

        Backwards movement is a :class:`~repro.sim.errors.SimError`: once
        several tasks schedule wakeups on one shared timeline, a silent
        rewind would deliver events before their causes.
        """
        if self._deferred is not None:
            if deadline < self.now:
                raise SimError(
                    f"clock cannot move backwards ({deadline} < {self.now}, "
                    "inside a deferred kernel stage)"
                )
            self._deferred.ms = deadline - self._now
            return
        if deadline < self._now:
            raise SimError(
                f"clock cannot move backwards ({deadline} < {self._now})"
            )
        while self._heap and self._heap[0][0] <= deadline:
            fire_at, seq, callback = heapq.heappop(self._heap)
            if seq in self._cancelled:
                self._cancelled.discard(seq)
                continue
            self._now = max(self._now, fire_at)
            callback()
        self._now = max(self._now, deadline)

    @contextmanager
    def defer_charges(self):
        """Accumulate charges instead of advancing (one kernel stage).

        Yields the :class:`DeferredCharges` accumulator; on exit the clock
        returns to immediate mode *without* advancing — the kernel owns
        the advance, sleeping the accumulated total as a schedulable
        delay so other tasks' events can interleave inside it.  Deferral
        cannot nest: a stage is the atomic unit of computation.
        """
        if self._deferred is not None:
            raise SimError("charge deferral cannot nest: already inside a kernel stage")
        self._deferred = pending = DeferredCharges()
        try:
            yield pending
        finally:
            self._deferred = None

    @property
    def deferring(self) -> bool:
        """True while charges are being deferred (a kernel stage runs)."""
        return self._deferred is not None

    def schedule(self, fire_at: float, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` to run when virtual time reaches ``fire_at``.

        A deadline in the past fires on the next advance (immediately at the
        current instant), never retroactively.
        """
        seq = next(self._seq)
        heapq.heappush(self._heap, (max(fire_at, self.now), seq, callback))
        return Timer(fire_at, seq)

    def schedule_after(self, delay_ms: float, callback: Callable[[], None]) -> Timer:
        return self.schedule(self.now + delay_ms, callback)

    def cancel(self, timer: Timer) -> None:
        """Cancel a scheduled timer (idempotent; firing is skipped)."""
        self._cancelled.add(timer.seq)

    def next_timer_at(self) -> float | None:
        """Deadline of the earliest live timer, or None when idle."""
        while self._heap and self._heap[0][1] in self._cancelled:
            _, seq, _ = heapq.heappop(self._heap)
            self._cancelled.discard(seq)
        return self._heap[0][0] if self._heap else None

    def pending_timers(self) -> int:
        """Number of live (not yet fired, not cancelled) timers."""
        return sum(1 for _, seq, _ in self._heap if seq not in self._cancelled)
