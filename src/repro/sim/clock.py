"""The virtual clock: the single source of time for the whole simulation.

Time is a float in *milliseconds* (matching the paper's reporting unit).
Components advance time by charging costs; timers let lifetime managers and
subscription expiries fire at scheduled virtual instants without any real
sleeping.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Callable


@dataclass(frozen=True)
class Timer:
    """Handle for a scheduled callback; pass to :meth:`Clock.cancel`."""

    fire_at: float
    seq: int


class Clock:
    """Monotonic virtual clock with scheduled timers.

    ``charge(ms)`` is the workhorse: it advances time and fires any timer
    whose deadline falls inside the advance.  Timer callbacks run with the
    clock set to *their* deadline (so a resource destroyed by a lifetime
    sweep sees the correct destruction instant), after which the clock
    continues to the end of the charge.
    """

    def __init__(self, start: float = 0.0, seed: int = 0) -> None:
        self._now = float(start)
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._cancelled: set[int] = set()
        self._seq = itertools.count()
        #: The simulation's single source of randomness.  Everything
        #: stochastic (fault injection, backoff jitter) draws from here, so
        #: one seed makes a whole run reproducible.
        self.seed = seed
        self.rng = random.Random(seed)

    def reseed(self, seed: int | None = None) -> None:
        """Reset the RNG stream in place (``None`` replays the original
        seed).  In-place so components holding a reference to ``rng`` —
        e.g. the network's fault injector — see the new stream too."""
        if seed is not None:
            self.seed = seed
        self.rng.seed(self.seed)

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    def charge(self, ms: float) -> None:
        """Advance the clock by ``ms`` (must be non-negative)."""
        if ms < 0:
            raise ValueError(f"cannot charge negative time: {ms}")
        self.advance_to(self._now + ms)

    def advance_to(self, deadline: float) -> None:
        """Move time forward to ``deadline``, firing due timers in order."""
        if deadline < self._now:
            raise ValueError(
                f"clock cannot move backwards ({deadline} < {self._now})"
            )
        while self._heap and self._heap[0][0] <= deadline:
            fire_at, seq, callback = heapq.heappop(self._heap)
            if seq in self._cancelled:
                self._cancelled.discard(seq)
                continue
            self._now = max(self._now, fire_at)
            callback()
        self._now = max(self._now, deadline)

    def schedule(self, fire_at: float, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` to run when virtual time reaches ``fire_at``.

        A deadline in the past fires on the next advance (immediately at the
        current instant), never retroactively.
        """
        seq = next(self._seq)
        heapq.heappush(self._heap, (max(fire_at, self._now), seq, callback))
        return Timer(fire_at, seq)

    def schedule_after(self, delay_ms: float, callback: Callable[[], None]) -> Timer:
        return self.schedule(self._now + delay_ms, callback)

    def cancel(self, timer: Timer) -> None:
        """Cancel a scheduled timer (idempotent; firing is skipped)."""
        self._cancelled.add(timer.seq)

    def pending_timers(self) -> int:
        """Number of live (not yet fired, not cancelled) timers."""
        return sum(1 for _, seq, _ in self._heap if seq not in self._cancelled)
