"""The WS-Eventing subscription manager service: Renew/GetStatus/Unsubscribe."""

from __future__ import annotations

from repro.container.service import MessageContext, ServiceSkeleton, web_method
from repro.eventing.source import SUBSCRIPTION_ID, actions, parse_expires, _format_expires
from repro.eventing.store import FlatFileSubscriptionStore
from repro.wsrf.basefaults import base_fault
from repro.xmllib import element, ns, text_of
from repro.xmllib.element import XmlElement


class EventSubscriptionManagerService(ServiceSkeleton):
    """Manages subscriptions created by one or more event sources."""

    service_name = "EventSubscriptionManager"

    def __init__(self, store: FlatFileSubscriptionStore):
        super().__init__()
        self.store = store

    def _identify(self, context: MessageContext) -> str:
        identifier = context.headers.target_epr().property(SUBSCRIPTION_ID)
        if not identifier:
            raise base_fault(
                "request EPR carries no subscription Identifier",
                error_code="ResourceUnknownFault",
            )
        return identifier

    def _require(self, identifier: str):
        record = self.store.get(identifier)
        if record is None:
            raise base_fault(
                f"unknown subscription: {identifier}",
                error_code="ResourceUnknownFault",
                originator=self.address,
                timestamp=self.network.clock.now,
            )
        if record.expired(self.network.clock.now):
            self.store.remove(identifier)
            raise base_fault(
                f"subscription {identifier} has expired",
                error_code="ResourceUnknownFault",
                originator=self.address,
                timestamp=self.network.clock.now,
            )
        return record

    @web_method(actions.GET_STATUS)
    def wse_get_status(self, context: MessageContext) -> XmlElement:
        record = self._require(self._identify(context))
        return element(
            f"{{{ns.WSE}}}GetStatusResponse",
            element(f"{{{ns.WSE}}}Expires", _format_expires(record.expires)),
        )

    @web_method(actions.RENEW)
    def wse_renew(self, context: MessageContext) -> XmlElement:
        identifier = self._identify(context)
        self._require(identifier)
        expires = parse_expires(
            text_of(context.body.find(f"{{{ns.WSE}}}Expires")), self.network.clock.now
        )
        renewed = self.store.renew(identifier, expires)
        return element(
            f"{{{ns.WSE}}}RenewResponse",
            element(f"{{{ns.WSE}}}Expires", _format_expires(renewed.expires)),
        )

    @web_method(actions.UNSUBSCRIBE)
    def wse_unsubscribe(self, context: MessageContext) -> XmlElement:
        identifier = self._identify(context)
        # _require faults on expired subscriptions too, so unsubscribing a
        # lapsed lease reports the same taxonomy as WSRF Destroy-after-expiry.
        self._require(identifier)
        self.store.remove(identifier)
        return element(f"{{{ns.WSE}}}UnsubscribeResponse")
