"""Client-side event reception: the WSE SoapReceiver over persistent TCP.

"Plumbwork Orange uses a WSE SoapReceiver to handle notifications via TCP"
— contrast with the WSRF.NET consumer's embedded HTTP server.

This is a thin endpoint behind the notification pipeline: by the time
``_on_envelope`` runs, the deployment's filter chain (DESIGN.md §10) has
already charged delivery costs, verified signatures and closed the
``notify.receive`` span — the consumer only dedupes and dispatches.
"""

from __future__ import annotations

from repro.addressing.epr import EndpointReference
from repro.reliable.sequence import InboundDeduper
from repro.xmllib import ns
from repro.xmllib.element import XmlElement


class EventingConsumer:
    """Receives pushed events on a persistent TCP sink.

    A WS-RM deduper fronts the handler: sequence-stamped deliveries
    (from a reliable producer) are collapsed to exactly-once — and
    optionally reordered — while unstamped deliveries pass straight
    through, so unreliable producers keep working unchanged.
    """

    def __init__(self, deployment, host_name: str, *, ordered: bool = False):
        self.received: list[XmlElement] = []
        self.ended: list[str] = []
        self._callbacks = []
        self.deduper = InboundDeduper(ordered=ordered)
        self.sink = deployment.add_sink(host_name, self._on_envelope, kind="tcp-receiver")

    @property
    def epr(self) -> EndpointReference:
        return EndpointReference.create(self.sink.address)

    @property
    def duplicates(self) -> int:
        """Redundant deliveries suppressed by the WS-RM deduper."""
        return self.deduper.duplicates

    def on_event(self, callback) -> None:
        self._callbacks.append(callback)

    def _on_envelope(self, envelope) -> None:
        for admitted in self.deduper.admit(envelope):
            self._handle(admitted)

    def _handle(self, envelope) -> None:
        body = envelope.body_child()
        if body.tag.namespace == ns.WSE and body.tag.local == "SubscriptionEnd":
            self.ended.append(body.text())
            return
        self.received.append(body)
        for callback in self._callbacks:
            callback(body)
