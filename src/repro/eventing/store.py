"""The flat-XML-file subscription store.

Plumbwork Orange "maintains the subscription lists in a flat XML file" —
pointedly *not* the XML database the services use.  Every mutation rewrites
the whole file and every read re-parses it; the costs charged reflect that
(cheap at the handful-of-subscriptions scale the paper measures).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace

from repro.sim.network import Network
from repro.xmldb.collection import Collection, DocumentNotFound
from repro.xmllib import element, ns, parse_xml, serialize, text_of
from repro.xmllib.element import XmlElement
from repro.xmllib.xpath import xpath_literal

_NS = ns.EVENTING_STORE
_PREFIXES = {"es": _NS}


@dataclass(frozen=True)
class SubscriptionRecord:
    """One WS-Eventing subscription."""

    identifier: str
    source_address: str
    notify_to: str
    end_to: str = ""
    expires: float | None = None
    filter_expression: str = ""
    delivery_mode: str = ns.WSE_DELIVERY_PUSH

    def expired(self, now: float) -> bool:
        # Inclusive boundary: a lease used on the very tick it expires is
        # already dead, matching WSRF timers which fire at fire_at <= now.
        return self.expires is not None and now >= self.expires

    def to_xml(self) -> XmlElement:
        node = element(
            f"{{{_NS}}}Subscription",
            element(f"{{{_NS}}}Identifier", self.identifier),
            element(f"{{{_NS}}}Source", self.source_address),
            element(f"{{{_NS}}}NotifyTo", self.notify_to),
            element(f"{{{_NS}}}DeliveryMode", self.delivery_mode),
        )
        if self.end_to:
            node.append(element(f"{{{_NS}}}EndTo", self.end_to))
        if self.expires is not None:
            node.append(element(f"{{{_NS}}}Expires", repr(self.expires)))
        if self.filter_expression:
            node.append(element(f"{{{_NS}}}Filter", self.filter_expression))
        return node

    @classmethod
    def from_xml(cls, node: XmlElement) -> "SubscriptionRecord":
        expires_text = text_of(node.find(f"{{{_NS}}}Expires"))
        return cls(
            identifier=text_of(node.find(f"{{{_NS}}}Identifier")),
            source_address=text_of(node.find(f"{{{_NS}}}Source")),
            notify_to=text_of(node.find(f"{{{_NS}}}NotifyTo")),
            end_to=text_of(node.find(f"{{{_NS}}}EndTo")),
            expires=float(expires_text) if expires_text else None,
            filter_expression=text_of(node.find(f"{{{_NS}}}Filter")),
            delivery_mode=text_of(node.find(f"{{{_NS}}}DeliveryMode")),
        )


class FlatFileSubscriptionStore:
    """All subscriptions in one XML document, rewritten on every change."""

    def __init__(self, network: Network, path: str | None = None):
        self.network = network
        self.path = path
        self._ids = itertools.count(1)
        if path is None:
            self._image = serialize(element(f"{{{_NS}}}Subscriptions"))
        else:
            self._write_text(serialize(element(f"{{{_NS}}}Subscriptions")))

    # -- file I/O (virtual cost + optional real file) ---------------------------

    def _read_text(self) -> str:
        if self.path is None:
            text = self._image
        else:
            with open(self.path, "r", encoding="utf-8") as handle:
                text = handle.read()
        self.network.charge(
            self.network.costs.fs_read_per_kb * len(text) / 1024.0, "eventing.store"
        )
        return text

    def _write_text(self, text: str) -> None:
        if self.path is None:
            self._image = text
        else:
            with open(self.path, "w", encoding="utf-8") as handle:
                handle.write(text)
        self.network.charge(
            self.network.costs.fs_write_per_kb * len(text) / 1024.0, "eventing.store"
        )

    def _load_all(self) -> list[SubscriptionRecord]:
        root = parse_xml(self._read_text())
        return [SubscriptionRecord.from_xml(n) for n in root.element_children()]

    def _save_all(self, records: list[SubscriptionRecord]) -> None:
        root = element(f"{{{_NS}}}Subscriptions")
        for record in records:
            root.append(record.to_xml())
        self._write_text(serialize(root))

    # -- API -------------------------------------------------------------------

    def new_identifier(self) -> str:
        return f"uuid:sub-{next(self._ids):08d}"

    def add(self, record: SubscriptionRecord) -> None:
        records = self._load_all()
        if any(r.identifier == record.identifier for r in records):
            raise ValueError(f"duplicate subscription id: {record.identifier}")
        records.append(record)
        self._save_all(records)

    def get(self, identifier: str) -> SubscriptionRecord | None:
        for record in self._load_all():
            if record.identifier == identifier:
                return record
        return None

    def remove(self, identifier: str) -> bool:
        records = self._load_all()
        remaining = [r for r in records if r.identifier != identifier]
        if len(remaining) == len(records):
            return False
        self._save_all(remaining)
        return True

    def renew(self, identifier: str, expires: float | None) -> SubscriptionRecord | None:
        records = self._load_all()
        for index, record in enumerate(records):
            if record.identifier == identifier:
                records[index] = replace(record, expires=expires)
                self._save_all(records)
                return records[index]
        return None

    def for_source(self, source_address: str) -> list[SubscriptionRecord]:
        return [r for r in self._load_all() if r.source_address == source_address]

    def prune_expired(self, now: float) -> list[SubscriptionRecord]:
        """Drop expired subscriptions; returns what was dropped."""
        records = self._load_all()
        dead = [r for r in records if r.expired(now)]
        if dead:
            self._save_all([r for r in records if not r.expired(now)])
        return dead

    def __len__(self) -> int:
        return len(self._load_all())


class XmlDbSubscriptionStore:
    """Subscriptions as XML-database documents, one per subscription.

    The flat-file store pays a whole-file rewrite per mutation and a
    whole-file parse per read; this variant keys each record by its
    subscription identifier and declares a secondary index on the
    subscription Source, so :meth:`for_source` — the hot path of every
    event fire — is an O(hits) posting-list lookup instead of O(N).
    Drop-in API-compatible with :class:`FlatFileSubscriptionStore`.
    """

    #: Indexed path: the event-source address of each subscription record.
    SOURCE_INDEX_PATH = "//es:Source"

    def __init__(self, network: Network, collection: Collection | None = None):
        self.network = network
        self.collection = (
            collection if collection is not None else Collection("subscriptions", network)
        )
        self.collection.declare_index(self.SOURCE_INDEX_PATH, _PREFIXES)
        self._ids = itertools.count(1)

    # -- API (mirrors FlatFileSubscriptionStore) -------------------------------

    def new_identifier(self) -> str:
        return f"uuid:sub-{next(self._ids):08d}"

    def add(self, record: SubscriptionRecord) -> None:
        if self.collection.contains(record.identifier):
            raise ValueError(f"duplicate subscription id: {record.identifier}")
        self.collection.insert(record.to_xml(), record.identifier)

    def get(self, identifier: str) -> SubscriptionRecord | None:
        try:
            return SubscriptionRecord.from_xml(self.collection.read(identifier))
        except DocumentNotFound:
            return None

    def remove(self, identifier: str) -> bool:
        try:
            self.collection.delete(identifier)
        except DocumentNotFound:
            return False
        return True

    def renew(self, identifier: str, expires: float | None) -> SubscriptionRecord | None:
        record = self.get(identifier)
        if record is None:
            return None
        renewed = replace(record, expires=expires)
        self.collection.update(identifier, renewed.to_xml())
        return renewed

    def for_source(self, source_address: str) -> list[SubscriptionRecord]:
        literal = xpath_literal(source_address)
        if literal is not None:
            keys = self.collection.query_keys(
                f"{self.SOURCE_INDEX_PATH}[. = {literal}]", _PREFIXES
            )
            return [
                SubscriptionRecord.from_xml(self.collection.read(key)) for key in keys
            ]
        # Address not spellable as an XPath literal: load-and-filter fallback.
        return [r for r in self._all() if r.source_address == source_address]

    def prune_expired(self, now: float) -> list[SubscriptionRecord]:
        dead = [r for r in self._all() if r.expired(now)]
        for record in dead:
            self.collection.delete(record.identifier)
        return dead

    def __len__(self) -> int:
        return len(self.collection)

    def _all(self) -> list[SubscriptionRecord]:
        return [
            SubscriptionRecord.from_xml(doc) for _, doc in self.collection.documents()
        ]
