"""The WS-Eventing filtering facility.

A filter is an XPath predicate evaluated against a per-event wrapper
document::

    <wse:Event Topic="job/done">
      <app:JobExited>…</app:JobExited>
    </wse:Event>

so topic-style subscriptions use ``@Topic='job/done'`` and content
subscriptions reach into the payload (``JobExited[ExitCode != 0]``).
"Unlike WS-Notification, a subscription is not associated with a resource,
but only with a service.  Thus, a filter can be used for registering a
subscription per resource" — by matching on an id inside the payload.
"""

from __future__ import annotations

from repro.xmllib import element, ns
from repro.xmllib.element import XmlElement
from repro.xmllib.xpath import XPathError, compile_xpath

FILTER_DIALECT_XPATH = ns.XPATH_DIALECT


def event_wrapper(message: XmlElement, topic: str = "") -> XmlElement:
    wrapper = element(f"{{{ns.WSE}}}Event")
    if topic:
        wrapper.set("Topic", topic)
    wrapper.append(message.copy())
    return wrapper


class EventFilter:
    """A compiled filter; empty expression accepts everything."""

    def __init__(self, expression: str = "", dialect: str = FILTER_DIALECT_XPATH):
        if dialect != FILTER_DIALECT_XPATH:
            raise ValueError(f"unsupported filter dialect: {dialect}")
        self.expression = expression.strip()
        self._compiled = compile_xpath(self.expression) if self.expression else None

    def matches(self, message: XmlElement, topic: str = "") -> bool:
        if self._compiled is None:
            return True
        try:
            return self._compiled.matches(event_wrapper(message, topic))
        except XPathError:
            return False

    @staticmethod
    def topic_filter(topic: str) -> str:
        """Convenience: the expression for a topic-based subscription."""
        return f"@Topic='{topic}'"
