"""Stack B part 2: WS-Eventing (the Plumbwork Orange feature set).

Event Source (Subscribe), Subscription Manager (Renew / GetStatus /
Unsubscribe) storing its subscription list in a flat XML file, an XPath
filtering facility, push delivery over a persistent-TCP ``SoapReceiver``,
and the spec-external NotificationManager convenience for firing events —
each named in §3.2 of the paper.
"""

from repro.eventing.store import (
    FlatFileSubscriptionStore,
    SubscriptionRecord,
    XmlDbSubscriptionStore,
)
from repro.eventing.filters import EventFilter
from repro.eventing.source import EventSourceMixin, actions
from repro.eventing.manager import EventSubscriptionManagerService
from repro.eventing.notification_manager import NotificationManager
from repro.eventing.delivery import EventingConsumer

__all__ = [
    "FlatFileSubscriptionStore",
    "SubscriptionRecord",
    "XmlDbSubscriptionStore",
    "EventFilter",
    "EventSourceMixin",
    "EventSubscriptionManagerService",
    "NotificationManager",
    "EventingConsumer",
    "actions",
]
