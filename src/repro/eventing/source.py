"""The WS-Eventing event source: the Subscribe operation."""

from __future__ import annotations

from repro.addressing.epr import EndpointReference
from repro.container.service import MessageContext, web_method
from repro.eventing.filters import FILTER_DIALECT_XPATH
from repro.eventing.store import SubscriptionRecord
from repro.soap.envelope import SoapFault
from repro.wsrf.basefaults import base_fault
from repro.xmllib import QName, element, ns, text_of
from repro.xmllib.element import XmlElement

#: Reference property identifying a subscription at the manager.
SUBSCRIPTION_ID = QName(ns.WSE, "Identifier")

PUSH_MODE = ns.WSE_DELIVERY_PUSH
#: This implementation's custom extension mode ("These modes are viewed as
#: an extension point by WS-Eventing in which application-specific ways of
#: sending messages can be defined").  Events arrive wrapped in a
#: wse:Wrapper element carrying delivery metadata — and, per §2.3's warning,
#: any *other* implementation will refuse a Subscribe that requests it.
WRAP_MODE = ns.WSE_DELIVERY_WRAP


class actions:
    """Action URIs from the WS-Eventing member submission."""

    SUBSCRIBE = ns.WSE + "/Subscribe"
    RENEW = ns.WSE + "/Renew"
    GET_STATUS = ns.WSE + "/GetStatus"
    UNSUBSCRIBE = ns.WSE + "/Unsubscribe"
    SUBSCRIPTION_END = ns.WSE + "/SubscriptionEnd"


def parse_expires(text: str, now: float) -> float | None:
    """Expires is either an absolute virtual instant or empty (no expiry)."""
    text = text.strip()
    if not text or text.lower() in ("infinity", "never"):
        return None
    try:
        value = float(text)
    except ValueError:
        raise base_fault(
            f"unintelligible Expires: {text!r}",
            error_code="InvalidExpirationTimeFault",
        )
    # Inclusive boundary, same as WSRF SetTerminationTime: a lease whose
    # instant is this very tick is already dead.
    if value <= now:
        raise base_fault(
            f"Expires {value} is not in the future (now={now})",
            error_code="InvalidExpirationTimeFault",
        )
    return value


class EventSourceMixin:
    """Port type: makes a service a WS-Eventing event source.

    The hosting service must set ``self.event_subscription_manager`` to its
    :class:`~repro.eventing.manager.EventSubscriptionManagerService` ("The
    subscription manager service may be the same web service as the event
    source, or a separate service").
    """

    @web_method(actions.SUBSCRIBE)
    def wse_subscribe(self, context: MessageContext) -> XmlElement:
        body = context.body
        delivery = body.find(f"{{{ns.WSE}}}Delivery")
        if delivery is None:
            raise SoapFault("Client", "Subscribe has no Delivery element")
        mode = delivery.get("Mode", PUSH_MODE)
        if mode not in (PUSH_MODE, WRAP_MODE):
            # Delivery modes are the spec's extension point; only Push is
            # spec-defined (plus this implementation's own Wrap extension) —
            # anything else must be refused.
            raise SoapFault("Client", f"unsupported delivery mode: {mode}")
        notify_el = delivery.find(f"{{{ns.WSE}}}NotifyTo")
        if notify_el is None:
            raise SoapFault("Client", "push delivery requires NotifyTo")
        notify_to = EndpointReference.from_xml(notify_el)
        end_el = body.find(f"{{{ns.WSE}}}EndTo")
        end_to = EndpointReference.from_xml(end_el).address if end_el is not None else ""
        filter_el = body.find(f"{{{ns.WSE}}}Filter")
        filter_expression = text_of(filter_el)
        if filter_el is not None:
            dialect = filter_el.get("Dialect", FILTER_DIALECT_XPATH)
            if dialect != FILTER_DIALECT_XPATH:
                raise SoapFault("Client", f"unsupported filter dialect: {dialect}")
        now = self.network.clock.now
        expires = parse_expires(text_of(body.find(f"{{{ns.WSE}}}Expires")), now)

        manager = self.event_subscription_manager
        record = SubscriptionRecord(
            identifier=manager.store.new_identifier(),
            source_address=self.address,
            notify_to=notify_to.address,
            end_to=end_to,
            expires=expires,
            filter_expression=filter_expression,
            delivery_mode=mode,
        )
        manager.store.add(record)
        manager_epr = manager.epr({SUBSCRIPTION_ID: record.identifier})
        return element(
            f"{{{ns.WSE}}}SubscribeResponse",
            manager_epr.to_xml(f"{{{ns.WSE}}}SubscriptionManager"),
            element(f"{{{ns.WSE}}}Expires", _format_expires(expires)),
        )


def _format_expires(expires: float | None) -> str:
    return "infinity" if expires is None else repr(expires)
