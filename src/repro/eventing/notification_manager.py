"""The NotificationManager: the trigger-side convenience tool.

"The Notification Manager, which is not defined in the spec, is a
convenient tool for an event source to trigger notifications by using
operations implemented in it."  Delivery uses the push mode over the
consumer's persistent-TCP SoapReceiver (the reason WS-Eventing Notify
out-performs WSRF.NET's per-delivery HTTP server in Figures 2-4).

Delivery failures are never silent: a consumer that is gone or
unreachable (after the reliable deliverer's retries, when one is
attached) is recorded in :attr:`NotificationManager.delivery_failures`,
surfaced through :attr:`NotificationManager.on_delivery_failure`, and
its subscription is terminated the way WS-Eventing prescribes — the
record is removed and a ``wse:SubscriptionEnd`` with DeliveryFailure
status goes to the subscription's EndTo endpoint.
"""

from __future__ import annotations

from typing import Callable

from repro.eventing.filters import EventFilter
from repro.eventing.source import actions
from repro.eventing.store import FlatFileSubscriptionStore, SubscriptionRecord
from repro.sim.faults import DeliveryFault
from repro.soap.envelope import build_envelope
from repro.xmllib import element, ns
from repro.xmllib.element import XmlElement


class NotificationManager:
    """Fires events from a source service to its matching subscribers."""

    def __init__(self, store: FlatFileSubscriptionStore, deliverer=None):
        self.store = store
        #: Optional :class:`~repro.reliable.notify.ReliableNotifier`; when
        #: set, every push gets sequence numbering plus retransmission.
        self.deliverer = deliverer
        #: ``(notify_to, reason)`` per failed delivery, in firing order.
        self.delivery_failures: list[tuple[str, str]] = []
        #: Observer called with ``(record, reason)`` on each failure.
        self.on_delivery_failure: Callable[[SubscriptionRecord, str], None] | None = None

    def fire(self, source_service, message: XmlElement, topic: str = "") -> int:
        """Deliver ``message`` to every live, matching subscriber of the
        source.  Expired subscriptions are pruned (and their EndTo endpoints
        told).  Failed deliveries end the subscription per the spec.
        Returns the delivery count."""
        now = source_service.network.clock.now
        for dead in self.store.prune_expired(now):
            self._send_subscription_end(source_service, dead, "expired")
        delivered = 0
        for record in self.store.for_source(source_service.address):
            if not EventFilter(record.filter_expression).matches(message, topic):
                continue
            payload = self._payload(record, message, topic, now)
            ok, reason = self._push(source_service, record.notify_to, payload)
            if ok:
                delivered += 1
            else:
                self._delivery_failed(source_service, record, reason)
        return delivered

    def _push(
        self, source_service, destination: str, payload: XmlElement, *, action: str = "Notify"
    ) -> tuple[bool, str]:
        """One push; returns ``(ok, failure reason)``."""
        container = source_service.container
        if self.deliverer is not None:
            ok = self.deliverer.deliver(
                container.host, destination, payload, container.credentials, action=action
            )
            if ok:
                return True, ""
            dead = self.deliverer.dead_letters.for_destination(destination)
            return False, dead[-1].reason if dead else "delivery failed"
        try:
            ok = container.deployment.deliver_notification(
                container.host, destination, build_envelope([], [payload]),
                container.credentials,
            )
        except DeliveryFault as exc:
            return False, str(exc)
        if not ok:
            return False, "consumer endpoint gone"
        return True, ""

    def _delivery_failed(
        self, source_service, record: SubscriptionRecord, reason: str
    ) -> None:
        """Record the failure and end the subscription (WS-Eventing §3.5).

        The subscription is removed *before* the observer runs: a
        re-entrant observer (one that triggers another delivery) must see
        the subscription already gone, not half-dead.
        """
        self.delivery_failures.append((record.notify_to, reason))
        self.store.remove(record.identifier)
        if self.on_delivery_failure is not None:
            self.on_delivery_failure(record, reason)
        self._send_subscription_end(source_service, record, "DeliveryFailure")

    def _payload(self, record: SubscriptionRecord, message, topic: str, now: float):
        """Shape the delivered body per the subscription's delivery mode."""
        from repro.eventing.source import WRAP_MODE

        if record.delivery_mode == WRAP_MODE:
            wrapper = element(
                f"{{{ns.WSE}}}Wrapper",
                attrs={"Subscription": record.identifier, "At": repr(now)},
            )
            if topic:
                wrapper.set("Topic", topic)
            wrapper.append(message.copy())
            return wrapper
        return message.copy()

    def _send_subscription_end(self, source_service, record: SubscriptionRecord, reason: str) -> None:
        if not record.end_to:
            return
        end_message = element(
            f"{{{ns.WSE}}}SubscriptionEnd",
            element(f"{{{ns.WSE}}}Status", actions.SUBSCRIPTION_END + "/" + reason),
            element(f"{{{ns.WSE}}}Reason", reason),
        )
        # Best effort: the EndTo endpoint may share the fate of the sink
        # that just failed; its loss is recorded, not raised.
        self._push(
            source_service, record.end_to, end_message,
            action=actions.SUBSCRIPTION_END,
        )
