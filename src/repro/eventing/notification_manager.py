"""The NotificationManager: the trigger-side convenience tool.

"The Notification Manager, which is not defined in the spec, is a
convenient tool for an event source to trigger notifications by using
operations implemented in it."  Delivery uses the push mode over the
consumer's persistent-TCP SoapReceiver (the reason WS-Eventing Notify
out-performs WSRF.NET's per-delivery HTTP server in Figures 2-4).
"""

from __future__ import annotations

from repro.eventing.filters import EventFilter
from repro.eventing.source import actions
from repro.eventing.store import FlatFileSubscriptionStore, SubscriptionRecord
from repro.soap.envelope import build_envelope
from repro.xmllib import element, ns
from repro.xmllib.element import XmlElement


class NotificationManager:
    """Fires events from a source service to its matching subscribers."""

    def __init__(self, store: FlatFileSubscriptionStore):
        self.store = store

    def fire(self, source_service, message: XmlElement, topic: str = "") -> int:
        """Deliver ``message`` to every live, matching subscriber of the
        source.  Expired subscriptions are pruned (and their EndTo endpoints
        told).  Returns the delivery count."""
        deployment = source_service.container.deployment
        now = source_service.network.clock.now
        for dead in self.store.prune_expired(now):
            self._send_subscription_end(source_service, dead, "expired")
        delivered = 0
        for record in self.store.for_source(source_service.address):
            if not EventFilter(record.filter_expression).matches(message, topic):
                continue
            envelope = build_envelope([], [self._payload(record, message, topic, now)])
            if deployment.deliver_notification(
                source_service.container.host,
                record.notify_to,
                envelope,
                source_service.container.credentials,
            ):
                delivered += 1
        return delivered

    def _payload(self, record: SubscriptionRecord, message, topic: str, now: float):
        """Shape the delivered body per the subscription's delivery mode."""
        from repro.eventing.source import WRAP_MODE

        if record.delivery_mode == WRAP_MODE:
            wrapper = element(
                f"{{{ns.WSE}}}Wrapper",
                attrs={"Subscription": record.identifier, "At": repr(now)},
            )
            if topic:
                wrapper.set("Topic", topic)
            wrapper.append(message.copy())
            return wrapper
        return message.copy()

    def _send_subscription_end(self, source_service, record: SubscriptionRecord, reason: str) -> None:
        if not record.end_to:
            return
        deployment = source_service.container.deployment
        end_message = element(
            f"{{{ns.WSE}}}SubscriptionEnd",
            element(f"{{{ns.WSE}}}Status", actions.SUBSCRIPTION_END + "/" + reason),
            element(f"{{{ns.WSE}}}Reason", reason),
        )
        deployment.deliver_notification(
            source_service.container.host,
            record.end_to,
            build_envelope([], [end_message]),
            source_service.container.credentials,
        )
