"""Stack A part 2: WS-Notification.

WS-BaseNotification (Subscribe/Notify, pause/resume, subscription manager),
WS-Topics (simple/concrete/full topic expression dialects) and
WS-BrokeredNotification (broker, publisher registration, demand-based
publishing — the six-service interaction §3.1 singles out as an order of
magnitude chattier than anything else in the specs).
"""

from repro.wsn.topics import TopicDialect, topic_matches
from repro.wsn.base import (
    NotificationConsumer,
    NotificationProducerMixin,
    SubscriptionManagerService,
    actions as wsnt_actions,
)
from repro.wsn.broker import NotificationBrokerService, actions as broker_actions

__all__ = [
    "TopicDialect",
    "topic_matches",
    "NotificationConsumer",
    "NotificationProducerMixin",
    "SubscriptionManagerService",
    "NotificationBrokerService",
    "wsnt_actions",
    "broker_actions",
]
