"""WS-BrokeredNotification: intermediaries between producers and consumers.

Implements the machinery §3.1 describes at length: a broker receives
publisher registrations; for *demand-based* publishers it subscribes back to
the publisher, then pauses and resumes that upstream subscription as its own
per-topic subscriber count crosses zero — the interaction the paper counts
as touching up to six Web services and generating an order of magnitude
more messages than anything else in the specifications.
"""

from __future__ import annotations

from repro.addressing.epr import EndpointReference
from repro.container.service import MessageContext, web_method
from repro.wsn.base import (
    NotificationProducerMixin,
    SubscriptionManagerService,
    actions as wsnt_actions,
)
from repro.wsn.topics import TopicDialect, topic_matches
from repro.wsrf.basefaults import base_fault
from repro.wsrf.lifetime import ResourceLifetimeMixin
from repro.wsrf.programming import ResourceField, WsResourceService
from repro.wsrf.properties import ResourcePropertiesMixin
from repro.wsrf.resource import RESOURCE_ID
from repro.xmllib import element, ns, parse_xml, serialize, text_of
from repro.xmllib.element import XmlElement


class actions:
    """Action URIs for WS-BrokeredNotification."""

    REGISTER_PUBLISHER = ns.WSBR + "/RegisterPublisher"


class PublisherRegistrationManagerService(
    ResourcePropertiesMixin, ResourceLifetimeMixin, WsResourceService
):
    """Registrations of publishers to brokers, as WS-Resources.

    Like subscriptions, registrations have no spec-defined create — the
    broker calls in directly (§3.1's interoperability complaint again).
    """

    service_name = "PublisherRegistrationManager"
    resource_ns = ns.WSBR

    publisher_address = ResourceField(str, "")
    topic = ResourceField(str, "")
    demand = ResourceField(bool, False)
    upstream_subscription = ResourceField(str, "")  # serialized EPR XML
    upstream_paused = ResourceField(bool, False)

    def registrations(self) -> list[dict]:
        out = []
        for key in self.home.keys():
            doc = self.home.load(key)

            def field(name: str) -> str:
                return text_of(doc.find(f"{{{ns.WSRF_FIELDS}}}{name}"))

            out.append(
                {
                    "key": key,
                    "publisher_address": field("publisher_address"),
                    "topic": field("topic"),
                    "demand": field("demand") == "true",
                    "upstream_subscription": field("upstream_subscription"),
                    "upstream_paused": field("upstream_paused") == "true",
                }
            )
        return out

    def set_upstream_state(self, key: str, *, subscription_xml: str | None = None, paused: bool | None = None) -> None:
        doc = self.home.load(key)
        if subscription_xml is not None:
            node = doc.find(f"{{{ns.WSRF_FIELDS}}}upstream_subscription")
            node.children = [subscription_xml] if subscription_xml else []
        if paused is not None:
            node = doc.find(f"{{{ns.WSRF_FIELDS}}}upstream_paused")
            node.children = ["true" if paused else "false"]
        self.home.save(key, doc)


class NotificationBrokerService(NotificationProducerMixin, WsResourceService):
    """The broker: a producer to its consumers, a consumer to its publishers."""

    service_name = "NotificationBroker"
    resource_ns = ns.WSBR

    def __init__(
        self,
        home,
        subscription_manager: SubscriptionManagerService,
        registration_manager: PublisherRegistrationManagerService,
    ):
        super().__init__(home)
        self.subscription_manager = subscription_manager
        self.registration_manager = registration_manager
        subscription_manager.on_subscriptions_changed = self.recompute_demand
        self._recomputing = False

    # -- receiving from publishers ------------------------------------------------

    @web_method(wsnt_actions.NOTIFY)
    def wsnt_notify(self, context: MessageContext) -> None:
        """Re-broadcast an incoming notification to our own subscribers."""
        body = context.body
        for message_el in body.find_all(f"{{{ns.WSNT}}}NotificationMessage"):
            topic = text_of(message_el.find(f"{{{ns.WSNT}}}Topic"))
            wrapper = message_el.find(f"{{{ns.WSNT}}}Message")
            payload = next(wrapper.element_children(), None) if wrapper is not None else None
            if payload is not None:
                self.notify(topic, payload)
        return None

    # -- publisher registration ------------------------------------------------------

    @web_method(actions.REGISTER_PUBLISHER)
    def wsbr_register_publisher(self, context: MessageContext) -> XmlElement:
        body = context.body
        publisher_el = body.find_local("PublisherReference")
        if publisher_el is None:
            raise base_fault("RegisterPublisher has no PublisherReference")
        publisher = EndpointReference.from_xml(publisher_el)
        topic = text_of(body.find_local("Topic"))
        if not topic:
            raise base_fault("RegisterPublisher names no Topic")
        demand = text_of(body.find_local("Demand")) == "true"
        registration_epr = self.registration_manager.create_resource(
            publisher_address=publisher.address,
            topic=topic,
            demand=demand,
        )
        registration_key = registration_epr.property(RESOURCE_ID)
        # The broker always subscribes back so the publisher's notifications
        # reach it; *demand-based* registrations additionally pause/resume
        # that upstream subscription with the broker's own subscriber count.
        self._establish_upstream(registration_key, publisher, topic)
        if demand:
            self.recompute_demand()
        return element(
            f"{{{ns.WSBR}}}RegisterPublisherResponse",
            registration_epr.to_xml(f"{{{ns.WSBR}}}PublisherRegistrationReference"),
        )

    def _establish_upstream(
        self, registration_key: str, publisher: EndpointReference, topic: str
    ) -> None:
        """Subscribe back to a demand-based publisher on its topic."""
        client = self.container.outcall_client()
        response = client.invoke(
            publisher,
            wsnt_actions.SUBSCRIBE,
            element(
                f"{{{ns.WSNT}}}Subscribe",
                EndpointReference.create(self.address).to_xml(
                    f"{{{ns.WSNT}}}ConsumerReference"
                ),
                element(
                    f"{{{ns.WSNT}}}TopicExpression",
                    topic,
                    attrs={"Dialect": TopicDialect.CONCRETE.value},
                ),
            ),
        )
        subscription_el = response.find(f"{{{ns.WSNT}}}SubscriptionReference")
        self.registration_manager.set_upstream_state(
            registration_key, subscription_xml=serialize(subscription_el)
        )

    # -- demand-based pause/resume --------------------------------------------------

    def recompute_demand(self) -> None:
        """Pause upstream subscriptions for topics nobody is listening to.

        "If no subscriptions currently exist to the broker on a given topic,
        then all subscriptions for demand based publishers on the same topic
        must according to the spec be paused."
        """
        if self._recomputing or self.container is None:
            return
        self._recomputing = True
        try:
            consumer_views = self.subscription_manager.active_subscriptions(self.address)
            for registration in self.registration_manager.registrations():
                if not registration["demand"] or not registration["upstream_subscription"]:
                    continue
                wanted = any(
                    not view.paused
                    and topic_matches(
                        view.topic_expression or registration["topic"],
                        view.dialect,
                        registration["topic"],
                    )
                    for view in consumer_views
                )
                should_pause = not wanted
                if should_pause == registration["upstream_paused"]:
                    continue
                subscription_epr = EndpointReference.from_xml(
                    parse_xml(registration["upstream_subscription"])
                )
                action = wsnt_actions.PAUSE if should_pause else wsnt_actions.RESUME
                payload_tag = "PauseSubscription" if should_pause else "ResumeSubscription"
                client = self.container.outcall_client()
                client.invoke(
                    subscription_epr, action, element(f"{{{ns.WSNT}}}{payload_tag}")
                )
                self.registration_manager.set_upstream_state(
                    registration["key"], paused=should_pause
                )
        finally:
            self._recomputing = False
