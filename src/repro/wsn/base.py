"""WS-BaseNotification: producers, consumers, subscriptions.

Subscriptions are WS-Resources held by a :class:`SubscriptionManagerService`
("Each subscription is managed by a Subscription Manager Service (which may
be the same as the Notification Producer)").  Clients unsubscribe by
destroying the subscription through the manager (WS-ResourceLifetime
Destroy), pause and resume it via the WSN operations, and bound its life
via SetTerminationTime — all spec behaviours the paper's counter service
exercises.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.addressing.epr import EndpointReference
from repro.container.service import MessageContext, web_method
from repro.reliable.sequence import InboundDeduper
from repro.sim.faults import DeliveryFault
from repro.soap.envelope import build_envelope
from repro.wsn.topics import TopicDialect, topic_matches
from repro.wsrf.basefaults import base_fault
from repro.wsrf.lifetime import ResourceLifetimeMixin, parse_termination_time
from repro.wsrf.programming import (
    ResourceField,
    WsResourceService,
    resource_property,
)
from repro.wsrf.properties import ResourcePropertiesMixin
from repro.wsrf.resource import RESOURCE_ID, ResourceUnknownError
from repro.xmllib import element, ns, text_of
from repro.xmllib.element import XmlElement
from repro.xmllib.xpath import XPathError, compile_xpath


class actions:
    """Action URIs for WS-BaseNotification."""

    SUBSCRIBE = ns.WSNT + "/Subscribe"
    NOTIFY = ns.WSNT + "/Notify"
    PAUSE = ns.WSNT + "/PauseSubscription"
    RESUME = ns.WSNT + "/ResumeSubscription"


@dataclass(frozen=True)
class SubscriptionView:
    """A read-only snapshot of one subscription resource."""

    key: str
    consumer_address: str
    producer_address: str
    producer_resource: str
    topic_expression: str
    dialect: TopicDialect
    selector: str
    use_raw: bool
    paused: bool
    precondition: str = ""

    def selects(
        self,
        topic: str,
        message: XmlElement,
        resource_key: str | None,
        producer_properties: XmlElement | None = None,
    ) -> bool:
        if self.paused:
            return False
        if self.producer_resource and resource_key and self.producer_resource != resource_key:
            return False
        if self.topic_expression and not topic_matches(self.topic_expression, self.dialect, topic):
            return False
        if self.selector:
            try:
                if not compile_xpath(self.selector).matches(message):
                    return False
            except XPathError:
                return False
        if self.precondition:
            # §2.1: "Additional filters can be used to examine ... the
            # contents of the Notification Producer's current Resource
            # Properties."  No RP document → the precondition cannot hold.
            if producer_properties is None:
                return False
            try:
                if not compile_xpath(self.precondition).matches(producer_properties):
                    return False
            except XPathError:
                return False
        return True


class SubscriptionManagerService(
    ResourcePropertiesMixin, ResourceLifetimeMixin, WsResourceService
):
    """Holds subscription WS-Resources and the WSN pause/resume operations.

    Creation is *not* standard ("the lack of a standardized create method
    will result in idiosyncratic interfaces" — §3.1): producers call
    :meth:`add_subscription` directly, their own idiosyncratic way in.
    """

    service_name = "SubscriptionManager"
    resource_ns = ns.WSNT

    consumer_address = ResourceField(str, "")
    producer_address = ResourceField(str, "")
    producer_resource = ResourceField(str, "")
    topic_expression = ResourceField(str, "")
    dialect_uri = ResourceField(str, TopicDialect.CONCRETE.value)
    selector = ResourceField(str, "")
    precondition = ResourceField(str, "")
    use_raw = ResourceField(bool, False)
    paused = ResourceField(bool, False)

    def __init__(self, home):
        super().__init__(home)
        #: Hook fired after any subscription change (brokered demand logic).
        self.on_subscriptions_changed = None

    # -- idiosyncratic creation ------------------------------------------------

    def add_subscription(
        self,
        consumer: EndpointReference,
        producer_address: str,
        *,
        producer_resource: str = "",
        topic_expression: str = "",
        dialect: TopicDialect = TopicDialect.CONCRETE,
        selector: str = "",
        precondition: str = "",
        use_raw: bool = False,
        termination_time: float | None = None,
    ) -> EndpointReference:
        epr = self.create_resource(
            consumer_address=consumer.address,
            producer_address=producer_address,
            producer_resource=producer_resource,
            topic_expression=topic_expression,
            dialect_uri=dialect.value,
            selector=selector,
            precondition=precondition,
            use_raw=use_raw,
            paused=False,
        )
        key = epr.property(RESOURCE_ID)
        if termination_time is not None:
            self.home.set_termination_time(key, termination_time)
        self._changed()
        return epr

    # -- WSN operations -----------------------------------------------------------

    @web_method(actions.PAUSE)
    def wsnt_pause(self, context: MessageContext) -> XmlElement:
        self.current_resource
        self.paused = True
        # Persist before firing the change hook: the broker's demand logic
        # reads subscription state back from the home.
        self.save_current()
        self._changed()
        return element(f"{{{ns.WSNT}}}PauseSubscriptionResponse")

    @web_method(actions.RESUME)
    def wsnt_resume(self, context: MessageContext) -> XmlElement:
        self.current_resource
        self.paused = False
        self.save_current()
        self._changed()
        return element(f"{{{ns.WSNT}}}ResumeSubscriptionResponse")

    # -- resource properties ----------------------------------------------------

    @resource_property(f"{{{ns.WSNT}}}ConsumerReference")
    def rp_consumer(self):
        return self.consumer_address

    @resource_property(f"{{{ns.WSNT}}}TopicExpression")
    def rp_topic(self):
        return self.topic_expression

    @resource_property(f"{{{ns.WSNT}}}Paused")
    def rp_paused(self):
        return self.paused

    # -- producer-side queries ---------------------------------------------------

    def active_subscriptions(self, producer_address: str) -> list[SubscriptionView]:
        views = []
        for key in self.home.keys():
            view = self._view(key)
            if view.producer_address == producer_address:
                views.append(view)
        return views

    def _view(self, key: str) -> SubscriptionView:
        doc = self.home.load(key)

        def field(name: str) -> str:
            return text_of(doc.find(f"{{{ns.WSRF_FIELDS}}}{name}"))

        return SubscriptionView(
            key=key,
            consumer_address=field("consumer_address"),
            producer_address=field("producer_address"),
            producer_resource=field("producer_resource"),
            topic_expression=field("topic_expression"),
            dialect=TopicDialect.from_uri(field("dialect_uri")),
            selector=field("selector"),
            precondition=field("precondition"),
            use_raw=field("use_raw") == "true",
            paused=field("paused") == "true",
        )

    def after_resource_destroyed(self, key: str) -> None:
        self._changed()

    def _changed(self) -> None:
        if self.on_subscriptions_changed is not None:
            self.on_subscriptions_changed()


class NotificationProducerMixin:
    """Port type: makes a service a Notification Producer.

    The hosting service must set ``self.subscription_manager`` to its
    :class:`SubscriptionManagerService` (same container or remote).  A
    producer may declare its topic tree in ``supported_topics``; when it
    does, the tree is advertised as the WS-Topics ``TopicSet`` resource
    property and subscriptions whose expressions cannot select any declared
    topic are refused.
    """

    subscription_manager: SubscriptionManagerService
    #: Concrete topic paths this producer emits on ("" = undeclared/open).
    supported_topics: tuple[str, ...] = ()
    #: Optional :class:`~repro.reliable.notify.ReliableNotifier` for sink
    #: deliveries; out-call deliveries pick up reliability from
    #: ``deployment.reliability`` via :meth:`Container.outcall_client`.
    reliable_deliverer = None
    #: Observer called with ``(view, reason)`` when a subscriber is dropped.
    on_delivery_failure = None

    @property
    def delivery_failures(self) -> list[tuple[str, str]]:
        """``(consumer_address, reason)`` per terminated subscription."""
        return self.__dict__.setdefault("_delivery_failures", [])

    @resource_property(f"{{{ns.WSTOP}}}TopicSet")
    def rp_topic_set(self):
        if not self.supported_topics:
            return None
        node = element(f"{{{ns.WSTOP}}}TopicSet")
        for topic in self.supported_topics:
            node.append(element(f"{{{ns.WSTOP}}}Topic", topic))
        return node

    def _validate_topic_expression(
        self, expression: str, dialect: TopicDialect
    ) -> None:
        if not self.supported_topics or not expression:
            return
        if not any(
            topic_matches(expression, dialect, topic) for topic in self.supported_topics
        ):
            raise base_fault(
                f"topic expression {expression!r} selects none of this "
                f"producer's topics",
                error_code="InvalidTopicExpressionFault",
            )

    @web_method(actions.SUBSCRIBE)
    def wsnt_subscribe(self, context: MessageContext) -> XmlElement:
        body = context.body
        consumer_el = body.find_local("ConsumerReference")
        if consumer_el is None:
            raise base_fault("Subscribe has no ConsumerReference")
        consumer = EndpointReference.from_xml(consumer_el)
        topic_el = body.find_local("TopicExpression")
        topic_expression = text_of(topic_el)
        dialect = TopicDialect.CONCRETE
        if topic_el is not None and topic_el.get("Dialect"):
            try:
                dialect = TopicDialect.from_uri(topic_el.get("Dialect"))
            except ValueError as exc:
                raise base_fault(str(exc), error_code="InvalidTopicExpressionFault")
        self._validate_topic_expression(topic_expression, dialect)
        selector = text_of(body.find_local("Selector"))
        precondition = text_of(body.find_local("Precondition"))
        use_raw = text_of(body.find_local("UseRaw")) == "true"
        termination = parse_termination_time(
            text_of(body.find_local("InitialTerminationTime"))
        )
        target = context.headers.target_epr()
        subscription_epr = self.subscription_manager.add_subscription(
            consumer,
            producer_address=self.address,
            producer_resource=target.property(RESOURCE_ID) or "",
            topic_expression=topic_expression,
            dialect=dialect,
            selector=selector,
            precondition=precondition,
            use_raw=use_raw,
            termination_time=termination,
        )
        return element(
            f"{{{ns.WSNT}}}SubscribeResponse",
            subscription_epr.to_xml(f"{{{ns.WSNT}}}SubscriptionReference"),
        )

    # -- producing ---------------------------------------------------------------

    def notify(
        self, topic: str, message: XmlElement, *, resource_key: str | None = None
    ) -> int:
        """Send ``message`` on ``topic`` to every matching subscriber.

        Returns the number of deliveries made.  Consumers may be client-side
        sinks or other services (the broker subscribes as a service).
        """
        delivered = 0
        views = self.subscription_manager.active_subscriptions(self.address)
        producer_properties = None
        if any(view.precondition for view in views):
            try:
                producer_properties = self.rp_document()
            except Exception:
                producer_properties = None  # producer has no usable RP view
        for view in views:
            if not view.selects(topic, message, resource_key, producer_properties):
                continue
            if self._deliver(view, topic, message):
                delivered += 1
        return delivered

    def _deliver(self, view: SubscriptionView, topic: str, message: XmlElement) -> bool:
        if view.use_raw:
            payload = message.copy()
        else:
            payload = element(
                f"{{{ns.WSNT}}}Notify",
                element(
                    f"{{{ns.WSNT}}}NotificationMessage",
                    element(
                        f"{{{ns.WSNT}}}Topic",
                        topic,
                        attrs={"Dialect": TopicDialect.CONCRETE.value},
                    ),
                    self.epr().to_xml(f"{{{ns.WSNT}}}ProducerReference"),
                    element(f"{{{ns.WSNT}}}Message", message.copy()),
                ),
            )
        deployment = self.container.deployment
        try:
            deployment.resolve(view.consumer_address)
        except LookupError:
            return self._deliver_to_sink(view, payload)
        client = self.container.outcall_client()
        try:
            client.invoke(
                EndpointReference.create(view.consumer_address), actions.NOTIFY, payload
            )
        except DeliveryFault as exc:
            self._delivery_failed(view, str(exc))
            return False
        return True

    def _deliver_to_sink(self, view: SubscriptionView, payload: XmlElement) -> bool:
        # Thin driver: the wire leg (signing, per-kb charging, tracing
        # spans) is the deployment's notification filter chain —
        # DESIGN.md §10 — reached via deliver_notification below.
        deployment = self.container.deployment
        if self.reliable_deliverer is not None:
            ok = self.reliable_deliverer.deliver(
                self.container.host,
                view.consumer_address,
                payload,
                self.container.credentials,
                action=actions.NOTIFY,
            )
            if not ok:
                dead = self.reliable_deliverer.dead_letters.for_destination(
                    view.consumer_address
                )
                self._delivery_failed(
                    view, dead[-1].reason if dead else "delivery failed"
                )
            return ok
        envelope = build_envelope([], [payload])
        try:
            ok = deployment.deliver_notification(
                self.container.host,
                view.consumer_address,
                envelope,
                self.container.credentials,
            )
        except DeliveryFault as exc:
            self._delivery_failed(view, str(exc))
            return False
        if not ok:
            self._delivery_failed(view, "consumer endpoint gone")
        return ok

    def _delivery_failed(self, view: SubscriptionView, reason: str) -> None:
        """Terminate the subscription the WS-N way: destroy its resource.

        The failure stays observable — recorded in
        :attr:`delivery_failures` and surfaced via
        :attr:`on_delivery_failure` — rather than silently dropped.
        """
        self.delivery_failures.append((view.consumer_address, reason))
        if self.on_delivery_failure is not None:
            self.on_delivery_failure(view, reason)
        try:
            self.subscription_manager.home.destroy(view.key)
        except ResourceUnknownError:
            pass
        else:
            self.subscription_manager.after_resource_destroyed(view.key)


class NotificationConsumer:
    """Client-side notification endpoint (WSRF.NET's embedded HTTP server).

    Fronted by a WS-RM deduper: sequence-stamped deliveries from a
    reliable producer are collapsed to exactly-once; unstamped ones pass
    straight through.
    """

    def __init__(
        self, deployment, host_name: str, kind: str = "http-server",
        *, ordered: bool = False,
    ):
        self.received: list[tuple[str, XmlElement]] = []
        self._callbacks = []
        self.deduper = InboundDeduper(ordered=ordered)
        self.sink = deployment.add_sink(host_name, self._on_envelope, kind)

    @property
    def epr(self) -> EndpointReference:
        return EndpointReference.create(self.sink.address)

    @property
    def duplicates(self) -> int:
        """Redundant deliveries suppressed by the WS-RM deduper."""
        return self.deduper.duplicates

    def on_notification(self, callback) -> None:
        self._callbacks.append(callback)

    def _on_envelope(self, envelope) -> None:
        for admitted in self.deduper.admit(envelope):
            self._handle(admitted)

    def _handle(self, envelope) -> None:
        body = envelope.body_child()
        if body.tag.local == "Notify":
            for msg in body.find_all(f"{{{ns.WSNT}}}NotificationMessage"):
                topic = text_of(msg.find(f"{{{ns.WSNT}}}Topic"))
                wrapper = msg.find(f"{{{ns.WSNT}}}Message")
                payload = next(wrapper.element_children(), None) if wrapper else None
                self._record(topic, payload)
        else:  # raw delivery
            self._record("", body)

    def _record(self, topic: str, payload: XmlElement | None) -> None:
        if payload is None:
            return
        self.received.append((topic, payload))
        for callback in self._callbacks:
            callback(topic, payload)
