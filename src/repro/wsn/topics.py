"""WS-Topics: topic trees and the three expression dialects.

Topics are hierarchical, written as "/"-separated paths (``job/status/done``).
The dialects:

* **Simple** — a single root topic name; matches that root topic only.
* **Concrete** — a full path; matches exactly that topic node.
* **Full** — a path that may use ``*`` (exactly one level) and ``//``
  (any number of levels, including zero at the tail); the wildcard forms
  the paper's "wildcard expressions".
"""

from __future__ import annotations

import enum

from repro.xmllib import ns


class TopicDialect(enum.Enum):
    SIMPLE = ns.TOPIC_SIMPLE
    CONCRETE = ns.TOPIC_CONCRETE
    FULL = ns.TOPIC_FULL

    @classmethod
    def from_uri(cls, uri: str) -> "TopicDialect":
        for dialect in cls:
            if dialect.value == uri:
                return dialect
        raise ValueError(f"unknown topic dialect: {uri}")


def _segments(path: str) -> list[str]:
    return [seg for seg in path.strip().strip("/").split("/") if seg]


def topic_matches(expression: str, dialect: TopicDialect, topic: str) -> bool:
    """Does ``expression`` (in ``dialect``) select ``topic`` (a concrete path)?"""
    topic_segments = _segments(topic)
    if not topic_segments:
        return False
    if dialect is TopicDialect.SIMPLE:
        expr_segments = _segments(expression)
        return len(expr_segments) == 1 and topic_segments[0] == expr_segments[0] and len(topic_segments) == 1
    if dialect is TopicDialect.CONCRETE:
        return _segments(expression) == topic_segments
    return _match_full(expression, topic_segments)


def _match_full(expression: str, topic: list[str]) -> bool:
    # Translate the Full dialect into a segment pattern: "//" becomes a
    # match-any-depth marker.
    pattern: list[str] = []
    expr = expression.strip()
    if expr.startswith("//"):
        pattern.append("**")
        expr = expr[2:]
    while expr:
        if expr.startswith("/"):
            if expr.startswith("//"):
                pattern.append("**")
                expr = expr[2:]
                continue
            expr = expr[1:]
            continue
        end_slash = expr.find("/")
        seg = expr if end_slash < 0 else expr[:end_slash]
        pattern.append(seg)
        expr = "" if end_slash < 0 else expr[end_slash:]
    return _match_segments(pattern, topic)


def _match_segments(pattern: list[str], topic: list[str]) -> bool:
    if not pattern:
        return not topic
    head, rest = pattern[0], pattern[1:]
    if head == "**":
        # Zero or more levels.
        for skip in range(len(topic) + 1):
            if _match_segments(rest, topic[skip:]):
                return True
        return False
    if not topic:
        return False
    if head == "*" or head == topic[0]:
        return _match_segments(rest, topic[1:])
    return False
