"""Quickstart: the "hello world" counter service on the WSRF stack.

Builds a one-host deployment, creates a counter WS-Resource, manipulates it
through the WS-ResourceProperties operations, subscribes to the
CounterValueChanged topic and watches a notification arrive — all on the
simulated 2005-era testbed, so the timings printed are virtual milliseconds.

Run:  python examples/quickstart.py
"""

from repro.apps.counter import CounterScenario, build_wsrf_rig
from repro.container import SecurityMode


def main() -> None:
    # A scenario fixes security policy and placement; this is the paper's
    # "no security, client and service on different machines" cell.
    scenario = CounterScenario(mode=SecurityMode.NONE, colocated=False)
    rig = build_wsrf_rig(scenario)
    clock = rig.deployment.network.clock

    print(f"deployed WSRF counter service at {rig.service.address}")

    counter = rig.client.create(initial=5)
    print(f"created counter resource; EPR reference properties: "
          f"{dict((k.local, v) for k, v in counter.reference_properties)}")

    print(f"value via GetResourceProperty: {rig.client.get(counter)}")

    rig.client.subscribe(counter, rig.consumer)
    print("subscribed to CounterValueChanged")

    t0 = clock.now
    rig.client.set(counter, 42)
    print(f"set value to 42 (took {clock.now - t0:.1f} virtual ms incl. notification)")

    topic, payload = rig.consumer.received[0]
    print(f"notification on topic {topic!r}: new value = "
          f"{payload.find_local('NewValue').text()}")

    rig.client.destroy(counter)
    print("destroyed the resource via WS-ResourceLifetime")
    try:
        rig.client.get(counter)
    except Exception as exc:
        print(f"as expected, the resource is gone: {exc}")


if __name__ == "__main__":
    main()
