"""Grid-in-a-Box on WS-Transfer/WS-Eventing: everything is CRUD.

The same workflow as grid_job_wsrf.py, but every interaction maps onto
Create/Get/Put/Delete and the *shape of the EPR* selects behaviour: a
reservation is a Put to ``R<site>``, an availability query a Get of
``1<app>``, a file lives at ``<hash-of-DN>/<name>``.  Completion arrives as
a WS-Eventing push over the persistent-TCP SoapReceiver, and — with no
lifetime management in the spec — the client must unreserve explicitly.

Run:  python examples/grid_job_transfer.py
"""

from repro.apps.giab import build_transfer_vo
from repro.apps.giab.jobs import JobSpec


def main() -> None:
    vo = build_transfer_vo()
    clock = vo.deployment.network.clock
    print(f"VO user: {vo.user_dn}")

    # Get with EPR "1sort" → available-resources query.
    sites = vo.client.get_available_resources("sort")
    print(f"sites offering 'sort': {[s['host'] for s in sites]}")
    site = sites[0]

    # Put with EPR "R<site>" → make reservation (account checked via Get
    # against the Account service, whose resource key is the user's DN).
    vo.client.make_reservation(site["host"])
    print(f"reserved {site['host']}; holder = {vo.client.reservation_holder(site['host'])}")

    # Create on the Data service → upload; the returned EPR is DN-hash/name.
    file_epr = vo.client.upload_file(site["data_address"], "input.dat", "7 3 9 1 4\n" * 1000)
    print(f"uploaded; file EPR key = "
          f"{[v for _, v in file_epr.reference_properties][0]}")
    print(f"directory listing (Get on EPR ending '/'): {vo.client.list_files(site['data_address'])}")

    # Create on the Exec service → instantiate the job.
    job = vo.client.start_job(
        site["exec_address"], JobSpec("sort", ("input.dat",), run_time_ms=1500.0)
    )
    vo.client.subscribe_job_exit(site["exec_address"], job, vo.consumer)
    print(f"job created; status (Get) = {vo.client.job_status(job)}")

    clock.charge(2000)
    event = vo.consumer.received[0]
    print(f"WS-Eventing push received: {event.tag.local}, "
          f"exit code {event.find_local('ExitCode').text()}")

    # Cleanup is all manual on this stack: Delete the file, Put-U the site.
    vo.client.delete_file(site["data_address"], "input.dat")
    vo.client.unreserve(site["host"])
    print(f"after manual unreserve, available again: "
          f"{[s['host'] for s in vo.client.get_available_resources('sort')]}")
    print(f"total virtual time elapsed: {clock.now:.0f} ms")


if __name__ == "__main__":
    main()
