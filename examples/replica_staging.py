"""Replica staging: one service declaration, two stacks, zero forked logic.

Walks the declared ReplicaCatalog + DataTransfer pair (repro.apps.datagrid)
through an EU-DataGrid-flavoured flow — register replicas of a logical
file, replicate it to a new storage element from the cheapest source, then
stage a working copy in for a job — and runs the *same* steps on the WSRF
stack and the WS-Transfer stack.  Both services are single ServiceDecl
objects: the WSRF binding exposes one app-namespace action per operation,
the WS-Transfer binding maps them onto CRUD verbs with explicit resource
keys, and the nearest-replica decision lives in one shared logic layer,
which is why the two stacks always pick the same source.

Run:  python examples/replica_staging.py
"""

from repro.apps.datagrid import DatagridScenario, build_datagrid, site_of
from repro.container import SecurityMode


def stage_on(stack: str) -> None:
    scenario = DatagridScenario(mode=SecurityMode.X509, colocated=False)
    rig = build_datagrid(stack, scenario)
    clock = rig.deployment.network.clock
    metrics = rig.deployment.network.metrics

    print(f"[{stack}] catalog at {rig.catalog_service.address}")
    print(f"[{stack}] transfer at {rig.transfer_service.address}")

    # The experiment's dataset starts with two copies: one at CERN, one
    # across the WAN at FNAL.
    rig.catalog.register_replica("lfn:run42/events", "se1.cern")
    rig.catalog.register_replica("lfn:run42/events", "se1.fnal")
    print(f"[{stack}] replicas: {rig.catalog.locate_replicas('lfn:run42/events')}")

    # Replicate to a second CERN storage element: the shared logic picks
    # the LAN source (40 virtual ms) over the WAN one (400 virtual ms).
    t0 = clock.now
    source = rig.transfer.replicate("lfn:run42/events", "se2.cern")
    print(f"[{stack}] replicated to se2.cern from {source} "
          f"({site_of(source)} LAN, {clock.now - t0:.1f} virtual ms incl. wire)")

    # Stage a working copy in for a job at FNAL: the same-site replica
    # wins, and the catalog is left untouched.
    source = rig.transfer.stage_in("lfn:run42/events", "se2.fnal")
    print(f"[{stack}] staged into se2.fnal from {source}")
    print(f"[{stack}] catalog still lists: "
          f"{rig.catalog.locate_replicas('lfn:run42/events')}")
    print(f"[{stack}] link time charged: "
          f"{metrics.time_by_category['link']:.0f} virtual ms")

    # Business rules fault identically on both wires (one LogicError,
    # rendered as a WS-BaseFault here and a bare SOAP fault there).
    try:
        rig.transfer.replicate("lfn:run42/events", "se2.cern")
    except Exception as exc:
        print(f"[{stack}] as expected, duplicate replication faults: {exc}")


def main() -> None:
    for stack in ("wsrf", "transfer"):
        stage_on(stack)
        print()


if __name__ == "__main__":
    main()
