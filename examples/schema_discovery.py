"""Fixing WS-Transfer's schema hole with WS-MetadataExchange + WSDL proxies.

§3.2: "Our prototyping of services/clients based on our WS-Transfer
implementation relied on hard-coding of common schemas within the client and
service.  We determined no elegant mechanism by which the client could
easily discover the schemas (although emerging specifications like
WS-MetadataExchange do seem promising)."

This example builds the promising path: a WS-Transfer counter service that
advertises its representation schema; a client that discovers it via
mex:GetMetadata, fetches the WSDL, generates a proxy from it, and validates
representations *before* sending — catching a malformed document that the
hard-coded-schema world would have discovered as a runtime surprise.

Run:  python examples/schema_discovery.py
"""

from repro.apps.counter import CounterScenario, build_transfer_rig
from repro.apps.counter.transfer_service import counter_representation
from repro.metadata import DIALECT_SCHEMA, MetadataExchangeMixin, fetch_metadata
from repro.metadata.exchange import DIALECT_WSDL
from repro.wsdl import generate_proxy
from repro.xmllib import ElementSpec, QName, SchemaError, element, ns


def main() -> None:
    rig = build_transfer_rig(CounterScenario())

    # The service author opts into metadata exchange and publishes the
    # Counter representation schema.
    service = rig.service
    service.__class__ = type("MexCounter", (MetadataExchangeMixin, type(service)), {})
    service._operations[ns.MEX + "/GetMetadata"] = service.mex_get_metadata
    service.advertise_schema(
        ElementSpec(
            tag=QName(ns.COUNTER, "Counter"),
            children={
                QName(ns.COUNTER, "Value"): (
                    ElementSpec(QName(ns.COUNTER, "Value"), text_type="int"), 1, 1
                )
            },
        )
    )
    print(f"service deployed at {service.address} (with mex:GetMetadata)")

    # 1. Discover the representation schema — no hard-coding.
    metadata = fetch_metadata(rig.client.soap, service.address, DIALECT_SCHEMA)
    spec = metadata.schema_for(QName(ns.COUNTER, "Counter"))
    print(f"discovered schema for {spec.tag.clark()} "
          f"({len(spec.children)} child element(s))")

    # 2. Fetch the WSDL and generate a proxy from it.
    contract = fetch_metadata(rig.client.soap, service.address, DIALECT_WSDL).wsdl
    proxy = generate_proxy(contract)(rig.client.soap, contract)
    print(f"generated proxy with operations: "
          f"{sorted(m for m in dir(proxy) if not m.startswith('_'))}")

    # 3. Use the discovered schema to validate before sending.
    good = counter_representation(41)
    spec.validate(good)
    response = proxy.create(element(f"{{{ns.WXF}}}Create", good))
    print("valid representation accepted by Create")

    bad = element(f"{{{ns.COUNTER}}}Counter", element(f"{{{ns.COUNTER}}}Value", "forty-one"))
    try:
        spec.validate(bad)
    except SchemaError as exc:
        print(f"malformed representation caught client-side: {exc}")

    print()
    print("without discovery (the paper's world), that document would have")
    print("travelled to the service and failed there — or worse, been stored.")


if __name__ == "__main__":
    main()
