"""Demand-based brokered notification: the six-service interaction of §3.1.

A publisher registers with a broker as *demand-based*; the broker subscribes
back and keeps that upstream subscription paused while nobody listens.  The
example traces each state change and finally prints the message-count
comparison behind the paper's "order of magnitude more messages" estimate.

Run:  python examples/brokered_notification.py
"""

from repro.addressing import EndpointReference
from repro.container import Deployment, SecurityPolicy, SoapClient
from repro.crypto import CertificateAuthority
from repro.wsn import (
    NotificationBrokerService,
    NotificationConsumer,
    SubscriptionManagerService,
)
from repro.wsn.base import actions as wsnt
from repro.wsn.broker import PublisherRegistrationManagerService, actions as wsbr
from repro.wsn.topics import TopicDialect
from repro.wsrf import ResourceHome
from repro.wsrf.lifetime import actions as rl
from repro.xmllib import element, ns

# Reuse the sensor service from the test suite's WSN fixtures — it is the
# minimal notification producer.
import sys, os
sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
from tests.wsn.conftest import EMIT, NS, SensorService  # noqa: E402


def main() -> None:
    ca = CertificateAuthority.create(seed=7)
    deployment = Deployment(SecurityPolicy(), ca=ca)
    net = deployment.network

    pub_container = deployment.add_container("pubhost", "Pub")
    pub_manager = SubscriptionManagerService(ResourceHome("pub-subs", net))
    pub_container.add_service(pub_manager)
    publisher = SensorService(ResourceHome("pub-sensor", net))
    publisher.subscription_manager = pub_manager
    pub_container.add_service(publisher)

    broker_container = deployment.add_container("brokerhost", "Broker")
    broker_manager = SubscriptionManagerService(ResourceHome("broker-subs", net))
    broker_container.add_service(broker_manager)
    registrations = PublisherRegistrationManagerService(ResourceHome("registrations", net))
    broker_container.add_service(registrations)
    broker = NotificationBrokerService(ResourceHome("broker", net), broker_manager, registrations)
    broker_container.add_service(broker)

    client = SoapClient(deployment, "client")
    consumer = NotificationConsumer(deployment, "client")

    def publish(value: str) -> int:
        response = client.invoke(
            publisher.epr(), EMIT,
            element(f"{{{NS}}}Emit", element(f"{{{NS}}}Topic", "readings"),
                    element(f"{{{NS}}}Value", value)),
        )
        return int(response.text())

    net.metrics.begin("demand scenario", net.clock.now)

    print("1. publisher registers with the broker, Demand=true")
    client.invoke(
        broker.epr(), wsbr.REGISTER_PUBLISHER,
        element(
            f"{{{ns.WSBR}}}RegisterPublisher",
            EndpointReference.create(publisher.address).to_xml(f"{{{ns.WSBR}}}PublisherReference"),
            element(f"{{{ns.WSBR}}}Topic", "readings"),
            element(f"{{{ns.WSBR}}}Demand", "true"),
        ),
    )
    print(f"   publisher emits while nobody listens -> {publish('1')} deliveries "
          "(upstream paused)")

    print("2. a consumer subscribes at the broker -> broker resumes upstream")
    response = client.invoke(
        broker.epr(), wsnt.SUBSCRIBE,
        element(
            f"{{{ns.WSNT}}}Subscribe",
            consumer.epr.to_xml(f"{{{ns.WSNT}}}ConsumerReference"),
            element(f"{{{ns.WSNT}}}TopicExpression", "readings",
                    attrs={"Dialect": TopicDialect.CONCRETE.value}),
        ),
    )
    subscription = EndpointReference.from_xml(next(response.element_children()))
    print(f"   publisher emits -> {publish('2')} delivery to the broker; "
          f"consumer received {len(consumer.received)} message(s)")

    print("3. consumer unsubscribes -> broker pauses upstream again")
    client.invoke(subscription, rl.DESTROY, element(f"{{{ns.WSRF_RL}}}Destroy"))
    print(f"   publisher emits -> {publish('3')} deliveries")

    trace = net.metrics.end(net.clock.now)
    print()
    print(f"whole scenario: {trace.messages} messages across "
          f"{len(trace.services_touched)} wire endpoints, {trace.elapsed_ms:.0f} virtual ms")
    print("compare a plain subscribe: 2 messages, one service — the paper's")
    print("'order of magnitude more messages' estimate for demand-based publishing.")


if __name__ == "__main__":
    main()
