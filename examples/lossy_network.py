"""Reliable messaging over a lossy wire.

The paper's testbed was a perfect LAN; real OGSA deployments were not.
This example makes the simulated wire imperfect — 10% loss, duplication,
connection resets, jittered delay — and shows the WS-ReliableMessaging
layer (`repro.reliable`) carrying the WSRF counter's requests and
notifications across it anyway: retransmission with exponential backoff,
duplicate suppression at the consumer, and a dead-letter record for the
deliveries that could not be saved.

Everything is deterministic: faults are drawn from the clock's seeded
RNG, so this script prints the same numbers on every run.

Run:  python examples/lossy_network.py
"""

from repro.apps.counter import CounterScenario, build_wsrf_rig
from repro.container import SecurityMode
from repro.reliable import RetryPolicy
from repro.sim import FaultSpec, Host
from repro.xmllib import element

SETS = 25


def main() -> None:
    policy = RetryPolicy(max_attempts=4, base_backoff_ms=20.0, jitter_ms=4.0)
    scenario = CounterScenario(
        mode=SecurityMode.NONE, colocated=False, reliability=policy
    )
    rig = build_wsrf_rig(scenario)
    clock = rig.deployment.network.clock
    faults = rig.deployment.network.faults

    counter = rig.client.create(initial=0)
    rig.client.subscribe(counter, rig.consumer)
    print(f"WSRF counter at {rig.service.address}, consumer subscribed; "
          f"retry policy: {policy.max_attempts} attempts, "
          f"{policy.base_backoff_ms:.0f}ms backoff x{policy.multiplier:.0f}")

    t0 = clock.now
    for value in range(SETS):
        rig.client.set(counter, value)
    clean_ms = clock.now - t0
    print(f"\nclean wire:  {SETS} sets + notifications in {clean_ms:.1f} virtual ms")

    # Now break the wire: FaultSpec.lossy(0.10) is 10% loss, 5%
    # duplication, 2.5% connection resets and 2±1 ms added delay.
    faults.set_default(FaultSpec.lossy(0.10))
    t0 = clock.now
    for value in range(SETS, 2 * SETS):
        rig.client.set(counter, value)
    lossy_ms = clock.now - t0
    print(f"10% loss:    {SETS} sets + notifications in {lossy_ms:.1f} virtual ms "
          f"({lossy_ms / clean_ms:.2f}x the clean wire)")

    print(f"\nwire mischief injected: {faults.messages_lost} lost, "
          f"{faults.messages_duplicated} duplicated, "
          f"{faults.connections_reset} connections reset")

    channel = rig.client.soap  # the ReliableChannel wrapping the SoapClient
    print(f"request path:      {channel.delivered} invokes delivered, "
          f"{channel.retransmissions} retransmissions "
          f"(server reply cache kept execution exactly-once)")

    notifier = rig.service.reliable_deliverer
    print(f"notification path: {notifier.delivered} delivered, "
          f"{notifier.retransmissions} retransmissions; consumer saw "
          f"{len(rig.consumer.received)} notifications and suppressed "
          f"{rig.consumer.duplicates} duplicates")

    # The accounting invariant: nothing is silently lost.
    assert notifier.delivered + notifier.dead_lettered == notifier.assigned
    print(f"ledger closes: {notifier.delivered} delivered "
          f"+ {notifier.dead_lettered} dead-lettered "
          f"== {notifier.assigned} assigned message numbers")

    # When retries cannot save a delivery — here, a sink that no longer
    # exists — the failure ends in the dead-letter log, not in silence.
    notifier.deliver(
        Host("opteron1"), "soap.tcp://ghost:9999/sink",
        element("{urn:example}Orphan", "nobody home"),
    )
    record = notifier.dead_letters.for_destination("soap.tcp://ghost:9999/sink")[-1]
    print(f"\ndead-lettered delivery to a vanished consumer: "
          f"seq={record.sequence} msg#{record.message_number} "
          f"after {record.attempts} attempt(s): {record.reason}")


if __name__ == "__main__":
    main()
