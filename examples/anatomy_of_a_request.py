"""Anatomy of one signed request: where the milliseconds go.

Runs a single X.509-signed counter Get and prints the per-category
virtual-time breakdown the metrics recorder captured — making the paper's
"dominated by X509 processing" claim visible line by line, and the same for
an unsigned request as contrast.  Then re-slices the same request the
other way: the filter pipeline's span tree (DESIGN.md §10), which shows
*where in the message path* those categories were charged.

Run:  python examples/anatomy_of_a_request.py
"""

from repro.apps.counter import CounterScenario, build_wsrf_rig
from repro.bench.report import format_span_tree
from repro.bench.runner import measure_virtual
from repro.container import SecurityMode


def breakdown(mode: SecurityMode) -> None:
    rig = build_wsrf_rig(CounterScenario(mode=mode, colocated=False))
    counter = rig.client.create(5)
    rig.client.get(counter)  # warm connections
    trace = measure_virtual(rig.deployment, "Get", lambda: rig.client.get(counter))

    print(f"one counter Get, {mode.value} mode — {trace.elapsed_ms:.1f} virtual ms total")
    print(f"  messages: {trace.messages}, bytes on wire: {trace.bytes_on_wire}, "
          f"signatures: {trace.signatures}, verifications: {trace.verifications}, "
          f"db ops: {trace.db_ops}")
    for category, ms in sorted(trace.time_by_category.items(), key=lambda kv: -kv[1]):
        share = 100 * ms / trace.elapsed_ms
        print(f"  {category:18s} {ms:8.2f} ms  ({share:4.1f}%) {'#' * int(share / 2)}")
    print()


def span_tree(mode: SecurityMode) -> None:
    """The same request sliced by pipeline stage instead of cost category."""
    rig = build_wsrf_rig(CounterScenario(mode=mode, colocated=False))
    counter = rig.client.create(5)
    rig.client.get(counter)  # warm connections
    tracer = rig.deployment.network.metrics.tracer
    tracer.clear()
    rig.client.get(counter)
    print(f"the same Get as a span tree ({mode.value} mode):")
    print(format_span_tree(tracer.last_root()))
    print()


def main() -> None:
    breakdown(SecurityMode.NONE)
    breakdown(SecurityMode.X509)
    span_tree(SecurityMode.X509)
    print("the paper, §5: 'Is one spec/implementation faster? No. The")
    print("performance numbers ... are comparable (and actually dominated by")
    print("X509 processing).'  The bars above are that sentence, measured.")


if __name__ == "__main__":
    main()
