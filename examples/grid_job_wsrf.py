"""Grid-in-a-Box on WSRF/WS-Notification: the full Figure 5 workflow.

A grid user discovers resources, reserves a host, stages input data into a
directory WS-Resource, starts a job (which claims the reservation by
lengthening its lifetime), and receives an asynchronous WS-Notification —
containing the job's EPR — when it exits.  The reservation is destroyed
automatically.

Run:  python examples/grid_job_wsrf.py
"""

from repro.apps.giab import build_wsrf_vo
from repro.apps.giab.jobs import JobSpec


def main() -> None:
    vo = build_wsrf_vo()  # X.509-signed VO: accounts + hosts pre-registered
    clock = vo.deployment.network.clock
    print(f"VO user: {vo.user_dn}")

    # 1. What resources are available for my application?
    sites = vo.client.get_available_resources("sort")
    print(f"hosts offering 'sort': {[s['host'] for s in sites]}")
    site = sites[0]

    # 5. Reserve resources (ReservationService checks the VO account).
    reservation = vo.client.make_reservation(site["host"])
    print(f"reserved {site['host']}")

    # 7. Create a data resource and stage input in.
    directory = vo.client.create_data_directory(site["data_address"])
    vo.client.upload_file(directory, "input.dat", "7 3 9 1 4\n" * 1000)
    print(f"staged input.dat; directory now holds {vo.client.list_files(directory)}")

    # 9. Start the application (ExecService verifies + claims the
    # reservation, resolves the working directory, spawns the process).
    job = vo.client.start_job(
        site["exec_address"], reservation, directory,
        JobSpec("sort", ("input.dat",), run_time_ms=1500.0, exit_code=0),
    )
    vo.client.subscribe_job_exit(job, vo.consumer)
    print(f"job started; status = {vo.client.job_status(job)}")

    # 11. Async notification when done.
    clock.charge(2000)
    topic, payload = vo.consumer.received[0]
    print(f"notification on {topic!r}: exit code "
          f"{payload.find_local('ExitCode').text()} "
          f"(message carries the job EPR: {payload.find_local('JobEPR') is not None})")

    # Survey output via the DataService's dynamic FileList RP, then clean up.
    print(f"job output directory: {vo.client.list_files(directory)}")
    vo.client.destroy(directory)

    # The reservation was claimed and auto-destroyed on job exit:
    sites = vo.client.get_available_resources("sort")
    print(f"after completion, available again: {[s['host'] for s in sites]}")
    print(f"total virtual time elapsed: {clock.now:.0f} ms")


if __name__ == "__main__":
    main()
