"""The paper's Figure 5 as a live message sequence.

Enables the wire log, runs the complete WSRF Grid-in-a-Box job flow, and
prints every message the deployment exchanged — client calls, server
out-calls, and the closing notification — annotated with virtual time and
bytes.  This is the observable form of the paper's "number of web service
outcalls" analysis.

Run:  python examples/figure5_sequence.py
"""

from repro.apps.giab import build_wsrf_vo
from repro.apps.giab.jobs import JobSpec


def short(address: str) -> str:
    return address.replace("soap://", "")


def main() -> None:
    vo = build_wsrf_vo()
    metrics = vo.deployment.network.metrics
    metrics.wire_log_enabled = True

    site = vo.client.get_available_resources("sort")[0]
    reservation = vo.client.make_reservation(site["host"])
    directory = vo.client.create_data_directory(site["data_address"])
    vo.client.upload_file(directory, "input.dat", "data " * 200)
    job = vo.client.start_job(
        site["exec_address"], reservation, directory,
        JobSpec("sort", ("input.dat",), 800.0, output_files=("output.dat",)),
    )
    vo.client.subscribe_job_exit(job, vo.consumer)
    vo.deployment.network.clock.charge(1000)  # job runs, exits, notifies

    print("message sequence (virtual ms | kind | from -> to | action | bytes)")
    print("-" * 78)
    for entry in metrics.wire_log:
        action_tail = entry.action.rstrip("/").rsplit("/", 1)[-1]
        print(
            f"{entry.at:9.1f} | {entry.kind:8s} | "
            f"{short(entry.source):28s} -> {short(entry.target):34s} | "
            f"{action_tail:28s} | {entry.n_bytes}"
        )
    requests = [e for e in metrics.wire_log if e.kind == "request"]
    outcalls = [e for e in requests if not e.source.startswith("workstation")]
    print("-" * 78)
    print(f"{len(requests)} requests total, of which {len(outcalls)} are server "
          f"out-calls — the quantity the paper says dictates Figure 6.")


if __name__ == "__main__":
    main()
