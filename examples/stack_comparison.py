"""Reproduce the paper's headline comparison at the terminal.

Prints Figure 2 (no security), Figure 4 (X.509) and Figure 6
(Grid-in-a-Box) as tables and ASCII bar charts, then states the paper's
§5 conclusions as checks against the fresh numbers.

Run:  python examples/stack_comparison.py
"""

from repro.bench import (
    format_bar_chart,
    format_figure_table,
    hello_world_figure,
    measure_giab,
)
from repro.container import SecurityMode


def main() -> None:
    fig2 = hello_world_figure(SecurityMode.NONE)
    print(format_figure_table("Figure 2: Hello World, no security", fig2))
    print()

    fig4 = hello_world_figure(SecurityMode.X509)
    print(format_figure_table("Figure 4: Hello World, X.509 signing", fig4))
    print()

    wsrf = measure_giab("wsrf")
    wxf = measure_giab("transfer")
    fig6 = {"WS-Transfer / WS-Eventing": wxf, "WSRF.NET": wsrf}
    print(format_figure_table("Figure 6: Grid-in-a-Box comparison", fig6))
    print()
    print(format_bar_chart(
        "Instantiate Job (the out-call story)",
        {
            "WS-Transfer": wxf["Instantiate Job"],
            "WSRF.NET": wsrf["Instantiate Job"],
        },
    ))
    print()

    # §5: "Is one spec/implementation faster? No. ... (and actually
    # dominated by X509 processing)"
    co_wsrf, co_wxf = fig2["Co-located WSRF.NET"], fig2["Co-located WS-Transfer / WS-Eventing"]
    crud_gap = max(
        max(co_wsrf[op], co_wxf[op]) / min(co_wsrf[op], co_wxf[op])
        for op in ("Get", "Set", "Create", "Destroy")
    )
    x509_factor = fig4["Co-located WSRF.NET"]["Get"] / co_wsrf["Get"]
    print("paper's conclusions, re-checked on this run:")
    print(f"  * stacks comparable on CRUD (worst-case ratio {crud_gap:.2f}x)  -> "
          f"{'HOLDS' if crud_gap < 2.5 else 'VIOLATED'}")
    print(f"  * X.509 dominates (Get slows {x509_factor:.1f}x under signing) -> "
          f"{'HOLDS' if x509_factor > 3 else 'VIOLATED'}")
    notify_ratio = co_wsrf["Notify"] / co_wxf["Notify"]
    print(f"  * WS-Eventing notify faster, TCP vs HTTP ({notify_ratio:.2f}x)   -> "
          f"{'HOLDS' if notify_ratio > 1.2 else 'VIOLATED'}")
    job_ratio = wsrf["Instantiate Job"] / wxf["Instantiate Job"]
    print(f"  * WSRF job instantiation pays for its out-calls ({job_ratio:.2f}x) -> "
          f"{'HOLDS' if job_ratio > 1.4 else 'VIOLATED'}")
    print(f"  * un-reserve automatic on WSRF (reported {wsrf['Unreserve Resource']:.0f} ms) -> "
          f"{'HOLDS' if wsrf['Unreserve Resource'] == 0 else 'VIOLATED'}")


if __name__ == "__main__":
    main()
