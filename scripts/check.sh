#!/bin/sh
# The CI gate, tox-free: tier-1 tests + repro-lint in one command.
#
#   scripts/check.sh              # run everything
#   scripts/check.sh tests/sim    # pass extra args through to pytest
#
# Exits non-zero if either the test suite or the linter fails.

set -eu

cd "$(dirname "$0")/.."

PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}
export PYTHONPATH

status=0

echo "== tier-1 tests =="
python -m pytest -q "$@" || status=1

echo "== repro-lint =="
python -m repro.analysis || status=1

echo "== bench smoke =="
python -m repro hello || status=1

echo "== xmldb smoke =="
python -m repro xmldb || status=1

exit $status
