#!/bin/sh
# The CI gate, tox-free: tier-1 tests + repro-lint in one command.
#
#   scripts/check.sh              # run everything
#   scripts/check.sh --soak      # also run the large conformance sweeps
#   scripts/check.sh --lint-only # just repro-lint + the report gate (pre-commit)
#   scripts/check.sh tests/sim   # pass extra args through to pytest
#
# Exits non-zero if any stage fails.

set -eu

cd "$(dirname "$0")/.."

PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH}
export PYTHONPATH

soak=0
lint_only=0
if [ "${1:-}" = "--soak" ]; then
    soak=1
    shift
elif [ "${1:-}" = "--lint-only" ]; then
    lint_only=1
    shift
fi

status=0

if [ "$lint_only" = 1 ]; then
    echo "== repro-lint (report gate) =="
    python -m repro.analysis --fail-on-new results/lint_report.json || status=1
    exit $status
fi

echo "== tier-1 tests =="
python -m pytest -q "$@" || status=1

if [ "$soak" = 1 ]; then
    echo "== soak tests =="
    python -m pytest -q -m soak "$@" || status=1
fi

echo "== repro-lint =="
# Any finding not in the committed report (even a baselined one) fails;
# regenerate with: python -m repro.analysis --format json --out results/lint_report.json
python -m repro.analysis --fail-on-new results/lint_report.json || status=1

echo "== conformance =="
if [ "$soak" = 1 ]; then
    python -m repro conformance --seeds 300 --giab-seeds 12 || status=1
else
    python -m repro conformance || status=1
fi

echo "== bench smoke =="
python -m repro hello || status=1

echo "== xmldb smoke =="
python -m repro xmldb || status=1

echo "== loadgen smoke =="
# Fixed seed, both stacks, run twice inside the command: fails unless the
# kernel's concurrent schedule reproduces identical percentiles.
python -m repro loadgen --smoke || status=1

echo "== datagrid smoke =="
# The layered-services gate: the fixed staging workload must be
# deterministic and both stacks must pick identical replica sources.
python -m repro datagrid --smoke || status=1

echo "== msgperf smoke =="
# The message-path caching gate: cached must beat uncached and virtual
# costs must be identical in both modes (asserted inside the run).
python -m repro msgperf --smoke || status=1

echo "== experiments smoke =="
# Re-run the smoke subset of the declarative experiment grid and gate it
# against the committed records in results/experiments/.
python -m repro experiments --smoke || status=1

echo "== experiments regression gate =="
# Re-measure experiment grids and compare against the committed records:
# exact-gate specs must match bit-identically (ordering flips, invariant
# violations and >tolerance drift all fail); shape-gate specs (msgperf,
# wall-clock) are checked structurally.  --check-docs additionally fails
# when EXPERIMENTS.md is stale; regenerate with:
#   python -m repro experiments --run all && python -m repro experiments --docs
if [ "$soak" = 1 ]; then
    python -m repro experiments --soak --check-docs || status=1
else
    python -m repro experiments --check datagrid loadgen msgperf --check-docs || status=1
fi

exit $status
